#pragma once
// Background scrub of data at rest (docs/ROBUSTNESS.md, "Scrubbing data
// at rest"). The WAL frames and snapshot trailers carry CRC32C exactly so
// that bit rot is *detectable* — but until this layer existed they were
// only checked when the artifact was read back, i.e. during recovery,
// which is the worst possible moment to discover a cold segment rotted.
// scrub_directory() re-reads every artifact in a durability directory and
// verifies every checksum proactively:
//
// * WAL segments (wal-*.log): header magic/version/seq, then every
//   len|crc|payload frame. The FINAL segment tolerates a torn tail (a
//   truncated trailing frame is a legal crash artifact, exactly the rule
//   recovery applies) — but a COMPLETE frame whose CRC mismatches is
//   corruption even there. Any anomaly in a non-final segment is
//   corruption.
// * Snapshots (snapshot-*.svgx): full decode via the snapshot codec,
//   whose trailing CRC covers the whole file.
//
// Corrupt artifacts are quarantined: renamed to <name>.quarantine, which
// removes them from the recovery/replication listings (those match on the
// .log/.svgx suffix), journals kArtifactQuarantined and bumps
// svg_store_scrub_* metrics. The active (final) WAL segment is NEVER
// quarantined — the live appender owns it; its findings are report-only.
// Sealed tiered-index runs live in memory and are rebuilt from the WAL on
// restart, so scrubbing the WAL transitively covers them.
//
// Scrubber wraps one directory with an optional background thread on a
// configurable cadence — the storage twin of the cluster's probe loop.

#include <cstdint>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "store/env.hpp"

namespace svg::store {

struct ScrubOptions {
  Env* env = nullptr;       ///< null = Env::posix()
  bool quarantine = true;   ///< rename corrupt artifacts to *.quarantine
};

/// One corrupt artifact found by a scrub pass.
struct ScrubFinding {
  enum class Kind : std::uint8_t { kWalSegment = 0, kSnapshot = 1 };
  Kind kind = Kind::kWalSegment;
  std::string path;         ///< original artifact path
  std::uint64_t seq = 0;    ///< segment first_seq / snapshot seq (filename)
  std::string detail;       ///< human-readable cause
  bool quarantined = false; ///< renamed to path + ".quarantine"
};

struct ScrubReport {
  std::size_t wal_segments = 0;      ///< segments scanned
  std::size_t snapshots = 0;         ///< snapshot files scanned
  std::uint64_t frames_verified = 0; ///< WAL frames whose CRC checked clean
  std::uint64_t bytes_verified = 0;  ///< artifact bytes read and checked
  std::size_t torn_tail_segments = 0; ///< legal torn tails (final segment)
  std::vector<ScrubFinding> findings;
  [[nodiscard]] bool clean() const { return findings.empty(); }
};

/// One synchronous scrub pass over every WAL segment and snapshot in
/// `dir`. Journals kScrubPass and (per corrupt artifact)
/// kArtifactQuarantined; bumps svg_store_scrub_*.
[[nodiscard]] ScrubReport scrub_directory(const std::string& dir,
                                          const ScrubOptions& opts = {});

/// Periodic scrubber for one durability directory. interval_ms == 0 means
/// manual-only (no thread); otherwise a background thread runs a pass
/// every interval. `on_pass` (optional) observes every completed report —
/// the hook a cluster harness uses to trigger repair-from-replica.
class Scrubber {
 public:
  using PassHook = std::function<void(const ScrubReport&)>;

  Scrubber(std::string dir, std::uint32_t interval_ms,
           ScrubOptions opts = {}, PassHook on_pass = nullptr);
  ~Scrubber();
  Scrubber(const Scrubber&) = delete;
  Scrubber& operator=(const Scrubber&) = delete;

  /// Run one pass synchronously on the calling thread.
  ScrubReport pass_now();

  /// Passes completed over the scrubber's lifetime (manual + background).
  [[nodiscard]] std::uint64_t passes() const;

 private:
  void run();

  std::string dir_;
  ScrubOptions opts_;
  PassHook on_pass_;
  std::uint32_t interval_ms_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::uint64_t passes_ = 0;
  std::thread thread_;
};

}  // namespace svg::store
