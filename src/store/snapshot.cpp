#include "store/snapshot.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "geo/angle.hpp"
#include "store/crc32c.hpp"

namespace svg::store {

namespace {

constexpr std::uint8_t kMagic[4] = {'S', 'V', 'G', 'X'};
constexpr double kDegScale = 1e7;
constexpr double kThetaScale = 100.0;

/// Open-truncate, write, fsync — the data half of a durable replace.
bool write_file_durable(std::span<const std::uint8_t> bytes,
                        const std::string& path, Env& env) {
  auto file = env.open(path, OpenMode::kTruncate);
  if (!file) return false;
  if (!file->write(bytes)) return false;
  return file->sync();
}

}  // namespace

void put_rep_records(util::ByteWriter& w,
                     std::span<const core::RepresentativeFov> reps) {
  std::int64_t prev_lat = 0, prev_lng = 0, prev_t = 0;
  for (const auto& r : reps) {
    const auto lat =
        static_cast<std::int64_t>(std::llround(r.fov.p.lat * kDegScale));
    const auto lng =
        static_cast<std::int64_t>(std::llround(r.fov.p.lng * kDegScale));
    w.put_varint(r.video_id);
    w.put_varint(r.segment_id);
    w.put_svarint(lat - prev_lat);
    w.put_svarint(lng - prev_lng);
    w.put_u16(static_cast<std::uint16_t>(
        std::llround(geo::wrap_deg(r.fov.theta_deg) * kThetaScale) % 36000));
    w.put_svarint(r.t_start - prev_t);
    w.put_varint(static_cast<std::uint64_t>(r.t_end - r.t_start));
    prev_lat = lat;
    prev_lng = lng;
    prev_t = r.t_start;
  }
}

bool get_rep_records(util::ByteReader& r, std::uint64_t count,
                     std::vector<core::RepresentativeFov>& out) {
  std::int64_t prev_lat = 0, prev_lng = 0, prev_t = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto vid = r.get_varint();
    const auto sid = r.get_varint();
    const auto dlat = r.get_svarint();
    const auto dlng = r.get_svarint();
    const auto theta = r.get_u16();
    const auto dt = r.get_svarint();
    const auto dur = r.get_varint();
    if (!vid || !sid || !dlat || !dlng || !theta || !dt || !dur) {
      return false;
    }
    core::RepresentativeFov rep;
    rep.video_id = *vid;
    rep.segment_id = static_cast<std::uint32_t>(*sid);
    prev_lat += *dlat;
    prev_lng += *dlng;
    rep.fov.p.lat = static_cast<double>(prev_lat) / kDegScale;
    rep.fov.p.lng = static_cast<double>(prev_lng) / kDegScale;
    rep.fov.theta_deg = static_cast<double>(*theta) / kThetaScale;
    prev_t += *dt;
    rep.t_start = prev_t;
    rep.t_end = prev_t + static_cast<std::int64_t>(*dur);
    out.push_back(rep);
  }
  return true;
}

std::vector<std::uint8_t> encode_snapshot(
    const std::vector<core::RepresentativeFov>& reps,
    std::uint64_t last_seq, std::vector<std::uint64_t> upload_ids) {
  util::ByteWriter w;
  w.put_bytes(kMagic);
  w.put_u16(kSnapshotVersion);
  w.put_u64(last_seq);
  w.put_varint(reps.size());
  put_rep_records(w, reps);
  // Sorted ascending deltas: dedup ids are random 64-bit values, so raw
  // varints would be ~9 bytes each; sorting drops the expected gap to
  // 2^64/n and the per-id cost toward the gap's varint width.
  std::sort(upload_ids.begin(), upload_ids.end());
  w.put_varint(upload_ids.size());
  std::uint64_t prev = 0;
  for (const auto id : upload_ids) {
    w.put_varint(id - prev);
    prev = id;
  }
  auto bytes = w.take();
  const std::uint32_t crc = crc32c(bytes);
  bytes.push_back(static_cast<std::uint8_t>(crc));
  bytes.push_back(static_cast<std::uint8_t>(crc >> 8));
  bytes.push_back(static_cast<std::uint8_t>(crc >> 16));
  bytes.push_back(static_cast<std::uint8_t>(crc >> 24));
  return bytes;
}

std::optional<SnapshotData> decode_snapshot_full(
    std::span<const std::uint8_t> bytes) {
  util::ByteReader r(bytes);
  for (std::uint8_t m : kMagic) {
    const auto b = r.get_u8();
    if (!b || *b != m) return std::nullopt;
  }
  const auto version = r.get_u16();
  if (!version || *version < 1 || *version > 3) return std::nullopt;

  SnapshotData out;
  out.version = *version;
  std::span<const std::uint8_t> body = bytes;
  if (*version >= 2) {
    // Validate the CRC trailer before trusting a single varint: a torn or
    // bit-flipped snapshot must fail here, not decode garbage downstream.
    if (bytes.size() < 4) return std::nullopt;
    body = bytes.first(bytes.size() - 4);
    const std::uint32_t stored =
        static_cast<std::uint32_t>(bytes[bytes.size() - 4]) |
        static_cast<std::uint32_t>(bytes[bytes.size() - 3]) << 8 |
        static_cast<std::uint32_t>(bytes[bytes.size() - 2]) << 16 |
        static_cast<std::uint32_t>(bytes[bytes.size() - 1]) << 24;
    if (crc32c(body) != stored) return std::nullopt;
    r = util::ByteReader(body);
    (void)r.get_u32();  // skip magic (validated above)
    (void)r.get_u16();  // skip version
    const auto seq = r.get_u64();
    if (!seq) return std::nullopt;
    out.last_seq = *seq;
  }
  const auto count = r.get_varint();
  if (!count) return std::nullopt;
  // Never trust the claimed count for allocation: each record takes at
  // least 8 bytes on the wire, so anything beyond remaining is corrupt.
  if (*count > r.remaining()) return std::nullopt;
  out.reps.reserve(*count);
  if (!get_rep_records(r, *count, out.reps)) return std::nullopt;
  if (*version >= 3) {
    const auto id_count = r.get_varint();
    if (!id_count) return std::nullopt;
    if (*id_count > r.remaining()) return std::nullopt;
    out.upload_ids.reserve(*id_count);
    std::uint64_t prev = 0;
    for (std::uint64_t i = 0; i < *id_count; ++i) {
      const auto delta = r.get_varint();
      if (!delta) return std::nullopt;
      prev += *delta;
      out.upload_ids.push_back(prev);
    }
  }
  return out;
}

std::optional<std::vector<core::RepresentativeFov>> decode_snapshot(
    std::span<const std::uint8_t> bytes) {
  auto full = decode_snapshot_full(bytes);
  if (!full) return std::nullopt;
  return std::move(full->reps);
}

bool save_snapshot_file(const std::vector<core::RepresentativeFov>& reps,
                        const std::string& path, std::uint64_t last_seq,
                        std::vector<std::uint64_t> upload_ids, Env* env) {
  Env& e = env != nullptr ? *env : Env::posix();
  const auto bytes = encode_snapshot(reps, last_seq, std::move(upload_ids));
  const std::string tmp = path + ".tmp";
  // Durable atomic replace: data must hit the disk before the rename makes
  // it reachable, and the rename itself must hit the directory — otherwise
  // "atomic" only covers process death, not power loss. Any failure leaves
  // the previous snapshot at `path` intact.
  if (!write_file_durable(bytes, tmp, e)) {
    (void)e.remove_file(tmp);
    return false;
  }
  if (!e.rename_file(tmp, path)) {
    (void)e.remove_file(tmp);
    return false;
  }
  return e.sync_parent_dir(path);
}

std::optional<SnapshotData> load_snapshot_file_full(const std::string& path,
                                                    Env* env) {
  Env& e = env != nullptr ? *env : Env::posix();
  const auto bytes = e.read_file(path);
  if (!bytes) return std::nullopt;
  return decode_snapshot_full(*bytes);
}

std::optional<std::vector<core::RepresentativeFov>> load_snapshot_file(
    const std::string& path, Env* env) {
  auto full = load_snapshot_file_full(path, env);
  if (!full) return std::nullopt;
  return std::move(full->reps);
}

}  // namespace svg::store
