#pragma once
// Index durability: snapshot every live representative FoV to a compact
// binary file and rebuild (via STR bulk load) on restart. The file reuses
// the wire codec's delta encoding, so a 100k-segment index snapshots to
// ~2 MB. Lived in src/net/ until the durability subsystem (WAL +
// checkpointing) grew around it; net/snapshot.hpp forwards here.
//
// v3 file format (current):
//   magic "SVGX" | u16 version=3 | u64 last_seq | varint rep_count
//   | delta-encoded records | varint id_count | delta-encoded sorted
//   upload_ids | u32 crc32c(all preceding bytes)
// `last_seq` is the WAL sequence number the snapshot covers (0 for
// standalone snapshots with no WAL). `upload_ids` persists the server's
// ingest-dedup set, so a retransmit arriving after crash recovery is
// still recognized (docs/ROBUSTNESS.md). The CRC trailer turns truncation
// or bit rot into a clean decode failure instead of garbage records.
//
// v1 (magic | u16 version=1 | varint count | records, no CRC) and v2 (v3
// without the upload_id set) stay readable; writers always emit v3.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/fov.hpp"
#include "store/env.hpp"
#include "util/bytes.hpp"

namespace svg::store {

inline constexpr std::uint16_t kSnapshotVersion = 3;

/// A decoded snapshot plus its metadata.
struct SnapshotData {
  std::vector<core::RepresentativeFov> reps;
  std::vector<std::uint64_t> upload_ids;  ///< dedup set, sorted (v3+)
  std::uint64_t last_seq = 0;  ///< WAL sequence this snapshot covers
  std::uint16_t version = kSnapshotVersion;
};

/// Delta-encode a run of representative FoVs (lat/lng fixed-point at
/// 1e-7°, θ centi-degrees, zigzag time deltas) — the shared record codec
/// behind snapshots and WAL upload records.
void put_rep_records(util::ByteWriter& w,
                     std::span<const core::RepresentativeFov> reps);

/// Decode `count` records written by put_rep_records, appending to `out`.
/// False on truncated/malformed input (out may hold a partial prefix).
[[nodiscard]] bool get_rep_records(util::ByteReader& r, std::uint64_t count,
                                   std::vector<core::RepresentativeFov>& out);

/// Serialize to an in-memory buffer (always v3). `upload_ids` is sorted
/// before encoding (the format stores ascending deltas).
[[nodiscard]] std::vector<std::uint8_t> encode_snapshot(
    const std::vector<core::RepresentativeFov>& reps,
    std::uint64_t last_seq = 0, std::vector<std::uint64_t> upload_ids = {});

/// Parse a buffer; nullopt on bad magic/version/truncation/CRC mismatch.
[[nodiscard]] std::optional<std::vector<core::RepresentativeFov>>
decode_snapshot(std::span<const std::uint8_t> bytes);

/// Like decode_snapshot but also surfaces last_seq and the format version.
[[nodiscard]] std::optional<SnapshotData> decode_snapshot_full(
    std::span<const std::uint8_t> bytes);

/// Write a snapshot file atomically AND durably: write to path+".tmp",
/// fsync the tmp file, rename over path, fsync the directory — so the
/// snapshot survives power loss, not just process death. False on I/O
/// error; on failure the previous file at `path` is untouched (only the
/// tmp file is ever written before the rename). All I/O goes through
/// `env` (null = Env::posix()).
bool save_snapshot_file(const std::vector<core::RepresentativeFov>& reps,
                        const std::string& path, std::uint64_t last_seq = 0,
                        std::vector<std::uint64_t> upload_ids = {},
                        Env* env = nullptr);

/// Read a snapshot file; nullopt on I/O error or malformed content.
[[nodiscard]] std::optional<std::vector<core::RepresentativeFov>>
load_snapshot_file(const std::string& path, Env* env = nullptr);

[[nodiscard]] std::optional<SnapshotData> load_snapshot_file_full(
    const std::string& path, Env* env = nullptr);

}  // namespace svg::store
