#include "store/wal.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "obs/families.hpp"
#include "obs/journal.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"
#include "store/crc32c.hpp"
#include "store/env.hpp"
#include "store/snapshot.hpp"
#include "util/bytes.hpp"

namespace svg::store {

namespace {

constexpr std::uint8_t kSegMagic[4] = {'S', 'V', 'G', 'W'};
constexpr std::uint16_t kSegVersion = 1;
constexpr std::uint64_t kSegHeaderBytes = 16;
constexpr std::uint64_t kFrameHeaderBytes = 8;
/// Upper bound on one record; a longer claimed length is corruption.
constexpr std::uint64_t kMaxRecordBytes = 64ull << 20;

std::uint32_t read_u32le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t read_u64le(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(read_u32le(p)) |
         static_cast<std::uint64_t>(read_u32le(p + 4)) << 32;
}

void put_u32le(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

/// Frame one record into the pending buffer: len | crc | payload.
void append_frame(std::vector<std::uint8_t>& out,
                  std::span<const std::uint8_t> payload) {
  put_u32le(out, static_cast<std::uint32_t>(payload.size()));
  put_u32le(out, crc32c(payload));
  out.insert(out.end(), payload.begin(), payload.end());
}

struct ScanSegment {
  std::string path;
  std::uint64_t name_seq = 0;  // parsed from the filename
};

/// Every wal-*.log in dir, sorted by the sequence in the filename.
std::vector<ScanSegment> list_segment_files(const std::string& dir) {
  std::vector<ScanSegment> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("wal-", 0) != 0 || name.size() != 24 ||
        name.substr(20) != ".log") {
      continue;
    }
    char* end = nullptr;
    const std::uint64_t seq = std::strtoull(name.c_str() + 4, &end, 16);
    if (end != name.c_str() + 20) continue;
    out.push_back({entry.path().string(), seq});
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.name_seq < b.name_seq;
  });
  return out;
}

struct ScanResult {
  WalReplayStats stats;
  std::vector<WalSegmentInfo> segments;  // valid chain members
  std::vector<WalRecordInfo> records;    // filled when collect_records
  std::string error;
  // Repair plan for the tail (applied by wal_open, ignored by wal_dump):
  std::string truncate_path;         // empty = nothing to truncate
  std::uint64_t truncate_to = 0;     // < kSegHeaderBytes ⇒ delete the file
};

/// Walk the whole chain: verify headers, frame CRCs, and seq contiguity;
/// deliver records newer than replay_after; classify a bad tail as torn
/// (final segment) or corruption (anything else).
ScanResult scan_wal(const std::string& dir, std::uint64_t replay_after,
                    const WalReplayHandler& handler, bool collect_records,
                    Env& env) {
  ScanResult res;
  res.stats.next_seq = replay_after + 1;
  const auto files = list_segment_files(dir);

  std::uint64_t expected = 0;  // 0 = chain start not yet pinned
  for (std::size_t i = 0; i < files.size(); ++i) {
    const bool last = i + 1 == files.size();
    const auto bytes = env.read_file(files[i].path);
    if (!bytes) {
      res.error = "cannot read " + files[i].path;
      return res;
    }

    // Header validation. An unreadable header on the FINAL segment is a
    // torn rotation (the file was created but the header write was lost):
    // drop the whole file. Anywhere else it is corruption.
    std::string header_problem;
    if (bytes->size() < kSegHeaderBytes) {
      header_problem = "short header";
    } else if (!std::equal(kSegMagic, kSegMagic + 4, bytes->begin())) {
      header_problem = "bad magic";
    } else if ((read_u32le(bytes->data() + 4) & 0xFFFF) != kSegVersion) {
      header_problem = "unsupported version";
    } else if (read_u64le(bytes->data() + 8) != files[i].name_seq) {
      header_problem = "header/filename seq mismatch";
    }
    if (!header_problem.empty()) {
      if (!last) {
        res.error = files[i].path + ": " + header_problem +
                    " in non-final segment";
        return res;
      }
      const std::uint64_t need = expected != 0 ? expected : replay_after + 1;
      if (files[i].name_seq > need) {
        res.error = files[i].path + ": " + header_problem +
                    " and sequence gap (expected " + std::to_string(need) +
                    ")";
        return res;
      }
      res.stats.tail_torn = true;
      res.stats.bytes_truncated += bytes->size();
      res.truncate_path = files[i].path;
      res.truncate_to = 0;
      break;
    }

    const std::uint64_t first_seq = files[i].name_seq;
    // Chain contiguity. The first segment must reach back to the replay
    // watermark (records ≤ replay_after are covered by the snapshot);
    // later segments must continue exactly where the previous ended.
    if (expected == 0) {
      if (first_seq > replay_after + 1) {
        res.error = files[i].path + ": oldest segment starts at seq " +
                    std::to_string(first_seq) + " but replay needs seq " +
                    std::to_string(replay_after + 1) +
                    " (missing earlier segment)";
        return res;
      }
    } else if (first_seq != expected) {
      if (first_seq > expected && first_seq <= replay_after + 1) {
        // Gap wholly below the checkpoint watermark: every missing record
        // is ≤ replay_after, i.e. covered by the snapshot, and the
        // segments scanned so far are pre-checkpoint leftovers that a
        // crashed or faulted retirement failed to unlink. Restart the
        // chain here — nothing replayable was lost.
      } else {
        res.error = files[i].path + ": segment starts at seq " +
                    std::to_string(first_seq) + ", expected " +
                    std::to_string(expected) +
                    (first_seq > expected ? " (missing middle segment)"
                                          : " (overlapping segments)");
        return res;
      }
    }

    WalSegmentInfo info;
    info.path = files[i].path;
    info.first_seq = first_seq;
    info.file_bytes = bytes->size();

    std::uint64_t seq = first_seq;
    std::uint64_t off = kSegHeaderBytes;
    while (off < bytes->size()) {
      const std::uint64_t rem = bytes->size() - off;
      std::string frame_problem;
      std::uint32_t len = 0;
      if (rem < kFrameHeaderBytes) {
        frame_problem = "short frame header";
      } else {
        len = read_u32le(bytes->data() + off);
        const std::uint32_t crc = read_u32le(bytes->data() + off + 4);
        if (len == 0 || len > kMaxRecordBytes ||
            len > rem - kFrameHeaderBytes) {
          frame_problem = "frame length out of bounds";
        } else if (crc32c({bytes->data() + off + kFrameHeaderBytes, len}) !=
                   crc) {
          frame_problem = "frame CRC mismatch";
        }
      }
      if (!frame_problem.empty()) {
        if (!last) {
          res.error = files[i].path + ": " + frame_problem +
                      " at offset " + std::to_string(off) +
                      " in non-final segment";
          return res;
        }
        res.stats.tail_torn = true;
        res.stats.bytes_truncated += bytes->size() - off;
        res.truncate_path = files[i].path;
        res.truncate_to = off;
        break;
      }

      ++res.stats.records_scanned;
      ++info.records;
      if (collect_records) {
        res.records.push_back(
            {seq, res.segments.size(), off, len});
      }
      if (handler && seq > replay_after) {
        handler(seq, {bytes->data() + off + kFrameHeaderBytes, len});
        ++res.stats.records_replayed;
      }
      ++seq;
      off += kFrameHeaderBytes + len;
    }

    expected = seq;
    res.stats.next_seq = std::max(res.stats.next_seq, seq);
    res.segments.push_back(std::move(info));
    ++res.stats.segments_scanned;
    if (res.stats.tail_torn) break;
  }
  return res;
}

}  // namespace

std::string wal_segment_path(const std::string& dir,
                             std::uint64_t first_seq) {
  char name[32];
  std::snprintf(name, sizeof(name), "wal-%016llx.log",
                static_cast<unsigned long long>(first_seq));
  return (std::filesystem::path(dir) / name).string();
}

WalDump wal_dump(const std::string& dir, std::uint64_t replay_after,
                 Env* env) {
  auto scan = scan_wal(dir, replay_after, nullptr, /*collect_records=*/true,
                       env != nullptr ? *env : Env::posix());
  WalDump dump;
  dump.segments = std::move(scan.segments);
  dump.records = std::move(scan.records);
  dump.stats = scan.stats;
  dump.error = std::move(scan.error);
  return dump;
}

std::optional<std::vector<WalRecordData>> wal_read_records(
    const std::string& dir, std::uint64_t after, std::size_t max_records,
    std::uint64_t replay_after, Env* env) {
  std::vector<WalRecordData> out;
  // The handler sees every record with seq > replay_after; the shipper's
  // cursor filter and batch cap apply on top.
  const WalReplayHandler collect = [&](std::uint64_t seq,
                                       std::span<const std::uint8_t> payload) {
    if (seq <= after) return;
    if (max_records != 0 && out.size() >= max_records) return;
    out.push_back({seq, {payload.begin(), payload.end()}});
  };
  auto scan = scan_wal(dir, std::min(replay_after, after), collect,
                       /*collect_records=*/false,
                       env != nullptr ? *env : Env::posix());
  if (!scan.error.empty()) return std::nullopt;
  return out;
}

bool wal_trim_after(const std::string& dir, std::uint64_t seq,
                    std::uint64_t replay_after, Env* env) {
  Env& e = env != nullptr ? *env : Env::posix();
  auto scan = scan_wal(dir, replay_after, nullptr, /*collect_records=*/true,
                       e);
  if (!scan.error.empty()) return false;

  bool touched = false;
  // A trailing file whose header never made it to disk is not a chain
  // member at all (scan excludes it from segments); drop it outright.
  if (!scan.truncate_path.empty() && scan.truncate_to < kSegHeaderBytes) {
    if (!e.remove_file(scan.truncate_path)) return false;
    touched = true;
  }
  // Records with seq > `seq` were never acked (or are being disowned):
  // cut the segment holding seq+1 at that frame and delete everything
  // after it. A torn frame tail (scan.truncate_*) lies past any acked
  // record by construction, so the cut subsumes it when they share a
  // segment and the removal loop covers it when they don't.
  std::optional<std::size_t> cut_segment;
  for (const auto& rec : scan.records) {
    if (rec.seq == seq + 1) {
      if (!e.truncate_file(scan.segments[rec.segment].path, rec.offset)) {
        return false;
      }
      cut_segment = rec.segment;
      touched = true;
      break;
    }
  }
  if (cut_segment.has_value()) {
    for (std::size_t i = *cut_segment + 1; i < scan.segments.size(); ++i) {
      if (!e.remove_file(scan.segments[i].path)) return false;
      touched = true;
    }
  } else if (!scan.truncate_path.empty() &&
             scan.truncate_to >= kSegHeaderBytes) {
    // Every whole record is ≤ seq; only the torn bytes go.
    if (!e.truncate_file(scan.truncate_path, scan.truncate_to)) return false;
    touched = true;
  }
  return !touched || e.sync_dir(dir);
}

// --- Wal --------------------------------------------------------------------

/// wal_open's key to the private constructor and post-scan setup.
struct WalOpenAccess {
  static std::unique_ptr<Wal> make(WalOptions options) {
    return std::unique_ptr<Wal>(new Wal(std::move(options)));
  }
};

WalOpenResult wal_open(WalOptions options, std::uint64_t replay_after,
                       const WalReplayHandler& handler) {
  WalOpenResult res;
  std::error_code ec;
  std::filesystem::create_directories(options.dir, ec);
  if (ec) {
    res.error = "cannot create " + options.dir + ": " + ec.message();
    return res;
  }
  options.batch_flush_interval_ms =
      std::max<std::uint32_t>(1, options.batch_flush_interval_ms);
  Env& env = options.env != nullptr ? *options.env : Env::posix();

  auto scan = scan_wal(options.dir, replay_after, handler,
                       /*collect_records=*/false, env);
  res.stats = scan.stats;
  if (!scan.error.empty()) {
    res.error = std::move(scan.error);
    return res;
  }

  // Repair the torn tail: partially written records were never acked, so
  // dropping them restores the exact acked prefix.
  if (!scan.truncate_path.empty()) {
    bool repaired = false;
    if (scan.truncate_to < kSegHeaderBytes) {
      repaired = env.remove_file(scan.truncate_path);
      if (repaired && !scan.segments.empty() &&
          scan.segments.back().path == scan.truncate_path) {
        scan.segments.pop_back();
      }
    } else {
      repaired = env.truncate_file(scan.truncate_path, scan.truncate_to);
      if (repaired && !scan.segments.empty() &&
          scan.segments.back().path == scan.truncate_path) {
        scan.segments.back().file_bytes = scan.truncate_to;
      }
    }
    // The repair must be durable before any new record lands after the
    // cut: if the truncation (or the directory entry for the removal)
    // were lost in a later crash, the revived torn bytes would corrupt
    // the middle of the chain. Surface the failure instead of appending
    // past an un-durable repair.
    if (!repaired || !env.sync_dir(options.dir)) {
      res.error = "cannot repair torn tail of " + scan.truncate_path;
      return res;
    }
    obs::wal_metrics().replay_truncated_bytes.inc(res.stats.bytes_truncated);
  }
  obs::wal_metrics().replay_records.inc(res.stats.records_replayed);

  auto wal = WalOpenAccess::make(options);
  wal->env_ = &env;
  wal->next_seq_ = res.stats.next_seq;
  wal->written_seq_ = res.stats.next_seq - 1;
  wal->durable_seq_ = res.stats.next_seq - 1;
  for (const auto& s : scan.segments) {
    wal->segments_.push_back({s.path, s.first_seq});
  }

  // Resume appending into the last segment if it has room; otherwise
  // start a fresh one.
  bool opened = false;
  if (!scan.segments.empty() &&
      scan.segments.back().file_bytes < options.segment_bytes) {
    opened = wal->open_segment(scan.segments.back().first_seq,
                               /*resume=*/true,
                               scan.segments.back().file_bytes);
  }
  if (!opened) {
    opened = wal->open_segment(wal->next_seq_, /*resume=*/false, 0);
  }
  if (!opened) {
    res.error = "cannot open segment for append in " + options.dir;
    return res;
  }
  wal->start_flusher();
  res.wal = std::move(wal);
  return res;
}

Wal::~Wal() {
  {
    std::unique_lock lock(mu_);
    stopping_ = true;
    flush_cv_.notify_all();
  }
  if (flusher_.joinable()) flusher_.join();
  std::unique_lock lock(mu_);
  if (!failed_) sync_locked(lock, next_seq_ - 1);
  file_.reset();
}

void Wal::start_flusher() {
  if (options_.fsync != FsyncPolicy::kBatch) return;
  flusher_ = std::thread([this] {
    std::unique_lock lock(mu_);
    while (!stopping_) {
      flush_cv_.wait_for(
          lock, std::chrono::milliseconds(options_.batch_flush_interval_ms));
      if (stopping_ || failed_) continue;
      if (durable_seq_ >= next_seq_ - 1 && pending_count_ == 0) continue;
      sync_locked(lock, next_seq_ - 1);
    }
  });
}

std::uint64_t Wal::append(std::span<const std::uint8_t> payload) {
  auto& m = obs::wal_metrics();
  // The commit-wait span separates "the WAL was slow" from "the index was
  // slow" inside a traced ingest: it covers framing, leader I/O or
  // follower wait, and the fsync the ack policy demands.
  obs::Span span = obs::tracer().span("wal.commit_wait");
  obs::ScopedTimer timer(m.append_ns, span.trace_id());
  if (payload.empty()) return 0;  // a zero-length frame reads as torn tail
  std::unique_lock lock(mu_);
  if (failed_) return 0;
  const std::uint64_t seq = next_seq_++;
  span.tag("seq", seq);
  if (pending_count_ == 0) pending_first_seq_ = seq;
  append_frame(pending_, payload);
  pending_last_seq_ = seq;
  ++pending_count_;
  m.appends.inc();

  const bool ack_on_fsync = options_.fsync == FsyncPolicy::kAlways;
  for (;;) {
    const std::uint64_t acked = ack_on_fsync ? durable_seq_ : written_seq_;
    if (acked >= seq) return seq;
    if (failed_) return 0;
    if (!writing_) {
      lead(lock, ack_on_fsync);
      continue;
    }
    cv_.wait(lock);
  }
}

void Wal::sync() {
  std::unique_lock lock(mu_);
  sync_locked(lock, next_seq_ - 1);
}

void Wal::sync_locked(std::unique_lock<std::mutex>& lock,
                      std::uint64_t target) {
  while (durable_seq_ < target && !failed_) {
    if (!writing_) {
      lead(lock, /*force_sync=*/true);
    } else {
      cv_.wait(lock);
    }
  }
}

std::uint64_t Wal::durable_seq() const {
  std::lock_guard lock(mu_);
  return durable_seq_;
}

std::uint64_t Wal::last_seq() const {
  std::lock_guard lock(mu_);
  const bool ack_on_fsync = options_.fsync == FsyncPolicy::kAlways;
  return ack_on_fsync ? durable_seq_ : written_seq_;
}

bool Wal::ok() const {
  std::lock_guard lock(mu_);
  return !failed_;
}

/// Group-commit leader: drain the pending buffer in whole-buffer batches,
/// then optionally fsync. Called with mu_ held and writing_ == false;
/// releases mu_ around file I/O (writing_ excludes other leaders and the
/// retirer while released).
void Wal::lead(std::unique_lock<std::mutex>& lock, bool force_sync) {
  auto& m = obs::wal_metrics();
  writing_ = true;
  while (pending_count_ > 0 && !failed_) {
    std::vector<std::uint8_t> batch;
    batch.swap(pending_);
    const std::uint64_t batch_first = pending_first_seq_;
    const std::uint64_t batch_last = pending_last_seq_;
    const std::uint64_t batch_count = pending_count_;
    pending_count_ = 0;
    lock.unlock();

    m.batch_records.observe(batch_count);
    m.batch_bytes.observe(batch.size());
    bool io_ok = true;
    // Rotate at batch boundaries so a batch never straddles segments and
    // every segment's first_seq is exact.
    if (segment_written_ > kSegHeaderBytes &&
        segment_written_ + batch.size() > options_.segment_bytes) {
      io_ok = rotate(batch_first);
    }
    if (io_ok) io_ok = write_all(batch);
    bool synced = false;
    if (io_ok) {
      bool due = false;
      switch (options_.fsync) {
        case FsyncPolicy::kAlways:
          due = true;
          break;
        case FsyncPolicy::kBatch:
          due = unsynced_bytes_ >= options_.batch_flush_bytes;
          break;
        case FsyncPolicy::kNone:
          // No durability promised: durable tracks written so sync()
          // and shutdown never spin.
          synced = true;
          break;
      }
      if (due) {
        io_ok = do_fsync();
        synced = io_ok;
      }
    }

    lock.lock();
    if (!io_ok) {
      // Fail-stop: the batch is NOT acked (written_seq_ stays put, so
      // every follower in it returns 0 from append), durable_seq_ never
      // advances again, and no later append or fsync is attempted — per
      // fsyncgate, a failed fsync means the dirty pages may already be
      // gone, so retrying could only ack lost data.
      failed_ = true;
      obs::store_fault_metrics().wal_failstops.inc();
      obs::journal_event(obs::JournalEvent::kWalFailstop);
    } else {
      written_seq_ = batch_last;
      if (synced) durable_seq_ = batch_last;
    }
    cv_.notify_all();
  }

  if (!failed_ && force_sync && durable_seq_ < written_seq_) {
    const std::uint64_t target = written_seq_;
    lock.unlock();
    const bool io_ok =
        options_.fsync == FsyncPolicy::kNone ? true : do_fsync();
    lock.lock();
    if (!io_ok) {
      failed_ = true;
      obs::store_fault_metrics().wal_failstops.inc();
      obs::journal_event(obs::JournalEvent::kWalFailstop);
    } else if (durable_seq_ < target) {
      durable_seq_ = target;
    }
  }
  writing_ = false;
  cv_.notify_all();
}

bool Wal::write_all(std::span<const std::uint8_t> bytes) {
  if (!file_ || !file_->write(bytes)) return false;
  segment_written_ += bytes.size();
  unsynced_bytes_ += bytes.size();
  obs::wal_metrics().bytes.inc(bytes.size());
  return true;
}

bool Wal::do_fsync() {
  auto& m = obs::wal_metrics();
  obs::ScopedTimer timer(m.fsync_ns);
  if (!file_ || !file_->sync()) return false;
  unsynced_bytes_ = 0;
  m.fsyncs.inc();
  return true;
}

bool Wal::rotate(std::uint64_t first_seq) {
  // Finish the old segment durably before the chain moves past it.
  if (options_.fsync != FsyncPolicy::kNone && !do_fsync()) return false;
  file_.reset();
  obs::wal_metrics().rotations.inc();
  obs::journal_event(obs::JournalEvent::kWalRotation, first_seq);
  return open_segment(first_seq, /*resume=*/false, 0);
}

bool Wal::open_segment(std::uint64_t first_seq, bool resume,
                       std::uint64_t size) {
  const std::string path = resume ? segments_.back().path
                                  : wal_segment_path(options_.dir, first_seq);
  auto file = env_->open(
      path, resume ? OpenMode::kResumeAppend : OpenMode::kCreateExclusive);
  if (!file) return false;
  file_ = std::move(file);
  if (resume) {
    segment_written_ = size;
    return true;
  }
  segment_written_ = 0;
  std::vector<std::uint8_t> header;
  header.insert(header.end(), kSegMagic, kSegMagic + 4);
  header.push_back(static_cast<std::uint8_t>(kSegVersion));
  header.push_back(static_cast<std::uint8_t>(kSegVersion >> 8));
  header.push_back(0);
  header.push_back(0);
  for (int i = 0; i < 8; ++i) {
    header.push_back(static_cast<std::uint8_t>(first_seq >> (8 * i)));
  }
  if (!write_all(header)) {
    file_.reset();
    return false;
  }
  // Make the new file name durable so a post-rotation crash still sees a
  // contiguous chain. A failed directory fsync fails the rotation — the
  // segment's name may not survive power loss, so records must not land
  // in it (the leader turns this into WAL fail-stop).
  if (!env_->sync_dir(options_.dir)) {
    file_.reset();
    return false;
  }
  segments_.push_back({path, first_seq});
  return true;
}

std::size_t Wal::retire_through(std::uint64_t seq) {
  std::unique_lock lock(mu_);
  while (writing_) cv_.wait(lock);
  writing_ = true;  // excludes leaders while we touch segments_ + the dir
  std::vector<std::string> victims;
  // segments_[0] is fully covered iff the next segment starts at or
  // before seq+1; the active (last) segment is never deleted.
  while (segments_.size() > 1 && segments_[1].first_seq <= seq + 1) {
    victims.push_back(segments_.front().path);
    segments_.erase(segments_.begin());
  }
  lock.unlock();
  bool dir_durable = true;
  for (const auto& path : victims) (void)env_->remove_file(path);
  if (!victims.empty()) dir_durable = env_->sync_dir(options_.dir);
  lock.lock();
  if (!dir_durable && !failed_) {
    // The removals may not be durable and the directory's durability is
    // now unknowable (fsyncgate) — poison the log rather than keep
    // promising durability on top of it. Recovery tolerates resurrected
    // pre-checkpoint segments, so the data itself is safe either way.
    failed_ = true;
    obs::store_fault_metrics().wal_failstops.inc();
    obs::journal_event(obs::JournalEvent::kWalFailstop);
  }
  writing_ = false;
  cv_.notify_all();
  obs::wal_metrics().segments_retired.inc(victims.size());
  if (!victims.empty()) {
    obs::journal_event(obs::JournalEvent::kWalRetirement, victims.size(),
                       seq);
  }
  return victims.size();
}

std::vector<std::string> Wal::segment_files() const {
  std::unique_lock lock(mu_);
  // A leader mutates segments_ with mu_ released (rotation), so wait for
  // writing_ to clear; holding mu_ afterwards blocks the next leader.
  while (writing_) cv_.wait(lock);
  std::vector<std::string> out;
  out.reserve(segments_.size());
  for (const auto& s : segments_) out.push_back(s.path);
  return out;
}

// --- record payload codec ---------------------------------------------------

std::vector<std::uint8_t> encode_upload_record(
    std::span<const core::RepresentativeFov> reps, std::uint64_t upload_id) {
  util::ByteWriter w;
  if (upload_id == 0) {
    w.put_u8(kWalRecUpload);
  } else {
    w.put_u8(kWalRecUploadV2);
    w.put_varint(upload_id);
  }
  w.put_varint(reps.size());
  put_rep_records(w, reps);
  return w.take();
}

std::optional<UploadRecord> decode_upload_record(
    std::span<const std::uint8_t> payload) {
  util::ByteReader r(payload);
  const auto type = r.get_u8();
  if (!type || (*type != kWalRecUpload && *type != kWalRecUploadV2)) {
    return std::nullopt;
  }
  UploadRecord out;
  if (*type == kWalRecUploadV2) {
    const auto id = r.get_varint();
    if (!id || *id == 0) return std::nullopt;
    out.upload_id = *id;
  }
  const auto count = r.get_varint();
  if (!count || *count > r.remaining()) return std::nullopt;
  out.reps.reserve(*count);
  if (!get_rep_records(r, *count, out.reps)) return std::nullopt;
  return out;
}

}  // namespace svg::store
