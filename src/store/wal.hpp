#pragma once
// Segmented write-ahead log for acknowledged ingest (docs/DURABILITY.md).
//
// On-disk layout, one directory per server:
//   wal-<first_seq, 16 hex>.log    append-only segments
//   snapshot-<seq, 16 hex>.svgx    checkpoints (store/snapshot.hpp format)
//
// Segment format:
//   header  "SVGW" | u16 version=1 | u16 reserved | u64 first_seq   (16 B)
//   records u32 payload_len | u32 crc32c(payload) | payload          (each)
//
// Sequence numbers start at 1 and are assigned per append (one upload per
// record); a segment's records are consecutive, so record seq is derived
// from the header and never stored per frame. Rotation happens at batch
// boundaries once a segment exceeds segment_bytes, so a group-committed
// batch never straddles segments.
//
// Write path: group commit. Concurrent append() callers frame their record
// into a shared pending buffer; one caller at a time becomes the leader
// and flushes the whole buffer with a single write() (and fsync, per
// policy) while followers wait. See FsyncPolicy for the ack/durability
// contract. Feeds the svg_wal_* metric family (obs/families.hpp).
//
// Read path: replay tolerates a torn tail — the first bad length/CRC in
// the FINAL segment truncates the log there (partially-written records
// were never acked). A bad record in a non-final segment, or a gap in the
// segment chain, is corruption and fails loudly instead of silently
// skipping acked data.

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/fov.hpp"
#include "store/env.hpp"

namespace svg::store {

/// When does append() acknowledge, and what does the ack promise?
/// * kAlways: ack after write+fsync. Survives process crash AND power
///   loss. Group commit still coalesces concurrent appenders into one
///   fsync, so throughput degrades with fsync latency, not caller count.
/// * kBatch: ack after write() reaches the kernel; fsync runs when
///   batch_flush_bytes accumulate or batch_flush_interval_ms elapse.
///   Survives process crash; power loss can lose at most the last
///   un-synced window (watch durable_seq()).
/// * kNone: never fsync (benchmarks/tests). Survives process crash only
///   as far as the kernel flushed on its own.
enum class FsyncPolicy { kAlways, kBatch, kNone };

struct WalOptions {
  std::string dir;
  std::uint64_t segment_bytes = 8ull << 20;
  FsyncPolicy fsync = FsyncPolicy::kBatch;
  /// kBatch: fsync once this many bytes are written but un-synced…
  std::uint64_t batch_flush_bytes = 256u << 10;
  /// …or this much time has passed (a background flusher covers idle
  /// periods). Clamped to ≥ 1.
  std::uint32_t batch_flush_interval_ms = 5;
  /// All file and directory I/O goes through this environment; null means
  /// Env::posix(). Not owned — must outlive the Wal (tests pass a
  /// FaultyEnv; see store/env.hpp).
  Env* env = nullptr;
};

/// seq + payload of every record newer than the replay watermark.
using WalReplayHandler =
    std::function<void(std::uint64_t seq, std::span<const std::uint8_t>)>;

struct WalReplayStats {
  std::size_t segments_scanned = 0;
  std::uint64_t records_scanned = 0;   ///< valid frames in the chain
  std::uint64_t records_replayed = 0;  ///< delivered (seq > replay_after)
  std::uint64_t bytes_truncated = 0;   ///< torn tail dropped on repair
  bool tail_torn = false;
  std::uint64_t next_seq = 1;  ///< first sequence number after the log
};

struct WalSegmentInfo {
  std::string path;
  std::uint64_t first_seq = 0;
  std::uint64_t file_bytes = 0;
  std::uint64_t records = 0;
};

struct WalRecordInfo {
  std::uint64_t seq = 0;
  std::size_t segment = 0;  ///< index into WalDump::segments
  std::uint64_t offset = 0;  ///< frame start within the segment file
  std::uint32_t payload_bytes = 0;
};

/// Read-only inspection of a WAL directory (svgctl wal-dump, tests).
/// `error` is non-empty on chain corruption; partial results are kept.
struct WalDump {
  std::vector<WalSegmentInfo> segments;
  std::vector<WalRecordInfo> records;
  WalReplayStats stats;
  std::string error;
};

/// `replay_after` is the checkpoint watermark: a chain whose oldest
/// segment starts past seq 1 is only valid if a snapshot covers the
/// retired prefix, so pass the newest checkpoint's last_seq (0 = no
/// checkpoint, the chain must reach back to seq 1).
[[nodiscard]] WalDump wal_dump(const std::string& dir,
                               std::uint64_t replay_after = 0,
                               Env* env = nullptr);

/// Truncate the log so that no record with seq > `seq` remains: later
/// segments are deleted, the segment containing seq+1 is cut at that
/// record's frame boundary, and a torn tail past the cut is dropped with
/// it. Used by CloudServer::try_recover_storage to realign the on-disk
/// log with the acked in-memory prefix before reopening after a disk
/// fault (unacked bytes from a failed batch must not resurrect — a client
/// retry of one of those uploads would otherwise log its id twice).
/// `replay_after` is the checkpoint watermark, as for wal_dump. False on
/// chain corruption or I/O failure.
[[nodiscard]] bool wal_trim_after(const std::string& dir, std::uint64_t seq,
                                  std::uint64_t replay_after = 0,
                                  Env* env = nullptr);

/// Segment file path for a given first sequence number.
[[nodiscard]] std::string wal_segment_path(const std::string& dir,
                                           std::uint64_t first_seq);

/// One WAL record with its payload — the unit the replication shipper
/// streams to followers (docs/CLUSTER.md).
struct WalRecordData {
  std::uint64_t seq = 0;
  std::vector<std::uint8_t> payload;
};

/// Stream records with seq in (after, after + max_records] out of a WAL
/// directory: the primary-side read of WAL-shipping replication, where
/// `after` is the follower's applied cursor. Returned records are
/// contiguous in seq. `replay_after` is the checkpoint watermark, as for
/// wal_dump (cluster primaries never retire segments, so 0). nullopt on
/// chain corruption or I/O failure; an empty vector means the follower is
/// caught up. max_records == 0 means no cap.
[[nodiscard]] std::optional<std::vector<WalRecordData>> wal_read_records(
    const std::string& dir, std::uint64_t after, std::size_t max_records = 0,
    std::uint64_t replay_after = 0, Env* env = nullptr);

struct WalOpenResult;

class Wal {
 public:
  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Durably append one record. Blocks until the record is acknowledged
  /// per the fsync policy; concurrent callers coalesce into one
  /// write+fsync. Returns the record's sequence number, or 0 after an
  /// unrecoverable I/O error (see ok()). I/O failure is fail-stop: the
  /// first failed write or fsync poisons the log permanently — every
  /// record of the failing batch (and everything after) returns 0 and
  /// durable_seq never advances again. In particular a failed fsync is
  /// never retried (fsyncgate: the kernel may have dropped the dirty
  /// pages, so a later "successful" fsync would ack lost data).
  std::uint64_t append(std::span<const std::uint8_t> payload);

  /// Force everything appended so far to disk (no-op effect under kNone).
  void sync();

  /// Highest sequence number known durable (== last_seq under kAlways
  /// after append returns; trails it under kBatch until the next fsync).
  [[nodiscard]] std::uint64_t durable_seq() const;
  /// Highest acknowledged sequence number.
  [[nodiscard]] std::uint64_t last_seq() const;
  [[nodiscard]] bool ok() const;

  /// Delete segments whose records are all ≤ seq (checkpoint retirement).
  /// The active segment is never deleted. Returns segments removed. A
  /// failed directory fsync afterwards poisons the WAL (fail-stop): the
  /// removals may not be durable, and per fsyncgate semantics nothing
  /// about the directory's durability can be assumed from then on.
  std::size_t retire_through(std::uint64_t seq);

  /// Paths of live segments, oldest first (active segment last).
  [[nodiscard]] std::vector<std::string> segment_files() const;

 private:
  friend struct WalOpenAccess;
  friend WalOpenResult wal_open(WalOptions options, std::uint64_t replay_after,
                                const WalReplayHandler& handler);
  explicit Wal(WalOptions options) : options_(options) {}

  void lead(std::unique_lock<std::mutex>& lock, bool force_sync);
  void sync_locked(std::unique_lock<std::mutex>& lock, std::uint64_t target);
  bool write_all(std::span<const std::uint8_t> bytes);
  bool do_fsync();
  bool rotate(std::uint64_t first_seq);
  bool open_segment(std::uint64_t first_seq, bool resume, std::uint64_t size);
  void start_flusher();

  WalOptions options_;

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;  // group-commit waiters
  std::condition_variable flush_cv_;  // flusher wakeup/stop
  std::vector<std::uint8_t> pending_;  // framed, not yet written
  std::uint64_t pending_first_seq_ = 0;
  std::uint64_t pending_last_seq_ = 0;
  std::uint64_t pending_count_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t written_seq_ = 0;   // handed to write()
  std::uint64_t durable_seq_ = 0;   // covered by fsync
  bool writing_ = false;            // a leader (or retirer) owns the file
  bool failed_ = false;
  bool stopping_ = false;

  Env* env_ = nullptr;  ///< resolved from options_.env at open

  // Owned by the current leader (writing_ == true) or by single-threaded
  // open/destroy; never touched otherwise.
  std::unique_ptr<File> file_;
  std::uint64_t segment_written_ = 0;
  std::uint64_t unsynced_bytes_ = 0;
  struct LiveSegment {
    std::string path;
    std::uint64_t first_seq;
  };
  std::vector<LiveSegment> segments_;

  std::thread flusher_;
};

struct WalOpenResult {
  std::unique_ptr<Wal> wal;  ///< null on failure
  WalReplayStats stats;
  std::string error;
};

/// Open (creating the directory if needed) a WAL for appending. Replays
/// every record with seq > replay_after through `handler` (may be null),
/// truncates a torn tail, and positions the log for the next append.
/// Fails — wal == nullptr, error set — on chain gaps or mid-chain
/// corruption rather than skipping acked records.
[[nodiscard]] WalOpenResult wal_open(WalOptions options,
                                     std::uint64_t replay_after,
                                     const WalReplayHandler& handler);

// --- record payload codec ---------------------------------------------------

inline constexpr std::uint8_t kWalRecUpload = 1;
inline constexpr std::uint8_t kWalRecUploadV2 = 2;

/// A decoded upload record. upload_id == 0 for v1 records (written before
/// retransmit dedup existed) and for id-less in-process ingest.
struct UploadRecord {
  std::uint64_t upload_id = 0;
  std::vector<core::RepresentativeFov> reps;
};

/// Payload of an upload record. upload_id == 0 emits the v1 layout
/// (u8 type=1 | varint count | records); a non-zero id emits v2
/// (u8 type=2 | varint upload_id | varint count | records). Records are
/// the snapshot codec's delta-encoded representative FoVs
/// (store/snapshot.hpp). Both layouts replay; the id is what lets
/// recovery rebuild the server's dedup set so a retransmit arriving
/// after a crash is still absorbed.
[[nodiscard]] std::vector<std::uint8_t> encode_upload_record(
    std::span<const core::RepresentativeFov> reps,
    std::uint64_t upload_id = 0);

/// nullopt on malformed payload (unknown type, truncated records).
[[nodiscard]] std::optional<UploadRecord> decode_upload_record(
    std::span<const std::uint8_t> payload);

}  // namespace svg::store
