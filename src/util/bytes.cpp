#include "util/bytes.hpp"

namespace svg::util {

namespace {

std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

}  // namespace

void ByteWriter::put_u16(std::uint16_t v) {
  put_u8(static_cast<std::uint8_t>(v));
  put_u8(static_cast<std::uint8_t>(v >> 8));
}
void ByteWriter::put_u32(std::uint32_t v) {
  put_u16(static_cast<std::uint16_t>(v));
  put_u16(static_cast<std::uint16_t>(v >> 16));
}
void ByteWriter::put_u64(std::uint64_t v) {
  put_u32(static_cast<std::uint32_t>(v));
  put_u32(static_cast<std::uint32_t>(v >> 32));
}
void ByteWriter::put_varint(std::uint64_t v) {
  while (v >= 0x80) {
    put_u8(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  put_u8(static_cast<std::uint8_t>(v));
}
void ByteWriter::put_svarint(std::int64_t v) { put_varint(zigzag(v)); }
void ByteWriter::put_bytes(std::span<const std::uint8_t> bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

std::optional<std::uint8_t> ByteReader::get_u8() {
  if (pos_ >= data_.size()) return std::nullopt;
  return data_[pos_++];
}
std::optional<std::uint16_t> ByteReader::get_u16() {
  const auto lo = get_u8();
  const auto hi = get_u8();
  if (!lo || !hi) return std::nullopt;
  return static_cast<std::uint16_t>(*lo | (*hi << 8));
}
std::optional<std::uint32_t> ByteReader::get_u32() {
  const auto lo = get_u16();
  const auto hi = get_u16();
  if (!lo || !hi) return std::nullopt;
  return static_cast<std::uint32_t>(*lo) |
         (static_cast<std::uint32_t>(*hi) << 16);
}
std::optional<std::uint64_t> ByteReader::get_u64() {
  const auto lo = get_u32();
  const auto hi = get_u32();
  if (!lo || !hi) return std::nullopt;
  return static_cast<std::uint64_t>(*lo) |
         (static_cast<std::uint64_t>(*hi) << 32);
}
std::optional<std::uint64_t> ByteReader::get_varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    const auto byte = get_u8();
    if (!byte) return std::nullopt;
    if (shift >= 64) return std::nullopt;  // overlong encoding
    v |= static_cast<std::uint64_t>(*byte & 0x7F) << shift;
    if ((*byte & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}
std::optional<std::int64_t> ByteReader::get_svarint() {
  const auto v = get_varint();
  if (!v) return std::nullopt;
  return unzigzag(*v);
}

}  // namespace svg::util
