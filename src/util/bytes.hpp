#pragma once
// Byte-level codec primitives shared by the wire protocol (net/wire.hpp),
// the snapshot format, and the write-ahead log (src/store/): LEB128
// varints, zigzag for signed deltas, little-endian fixed-width ints.
//
// These started life inside net/wire.hpp; they live in util so the
// durability subsystem can reuse the exact delta encoding the wire codec
// speaks without depending on the networking layer.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace svg::util {

class ByteWriter {
 public:
  void put_u8(std::uint8_t v) { buf_.push_back(v); }
  void put_u16(std::uint16_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_varint(std::uint64_t v);
  void put_svarint(std::int64_t v);  ///< zigzag + varint
  void put_bytes(std::span<const std::uint8_t> bytes);

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return buf_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Reads the formats ByteWriter emits. All getters return nullopt on
/// truncated input instead of throwing — a server must survive malformed
/// uploads, and recovery must survive torn log tails.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) noexcept
      : data_(data) {}

  [[nodiscard]] std::optional<std::uint8_t> get_u8();
  [[nodiscard]] std::optional<std::uint16_t> get_u16();
  [[nodiscard]] std::optional<std::uint32_t> get_u32();
  [[nodiscard]] std::optional<std::uint64_t> get_u64();
  [[nodiscard]] std::optional<std::uint64_t> get_varint();
  [[nodiscard]] std::optional<std::int64_t> get_svarint();

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }
  [[nodiscard]] bool exhausted() const noexcept { return pos_ >= data_.size(); }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace svg::util
