#include "util/rng.hpp"

#include <cmath>

namespace svg::util {

double Xoshiro256::gaussian() noexcept {
  if (has_cached_) {
    has_cached_ = false;
    return cached_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_ = v * factor;
  has_cached_ = true;
  return u * factor;
}

}  // namespace svg::util
