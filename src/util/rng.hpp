#pragma once
// Deterministic, fast pseudo-random number generation for simulations and
// benchmarks. We deliberately avoid std::mt19937 for hot workload-generation
// paths: xoshiro256++ is ~4x faster and has a tiny, trivially copyable state,
// which lets every simulated device carry its own independent stream.

#include <cstdint>
#include <limits>

namespace svg::util {

/// SplitMix64 — used to seed the main generator from a single 64-bit value.
/// Passes BigCrush when used as a generator itself; here it only spreads
/// low-entropy seeds across the full state space.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ by Blackman & Vigna. UniformRandomBitGenerator-compatible so
/// it can also drive <random> distributions when needed.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x5eed5eed5eed5eedULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Lemire's unbiased multiply-shift rejection.
  std::uint64_t bounded(std::uint64_t n) noexcept {
    if (n == 0) return 0;
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Marsaglia polar method (cached second deviate).
  double gaussian() noexcept;

  /// Normal with the given mean and standard deviation.
  double gaussian(double mean, double stddev) noexcept {
    return mean + stddev * gaussian();
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Derive an independent child stream (for per-device/per-thread streams).
  Xoshiro256 split() noexcept {
    return Xoshiro256(next() ^ 0x9e3779b97f4a7c15ULL);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  bool has_cached_ = false;
  double cached_ = 0.0;
};

}  // namespace svg::util
