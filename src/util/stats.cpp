#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace svg::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n_total = na + nb;
  mean_ += delta * nb / n_total;
  m2_ += other.m2_ + delta * delta * na * nb / n_total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double SampleSet::mean() const noexcept {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

void SampleSet::ensure_sorted() {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::quantile(double q) {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double SampleSet::min() {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.front();
}

double SampleSet::max() {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.back();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (bins == 0 || !(hi > lo)) {
    throw std::invalid_argument("Histogram: need bins>0 and hi>lo");
  }
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  idx = std::min(idx, counts_.size() - 1);
  ++counts_[idx];
}

double Histogram::bin_lo(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i + 1);
}

double pearson(std::span<const double> a, std::span<const double> b) noexcept {
  if (a.size() != b.size() || a.empty()) return 0.0;
  const auto n = static_cast<double>(a.size());
  double sa = 0, sb = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sa += a[i];
    sb += b[i];
  }
  const double ma = sa / n, mb = sb / n;
  double cov = 0, va = 0, vb = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va == 0.0 || vb == 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

double rmse(std::span<const double> a, std::span<const double> b) noexcept {
  if (a.size() != b.size() || a.empty()) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(a.size()));
}

}  // namespace svg::util
