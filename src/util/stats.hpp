#pragma once
// Streaming and batch statistics used throughout the evaluation harness:
// Welford running moments, exact percentiles over retained samples, fixed-bin
// histograms, and Pearson correlation (Fig. 5 correlates FoV-similarity and
// CV-similarity matrices).

#include <cstddef>
#include <span>
#include <vector>

namespace svg::util {

/// Numerically stable running mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;
  void clear() noexcept { *this = RunningStats{}; }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Retains every sample; supports exact quantiles. Use for latency
/// distributions where tail percentiles matter (Fig. 6c reports worst-case
/// sub-100ms response).
class SampleSet {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  void reserve(std::size_t n) { samples_.reserve(n); }

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] double mean() const noexcept;
  /// Exact quantile by linear interpolation, q in [0,1]. Sorts lazily.
  [[nodiscard]] double quantile(double q);
  [[nodiscard]] double median() { return quantile(0.5); }
  [[nodiscard]] double p99() { return quantile(0.99); }
  [[nodiscard]] double min();
  [[nodiscard]] double max();
  [[nodiscard]] std::span<const double> samples() const noexcept {
    return samples_;
  }

 private:
  void ensure_sorted();
  std::vector<double> samples_;
  bool sorted_ = false;
};

/// Fixed-range, fixed-bin histogram.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bin_count(std::size_t i) const {
    return counts_.at(i);
  }
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_lo(std::size_t i) const noexcept;
  [[nodiscard]] double bin_hi(std::size_t i) const noexcept;
  /// Count of samples outside [lo, hi).
  [[nodiscard]] std::size_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::size_t overflow() const noexcept { return overflow_; }

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

/// Pearson correlation coefficient of two equally sized series.
/// Returns 0 when either series has zero variance or sizes mismatch.
[[nodiscard]] double pearson(std::span<const double> a,
                             std::span<const double> b) noexcept;

/// Root-mean-square error between two equally sized series (0 on mismatch).
[[nodiscard]] double rmse(std::span<const double> a,
                          std::span<const double> b) noexcept;

}  // namespace svg::util
