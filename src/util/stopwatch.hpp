#pragma once
// Monotonic wall-clock timing for benchmarks and the retrieval latency
// measurements (Fig. 6b/6c reproduce per-operation timings).

#include <chrono>
#include <cstdint>

namespace svg::util {

/// A steady-clock stopwatch. Construction starts it.
class Stopwatch {
 public:
  using Clock = std::chrono::steady_clock;

  Stopwatch() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  /// Elapsed time since construction or the last reset().
  [[nodiscard]] std::chrono::nanoseconds elapsed() const noexcept {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_);
  }

  [[nodiscard]] double elapsed_ns() const noexcept {
    return static_cast<double>(elapsed().count());
  }
  [[nodiscard]] double elapsed_us() const noexcept {
    return elapsed_ns() / 1e3;
  }
  [[nodiscard]] double elapsed_ms() const noexcept {
    return elapsed_ns() / 1e6;
  }
  [[nodiscard]] double elapsed_s() const noexcept { return elapsed_ns() / 1e9; }

 private:
  Clock::time_point start_;
};

}  // namespace svg::util
