#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace svg::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("Table: need at least one column");
  }
}

Table& Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table: row width mismatch");
  }
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto cell = [](const std::string& s) {
    if (s.find(',') == std::string::npos &&
        s.find('"') == std::string::npos) {
      return s;
    }
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << cell(row[c]);
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace svg::util
