#pragma once
// Aligned-console and CSV table emission. Every bench binary prints the rows
// of its paper figure through this writer so output is uniform and grep-able.

#include <iosfwd>
#include <string>
#include <vector>

namespace svg::util {

/// Collects rows of string cells and renders them either as an aligned text
/// table (for terminals) or CSV (for plotting). Cell conversion helpers
/// format doubles with a fixed precision.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);

  /// Format a double with `precision` digits after the point.
  static std::string num(double v, int precision = 3);
  /// Integers of any width format exactly (no ambiguity with the double
  /// overload thanks to the constraint).
  template <typename T>
    requires std::integral<T>
  static std::string num(T v) {
    return std::to_string(v);
  }

  /// Render with column alignment and a header underline.
  void print(std::ostream& os) const;
  /// Render as RFC-4180-ish CSV (cells containing commas are quoted).
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& header() const noexcept {
    return headers_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& data()
      const noexcept {
    return rows_;
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace svg::util
