#include "util/thread_pool.hpp"

#include <algorithm>
#include <chrono>

namespace svg::util {

ThreadPool::ThreadPool(std::size_t threads, ThreadPoolObserver* observer)
    : observer_(observer) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
      if (observer_ != nullptr) observer_->on_dequeue(queue_.size());
    }
    if (observer_ != nullptr) {
      const auto start = std::chrono::steady_clock::now();
      task();
      observer_->on_complete(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start)
              .count()));
    } else {
      task();
    }
    {
      std::lock_guard lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

std::size_t ThreadPool::queue_depth() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t chunks = std::min(n, workers_.size());
  const std::size_t per = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futs;
  futs.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = c * per;
    const std::size_t hi = std::min(n, lo + per);
    if (lo >= hi) break;
    futs.push_back(submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  for (auto& f : futs) f.get();
}

}  // namespace svg::util
