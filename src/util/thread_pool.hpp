#pragma once
// A small fixed-size thread pool. The retrieval server uses it to answer
// concurrent queries (the paper's cloud side serves "pervasive inquirers"),
// and the benches use it for parallel corpus generation.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace svg::util {

/// Observation hook for pool instrumentation. util stays free of the obs
/// layer; obs::ThreadPoolMetrics implements this to feed the process-wide
/// queue-depth gauge and task-latency histogram. Callbacks run on pool
/// threads (enqueue: caller thread) and must be cheap and non-blocking.
class ThreadPoolObserver {
 public:
  virtual ~ThreadPoolObserver() = default;
  /// A task entered the queue; `queue_depth` counts it.
  virtual void on_enqueue(std::size_t queue_depth) noexcept = 0;
  /// A worker dequeued a task and is about to run it.
  virtual void on_dequeue(std::size_t queue_depth) noexcept = 0;
  /// A task finished after `task_ns` nanoseconds of execution. Fires after
  /// the task's future is satisfied, so a reader synchronizing on a future
  /// may observe the completion before this callback lands; `wait_idle()`
  /// is the consistency point (workers decrement the active count only
  /// after on_complete returns).
  virtual void on_complete(std::uint64_t task_ns) noexcept = 0;
};

class ThreadPool {
 public:
  /// Spawns `threads` workers (hardware_concurrency when 0). The observer,
  /// when given, must outlive the pool.
  explicit ThreadPool(std::size_t threads = 0,
                      ThreadPoolObserver* observer = nullptr);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a callable; the future resolves with its result (or exception).
  template <typename F, typename... Args>
  auto submit(F&& f, Args&&... args)
      -> std::future<std::invoke_result_t<F, Args...>> {
    using R = std::invoke_result_t<F, Args...>;
    auto task = std::make_shared<std::packaged_task<R()>>(
        [fn = std::forward<F>(f),
         ... as = std::forward<Args>(args)]() mutable -> R {
          return std::invoke(std::move(fn), std::move(as)...);
        });
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stopping_) {
        throw std::runtime_error("ThreadPool: submit after shutdown");
      }
      queue_.emplace_back([task]() { (*task)(); });
      if (observer_ != nullptr) observer_->on_enqueue(queue_.size());
    }
    cv_.notify_one();
    return fut;
  }

  /// Block until every queued and running task has finished.
  void wait_idle();

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Tasks queued but not yet started (instantaneous; racy by nature).
  [[nodiscard]] std::size_t queue_depth() const;

  /// Run fn(i) for i in [0, n) across the pool and wait for completion.
  /// Work is divided into contiguous chunks, one per worker.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  ThreadPoolObserver* observer_ = nullptr;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

}  // namespace svg::util
