// Cluster chaos acceptance (the issue's bar): across 100 seeded fault
// plans, a 3-node cluster whose links drop/duplicate/reorder/corrupt —
// with a mid-run node crash, follower promotion, and later rejoin — must
// converge to the byte-identical canonical content of a fault-free
// single-node run over the same uploads, and its scatter-gather answers
// must match the single node's through the client results codec.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "net/fault.hpp"
#include "net/server.hpp"
#include "net/upload_queue.hpp"
#include "net/wire.hpp"
#include "sim/crowd.hpp"
#include "store/snapshot.hpp"
#include "util/rng.hpp"

namespace {

using namespace svg;
using namespace svg::cluster;

struct ScopedDir {
  explicit ScopedDir(const std::string& tag) {
    path = (std::filesystem::temp_directory_path() /
            ("svg_cluster_chaos_" + tag + "_" + std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~ScopedDir() { std::filesystem::remove_all(path); }
  std::string path;
};

std::vector<net::UploadMessage> make_uploads(std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  sim::CityModel city;
  const std::size_t n_uploads = 3 + rng.bounded(4);  // 3..6
  std::vector<net::UploadMessage> uploads;
  for (std::size_t u = 0; u < n_uploads; ++u) {
    net::UploadMessage msg;
    msg.video_id = u + 1;
    msg.segments = sim::random_representative_fovs(
        6 + rng.bounded(7), city, 1'400'000'000'000, 3'600'000, rng);
    for (std::size_t i = 0; i < msg.segments.size(); ++i) {
      msg.segments[i].video_id = msg.video_id;
      msg.segments[i].segment_id = static_cast<std::uint32_t>(i);
    }
    uploads.push_back(std::move(msg));
  }
  return uploads;
}

net::FaultPlan make_plan(std::uint64_t seed) {
  util::Xoshiro256 rng(seed ^ 0xC1A05);
  net::FaultPlan plan;
  plan.seed = seed;
  plan.drop = rng.uniform() * 0.25;
  plan.duplicate = rng.uniform() * 0.2;
  plan.reorder = rng.uniform() * 0.2;
  plan.corrupt = rng.uniform() * 0.1;
  // No disconnect windows: replication rounds do not advance sim time, so
  // a window could stall the convergence loop artificially. Drop/dup/
  // reorder/corrupt are the faults the cluster protocol must absorb.
  return plan;
}

bool drain(Cluster& cluster, const std::vector<net::UploadMessage>& uploads,
           std::uint64_t queue_seed, net::SimClock& clock) {
  net::RetryPolicy policy;
  policy.max_attempts = 64;
  net::UploadQueue queue(policy, queue_seed, &clock);
  for (const auto& m : uploads) queue.enqueue(m);
  return queue.drain(cluster.router().upload_channel());
}

retrieval::Query probe_query(util::Xoshiro256& rng) {
  const geo::Box2 b = sim::CityModel{}.bounds_deg();
  retrieval::Query q;
  q.t_start = 1'400'000'000'000;
  q.t_end = q.t_start + 3'600'000;
  q.center = {b.min[1] + rng.uniform() * (b.max[1] - b.min[1]),
              b.min[0] + rng.uniform() * (b.max[0] - b.min[0])};
  q.radius_m = 40.0 + rng.uniform() * 80.0;
  return q;
}

std::vector<std::uint8_t> results_bytes(
    const std::vector<retrieval::RankedResult>& hits) {
  net::ResultsMessage out;
  for (const auto& h : hits) {
    net::ResultEntry e;
    e.video_id = h.rep.video_id;
    e.segment_id = h.rep.segment_id;
    e.t_start = h.rep.t_start;
    e.t_end = h.rep.t_end;
    e.distance_m = static_cast<float>(h.distance_m);
    out.entries.push_back(e);
  }
  return net::encode_results(out);
}

TEST(ClusterChaosPropertyTest, FaultyClusterWithPromotionConvergesAcross100Seeds) {
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    ScopedDir dir("seed_" + std::to_string(seed));
    const auto uploads = make_uploads(seed);
    const std::uint64_t queue_seed = seed * 31 + 7;

    // Fault-free single-node oracle. Roundtrip each upload through the
    // wire codec so the oracle indexes the same quantized positions the
    // cluster nodes saw (the codec stores 1e-7 degree fixed point).
    net::CloudServer oracle;
    for (const auto& m : uploads) {
      net::UploadMessage msg = m;
      msg.upload_id = 0;  // content oracle; ids are a cluster concern
      const auto rt = net::decode_upload(net::encode_upload(msg));
      ASSERT_TRUE(rt.has_value());
      ASSERT_TRUE(oracle.ingest(*rt));
    }
    ASSERT_TRUE(oracle.save_snapshot(dir.path + "/oracle.snap"));
    const auto snap = store::load_snapshot_file_full(dir.path + "/oracle.snap");
    ASSERT_TRUE(snap.has_value());
    const auto want = canonical_fingerprint(snap->reps);

    // 3-node durable cluster under the seed's fault plan.
    net::SimClock clock;
    ClusterConfig cfg;
    cfg.nodes = 3;
    cfg.partition.bounds = sim::CityModel{}.bounds_deg();
    cfg.data_dir = dir.path + "/cluster";
    cfg.faulty = true;
    cfg.fault = make_plan(seed);
    cfg.clock = &clock;
    Cluster cluster(cfg);

    // Phase 1: deliver a prefix, replicate a little (deliberately not to
    // quiescence — the crash must be able to strand acked rows).
    const std::size_t prefix = 1 + uploads.size() / 2;
    ASSERT_TRUE(drain(
        cluster,
        std::vector<net::UploadMessage>(uploads.begin(),
                                        uploads.begin() + prefix),
        queue_seed, clock))
        << "seed " << seed;
    cluster.replicate_round(2);

    // Crash one node (seed-chosen) and let the probes promote.
    const std::size_t victim = seed % cfg.nodes;
    cluster.fail_node(victim);
    for (std::uint32_t p = 0; p < 3; ++p) cluster.probe_round();
    for (std::size_t part = 0; part < cfg.nodes; ++part) {
      ASSERT_NE(cluster.router().routing().table.primary_of[part], victim)
          << "seed " << seed;
    }

    // Phase 2: a recovered client re-enqueues EVERYTHING with the same
    // queue seed — the prefix reproduces its upload_ids, so sub-upload
    // dedup must absorb the replays even though some legs now land on the
    // promoted node instead of the original primary.
    ASSERT_TRUE(drain(cluster, uploads, queue_seed, clock))
        << "seed " << seed;

    // Rejoin the crashed node; its surviving WAL re-ships rows that were
    // acked but never replicated before the crash.
    cluster.rejoin_node(victim);
    std::size_t rounds = 0;
    for (; rounds < 400; ++rounds) {
      const std::size_t applied = cluster.replicate_round();
      bool caught_up = applied == 0;
      for (std::size_t i = 0; i < cfg.nodes && caught_up; ++i) {
        if (cluster.replication_lag(i) > 0) caught_up = false;
      }
      if (caught_up) break;
      clock.advance(50.0);
    }
    ASSERT_LT(rounds, 400u) << "replication never converged at seed " << seed;

    // Oracle 1: ownership-filtered union == fault-free single node, byte
    // for byte.
    const auto got = cluster.canonical_bytes(dir.path);
    ASSERT_TRUE(got.has_value()) << "seed " << seed;
    ASSERT_EQ(*got, want) << "canonical bytes diverged at seed " << seed;

    // Oracle 2: scatter-gather answers match the single node through the
    // client codec.
    util::Xoshiro256 rng(seed ^ 0xFEED);
    for (int i = 0; i < 3; ++i) {
      const retrieval::Query q = probe_query(rng);
      bool complete = false;
      const auto hits = cluster.router().search(q, 10, &complete, 64);
      ASSERT_TRUE(complete) << "seed " << seed << " probe " << i;
      ASSERT_EQ(results_bytes(hits), results_bytes(oracle.search_n(q, 10)))
          << "results diverged at seed " << seed << " probe " << i;
    }
  }
}

}  // namespace
