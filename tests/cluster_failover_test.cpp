// Failover lifecycle on the in-process cluster harness: a crashed node's
// partitions are promoted to its ring follower after the probe threshold
// (with journal events and metrics), ingest and queries keep working
// against the new table, and a rejoined node re-ships its surviving WAL so
// the cluster converges back to the single-node oracle byte-for-byte.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "net/server.hpp"
#include "net/upload_queue.hpp"
#include "obs/families.hpp"
#include "obs/journal.hpp"
#include "sim/crowd.hpp"
#include "store/snapshot.hpp"
#include "util/rng.hpp"

namespace {

using namespace svg;
using namespace svg::cluster;

struct ScopedDir {
  explicit ScopedDir(const std::string& tag) {
    path = (std::filesystem::temp_directory_path() /
            ("svg_cluster_fo_" + tag + "_" + std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~ScopedDir() { std::filesystem::remove_all(path); }
  std::string path;
};

std::vector<net::UploadMessage> make_uploads(std::uint64_t seed,
                                             std::size_t count) {
  util::Xoshiro256 rng(seed);
  sim::CityModel city;
  std::vector<net::UploadMessage> uploads;
  for (std::size_t u = 0; u < count; ++u) {
    net::UploadMessage msg;
    msg.video_id = u + 1;
    msg.segments = sim::random_representative_fovs(
        5 + rng.bounded(4), city, 1'400'000'000'000, 3'600'000, rng);
    for (std::size_t i = 0; i < msg.segments.size(); ++i) {
      msg.segments[i].video_id = msg.video_id;
      msg.segments[i].segment_id = static_cast<std::uint32_t>(i);
    }
    uploads.push_back(std::move(msg));
  }
  return uploads;
}

ClusterConfig durable_config(const std::string& dir) {
  ClusterConfig cfg;
  cfg.nodes = 3;
  cfg.partition.bounds = sim::CityModel{}.bounds_deg();
  cfg.partition.cells_per_side = 16;
  cfg.data_dir = dir;
  return cfg;
}

/// The upload wire codec quantizes positions (1e-7 degree fixed point);
/// an oracle that should rank like the cluster must ingest the same
/// quantized FoVs the nodes saw.
net::UploadMessage wire_roundtrip(const net::UploadMessage& m) {
  const auto back = net::decode_upload(net::encode_upload(m));
  EXPECT_TRUE(back.has_value());
  return *back;
}

/// Deliver uploads through the router with a fault-free queue.
bool drain(Cluster& cluster, const std::vector<net::UploadMessage>& uploads,
           std::uint64_t queue_seed) {
  net::UploadQueue queue({}, queue_seed);
  for (const auto& m : uploads) queue.enqueue(m);
  return queue.drain(cluster.router().upload_channel());
}

TEST(ClusterFailoverTest, ProbeThresholdPromotesWithJournalAndMetrics) {
  ScopedDir dir("promote");
  Cluster cluster(durable_config(dir.path + "/c"));
  const auto uploads = make_uploads(11, 6);
  ASSERT_TRUE(drain(cluster, uploads, 77));
  cluster.replicate_until_quiescent();

  auto& m = obs::cluster_metrics();
  const std::uint64_t promotions_before = m.promotions.value();
  const std::uint64_t demotions_before = m.demotions.value();
  const std::uint64_t journal_before = obs::Journal::global().appended();
  const std::uint64_t epoch_before = cluster.router().routing().table.epoch;

  cluster.fail_node(1);
  EXPECT_FALSE(cluster.node_up(1));
  EXPECT_EQ(m.nodes_up.value(), 2);

  // Below the threshold: nothing moves.
  cluster.probe_round();
  cluster.probe_round();
  EXPECT_EQ(cluster.router().routing().table.primary_of[1], 1u);
  EXPECT_EQ(m.promotions.value(), promotions_before);

  // Third consecutive failed probe: partition 1 fails over to node 2
  // (node 1's ring follower — the node its WAL replicates to).
  cluster.probe_round();
  const auto routing = cluster.router().routing();
  EXPECT_EQ(routing.table.primary_of[1], 2u);
  EXPECT_GT(routing.table.epoch, epoch_before);
  EXPECT_EQ(m.promotions.value(), promotions_before + 1);
  EXPECT_EQ(m.demotions.value(), demotions_before + 1);

  // Journal: one primary_demoted, one follower_promoted, in that order.
  bool saw_demoted = false;
  bool saw_promoted = false;
  for (const auto& rec : obs::Journal::global().tail()) {
    if (rec.seq <= journal_before) continue;
    if (rec.event == obs::JournalEvent::kPrimaryDemoted) {
      EXPECT_EQ(rec.args[0], 1u);  // partition
      EXPECT_EQ(rec.args[1], 1u);  // old node
      EXPECT_FALSE(saw_promoted) << "demotion must be journaled first";
      saw_demoted = true;
    }
    if (rec.event == obs::JournalEvent::kFollowerPromoted) {
      EXPECT_EQ(rec.args[0], 1u);  // partition
      EXPECT_EQ(rec.args[1], 2u);  // new node
      EXPECT_EQ(rec.args[2], routing.table.epoch);
      saw_promoted = true;
    }
  }
  EXPECT_TRUE(saw_demoted);
  EXPECT_TRUE(saw_promoted);

  // A further probe round must not promote again (threshold is an edge,
  // not a level).
  cluster.probe_round();
  EXPECT_EQ(m.promotions.value(), promotions_before + 1);
}

TEST(ClusterFailoverTest, IngestAndQueriesContinueAfterFailover) {
  ScopedDir dir("continue");
  Cluster cluster(durable_config(dir.path + "/c"));
  const auto phase1 = make_uploads(21, 5);
  ASSERT_TRUE(drain(cluster, phase1, 101));
  cluster.replicate_until_quiescent();

  cluster.fail_node(0);
  for (int i = 0; i < 3; ++i) cluster.probe_round();
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_NE(cluster.router().routing().table.primary_of[p], 0u);
  }

  // New uploads (including ones homed on the failed node's partition) must
  // land on the promoted node.
  auto phase2 = make_uploads(22, 5);
  for (auto& m : phase2) {
    m.video_id += 100;
    for (auto& s : m.segments) s.video_id = m.video_id;
  }
  ASSERT_TRUE(drain(cluster, phase2, 102));

  // The cluster must answer with everything: the oracle holds all uploads.
  net::CloudServer oracle;
  for (const auto& m : phase1) ASSERT_TRUE(oracle.ingest(wire_roundtrip(m)));
  for (const auto& m : phase2) ASSERT_TRUE(oracle.ingest(wire_roundtrip(m)));
  sim::CityModel city;
  util::Xoshiro256 rng(5);
  for (int i = 0; i < 10; ++i) {
    retrieval::Query q;
    q.t_start = 1'400'000'000'000;
    q.t_end = q.t_start + 3'600'000;
    const geo::Box2 b = city.bounds_deg();
    q.center = {b.min[1] + rng.uniform() * (b.max[1] - b.min[1]),
                b.min[0] + rng.uniform() * (b.max[0] - b.min[0])};
    q.radius_m = 60.0;
    bool complete = false;
    const auto got = cluster.router().search(q, 10, &complete);
    ASSERT_TRUE(complete) << "query " << i;
    const auto want = oracle.search_n(q, 10);
    ASSERT_EQ(got.size(), want.size()) << "query " << i;
    for (std::size_t r = 0; r < got.size(); ++r) {
      EXPECT_EQ(got[r].rep.video_id, want[r].rep.video_id);
      EXPECT_EQ(got[r].rep.segment_id, want[r].rep.segment_id);
      EXPECT_EQ(got[r].distance_m, want[r].distance_m);  // exact doubles
    }
  }
}

TEST(ClusterFailoverTest, RejoinResyncConvergesToOracleBytes) {
  ScopedDir dir("rejoin");
  Cluster cluster(durable_config(dir.path + "/c"));
  const auto phase1 = make_uploads(31, 6);
  ASSERT_TRUE(drain(cluster, phase1, 201));
  // Deliberately do NOT replicate before the crash: node 2's acked rows
  // exist only in its own WAL. The rejoin resync must recover them.
  cluster.fail_node(2);
  for (int i = 0; i < 3; ++i) cluster.probe_round();

  auto phase2 = make_uploads(32, 4);
  for (auto& m : phase2) {
    m.video_id += 500;
    for (auto& s : m.segments) s.video_id = m.video_id;
  }
  ASSERT_TRUE(drain(cluster, phase2, 202));

  // Rejoin: recovery replays node 2's WAL, then the ring ships its rows to
  // node 0 (its follower — now serving node 2's partition? No: partition 2
  // was promoted to node 0, which IS node 2's ring follower, so the resync
  // lands exactly where queries now go).
  cluster.rejoin_node(2);
  ASSERT_TRUE(cluster.node_up(2));
  cluster.replicate_until_quiescent();

  net::CloudServer oracle;
  for (const auto& m : phase1) ASSERT_TRUE(oracle.ingest(m));
  for (const auto& m : phase2) ASSERT_TRUE(oracle.ingest(m));
  ASSERT_TRUE(oracle.save_snapshot(dir.path + "/oracle.snap"));
  const auto snap = store::load_snapshot_file_full(dir.path + "/oracle.snap");
  ASSERT_TRUE(snap.has_value());
  const auto want = canonical_fingerprint(snap->reps);

  const auto got = cluster.canonical_bytes(dir.path);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, want);
}

TEST(ClusterFailoverTest, LagAlertJournalsOnceAtThresholdCrossing) {
  ScopedDir dir("lag");
  ClusterConfig cfg = durable_config(dir.path + "/c");
  cfg.lag_alert_records = 2;
  Cluster cluster(cfg);
  // Fail node 1 (and promote, so ingest keeps working) — node 0's stream
  // has no live follower and cannot drain.
  cluster.fail_node(1);
  for (int i = 0; i < 3; ++i) cluster.probe_round();

  const auto uploads = make_uploads(41, 8);  // ≥ 2 WAL records on node 0
  ASSERT_TRUE(drain(cluster, uploads, 301));

  auto& m = obs::cluster_metrics();
  const std::uint64_t alerts_before = m.lag_alerts.value();
  const std::uint64_t journal_before = obs::Journal::global().appended();
  cluster.replicate_round();
  cluster.replicate_round();  // still lagged: must not re-alert
  EXPECT_EQ(m.lag_alerts.value(), alerts_before + 1);
  EXPECT_GE(cluster.replication_lag(0), cfg.lag_alert_records);
  bool saw = false;
  for (const auto& rec : obs::Journal::global().tail()) {
    if (rec.seq <= journal_before) continue;
    if (rec.event == obs::JournalEvent::kReplicationLagged) {
      EXPECT_EQ(rec.args[0], 0u);  // primary
      EXPECT_EQ(rec.args[1], 1u);  // follower
      EXPECT_GE(rec.args[2], cfg.lag_alert_records);
      saw = true;
    }
  }
  EXPECT_TRUE(saw);

  // Rejoin the follower and drain: the alert latch clears with the lag.
  cluster.rejoin_node(1);
  cluster.replicate_until_quiescent();
  EXPECT_EQ(cluster.replication_lag(0), 0u);
  EXPECT_EQ(m.replication_lag.value(), 0);
}

}  // namespace
