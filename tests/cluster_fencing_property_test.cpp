// Epoch-fencing properties (cluster/fence.hpp): routing-table epochs are
// strictly monotonic per retarget, no two nodes accept writes for the
// same partition in the same epoch, a rejoined node lands in a strictly
// newer epoch than the one it crashed under, and — the split-brain
// scenario the fence exists for — an ASYMMETRIC partition (probe path
// dead, client path alive) never dual-acks and the cluster still
// converges byte-identically to the fault-free single-node oracle across
// many seeds.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/fence.hpp"
#include "net/server.hpp"
#include "net/upload_queue.hpp"
#include "obs/families.hpp"
#include "obs/journal.hpp"
#include "sim/crowd.hpp"
#include "store/snapshot.hpp"
#include "util/rng.hpp"

namespace {

using namespace svg;
using namespace svg::cluster;

struct ScopedDir {
  explicit ScopedDir(const std::string& tag) {
    path = (std::filesystem::temp_directory_path() /
            ("svg_fence_" + tag + "_" + std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~ScopedDir() { std::filesystem::remove_all(path); }
  std::string path;
};

std::vector<net::UploadMessage> make_uploads(std::uint64_t seed,
                                             std::size_t count) {
  util::Xoshiro256 rng(seed);
  sim::CityModel city;
  std::vector<net::UploadMessage> uploads;
  for (std::size_t u = 0; u < count; ++u) {
    net::UploadMessage msg;
    msg.video_id = u + 1;
    msg.segments = sim::random_representative_fovs(
        5 + rng.bounded(4), city, 1'400'000'000'000, 3'600'000, rng);
    for (std::size_t i = 0; i < msg.segments.size(); ++i) {
      msg.segments[i].video_id = msg.video_id;
      msg.segments[i].segment_id = static_cast<std::uint32_t>(i);
    }
    uploads.push_back(std::move(msg));
  }
  return uploads;
}

ClusterConfig fencing_config(const std::string& dir) {
  ClusterConfig cfg;
  cfg.nodes = 3;
  cfg.partition.bounds = sim::CityModel{}.bounds_deg();
  cfg.partition.cells_per_side = 16;
  cfg.data_dir = dir;
  cfg.fencing = true;
  return cfg;
}

bool drain(Cluster& cluster, const std::vector<net::UploadMessage>& uploads,
           std::uint64_t queue_seed) {
  net::RetryPolicy policy;
  policy.max_attempts = 64;
  net::UploadQueue queue(policy, queue_seed);
  for (const auto& m : uploads) queue.enqueue(m);
  return queue.drain(cluster.router().upload_channel());
}

/// One upload whose every segment falls in `partition` (probe positions
/// until the partitioner agrees), so an ack from a node IS an acceptance
/// for that partition.
net::UploadMessage single_partition_upload(const GeoPartitioner& partitioner,
                                           std::size_t partition,
                                           std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  sim::CityModel city;
  for (int tries = 0; tries < 10'000; ++tries) {
    auto segs = sim::random_representative_fovs(1, city, 1'400'000'000'000,
                                                3'600'000, rng);
    const auto& rep = segs.front();
    if (partitioner.partition_of(rep.fov.p.lng, rep.fov.p.lat) != partition) {
      continue;
    }
    net::UploadMessage msg;
    msg.video_id = 9'000 + partition;
    msg.segments = std::move(segs);
    msg.segments.front().video_id = msg.video_id;
    msg.segments.front().segment_id = 0;
    return msg;
  }
  ADD_FAILURE() << "no position found for partition " << partition;
  return {};
}

/// Deliver one stamped upload straight to a node (bypassing the router)
/// and return the decoded ack, if any.
std::optional<net::UploadAck> offer(Cluster& cluster, std::size_t node,
                                    net::UploadMessage msg,
                                    std::uint64_t epoch, bool stamped) {
  msg.route_epoch = epoch;
  msg.has_route_epoch = stamped;
  const auto bytes = net::encode_upload(msg);
  for (const auto& reply : cluster.exchange_fn()(node, bytes)) {
    if (const auto ack = net::decode_upload_ack(reply)) return ack;
  }
  return std::nullopt;
}

TEST(ClusterFencingPropertyTest, EpochBumpsMonotonicallyPerRetarget) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    util::Xoshiro256 rng(seed);
    ScopedDir dir("mono" + std::to_string(seed));
    ClusterConfig cfg = fencing_config(dir.path + "/c");
    Cluster cluster(cfg);
    std::uint64_t last = cluster.router().routing().table.epoch;
    for (int step = 0; step < 20; ++step) {
      const std::size_t p =
          rng.bounded(cluster.router().routing().table.primary_of.size());
      cluster.router().set_primary(p, static_cast<std::uint32_t>(
                                          rng.bounded(cfg.nodes)));
      const std::uint64_t epoch = cluster.router().routing().table.epoch;
      EXPECT_GT(epoch, last) << "seed " << seed << " step " << step;
      last = epoch;
    }
  }
}

TEST(ClusterFencingPropertyTest, FenceRefusesBeforePromotionCanDualAck) {
  // The fence window: the victim must stop acking (miss_threshold = 2)
  // BEFORE its partitions are retargeted (probe_fail_threshold = 3), so
  // there is no epoch in which two nodes accept the same partition.
  ScopedDir dir("window");
  ClusterConfig cfg = fencing_config(dir.path + "/c");
  Cluster cluster(cfg);
  const GeoPartitioner partitioner(cluster.router().routing().partition);
  ASSERT_TRUE(drain(cluster, make_uploads(3, 4), 11));
  cluster.replicate_until_quiescent();

  const std::uint64_t epoch0 = cluster.router().routing().table.epoch;
  const std::size_t victim = 0;
  cluster.set_probe_reachable(victim, false);

  // Two missed heartbeats: fenced, not yet demoted.
  cluster.probe_round();
  cluster.probe_round();
  ASSERT_NE(cluster.fence(victim), nullptr);
  EXPECT_TRUE(cluster.fence(victim)->fenced());
  EXPECT_EQ(cluster.router().routing().table.primary_of[victim],
            static_cast<std::uint32_t>(victim))
      << "not demoted yet";
  EXPECT_EQ(obs::cluster_metrics().nodes_fenced.value(), 1);

  // A write stamped with the CURRENT epoch is refused by the fenced
  // victim — this is the window where pre-fencing clusters dual-acked.
  const auto msg = single_partition_upload(partitioner, victim, 5);
  util::SplitMix64 ids(99);
  net::UploadMessage attempt = msg;
  attempt.upload_id = ids.next();
  const auto ack = offer(cluster, victim, attempt, epoch0, true);
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->status, net::UploadAckStatus::kStaleEpoch);
  EXPECT_EQ(ack->node_epoch, epoch0);

  // Third missed probe: partition retargeted in a strictly newer epoch.
  cluster.probe_round();
  const auto routing = cluster.router().routing();
  const std::uint32_t owner = routing.table.primary_of[victim];
  ASSERT_NE(owner, static_cast<std::uint32_t>(victim));
  ASSERT_GT(routing.table.epoch, epoch0);

  // Stale-epoch writes are refused by BOTH the old and the new owner;
  // only a current-epoch write to the new owner is accepted. One writer
  // per (partition, epoch).
  attempt.upload_id = ids.next();
  const auto stale_old = offer(cluster, victim, attempt, epoch0, true);
  ASSERT_TRUE(stale_old.has_value());
  EXPECT_EQ(stale_old->status, net::UploadAckStatus::kStaleEpoch);
  const auto stale_new = offer(cluster, owner, attempt, epoch0, true);
  ASSERT_TRUE(stale_new.has_value());
  EXPECT_EQ(stale_new->status, net::UploadAckStatus::kStaleEpoch);
  EXPECT_EQ(stale_new->node_epoch, routing.table.epoch);
  const auto current =
      offer(cluster, owner, attempt, routing.table.epoch, true);
  ASSERT_TRUE(current.has_value());
  EXPECT_EQ(current->status, net::UploadAckStatus::kAccepted);

  // The journal saw the fence go up and the refusals.
  bool saw_fenced = false;
  bool saw_rejected = false;
  for (const auto& rec : obs::Journal::global().tail()) {
    if (rec.event == obs::JournalEvent::kNodeFenced) saw_fenced = true;
    if (rec.event == obs::JournalEvent::kStaleEpochRejected) {
      saw_rejected = true;
    }
  }
  EXPECT_TRUE(saw_fenced);
  EXPECT_TRUE(saw_rejected);
}

TEST(ClusterFencingPropertyTest, RejoinLandsInStrictlyNewerEpoch) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    ScopedDir dir("rejoin" + std::to_string(seed));
    ClusterConfig cfg = fencing_config(dir.path + "/c");
    Cluster cluster(cfg);
    ASSERT_TRUE(drain(cluster, make_uploads(seed, 3), seed * 7 + 1));
    cluster.replicate_until_quiescent();

    const std::size_t victim = seed % cfg.nodes;
    const std::uint64_t crash_epoch = cluster.fence(victim)->epoch();
    cluster.fail_node(victim);
    for (std::uint32_t r = 0; r < cfg.probe_fail_threshold; ++r) {
      cluster.probe_round();
    }
    ASSERT_NE(cluster.router().routing().table.primary_of[victim],
              static_cast<std::uint32_t>(victim));

    cluster.rejoin_node(victim);
    ASSERT_NE(cluster.fence(victim), nullptr);
    EXPECT_GT(cluster.fence(victim)->epoch(), crash_epoch)
        << "seed " << seed;
    // And the rejoined node refuses writes for its lost partition even at
    // the current epoch — it no longer owns it.
    const GeoPartitioner partitioner(cluster.router().routing().partition);
    auto msg = single_partition_upload(partitioner, victim, seed);
    msg.upload_id = seed * 1'000 + 17;
    const auto ack = offer(cluster, victim, msg,
                           cluster.router().routing().table.epoch, true);
    ASSERT_TRUE(ack.has_value());
    EXPECT_EQ(ack->status, net::UploadAckStatus::kStaleEpoch);
  }
}

TEST(ClusterFencingPropertyTest, AsymmetricPartitionConvergesToOracle) {
  // ≥50 seeds: probe path to one node dies mid-stream while the client
  // path stays alive. The fence refuses the victim's ingest during the
  // window, the router refreshes-and-retries on kStaleEpoch, failover
  // retargets, and the final cluster content is byte-identical to the
  // fault-free single-node oracle.
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    ScopedDir dir("conv" + std::to_string(seed));
    const auto uploads = make_uploads(seed * 131 + 5, 8);

    net::CloudServer oracle;
    for (const auto& m : uploads) {
      net::UploadMessage msg = m;
      msg.upload_id = 0;  // content oracle; ids are a cluster concern
      const auto rt = net::decode_upload(net::encode_upload(msg));
      ASSERT_TRUE(rt.has_value());
      ASSERT_TRUE(oracle.ingest(*rt));
    }
    ASSERT_TRUE(oracle.save_snapshot(dir.path + "/oracle.snap"));
    const auto snap =
        store::load_snapshot_file_full(dir.path + "/oracle.snap");
    ASSERT_TRUE(snap.has_value());
    const auto want = canonical_fingerprint(snap->reps);

    ClusterConfig cfg = fencing_config(dir.path + "/cluster");
    Cluster cluster(cfg);

    // Phase 1: half the corpus lands cleanly.
    const std::size_t prefix = uploads.size() / 2;
    ASSERT_TRUE(drain(cluster,
                      {uploads.begin(), uploads.begin() + prefix},
                      seed * 31 + 7));
    cluster.replicate_until_quiescent();

    // Phase 2: asymmetric partition on a seed-chosen victim. Probes miss
    // (fence, then failover) while the client path keeps delivering — the
    // victim refuses with kStaleEpoch rather than dual-acking, and the
    // retries land on the promoted follower.
    const std::size_t victim = seed % cfg.nodes;
    cluster.set_probe_reachable(victim, false);
    for (std::uint32_t r = 0; r < cfg.probe_fail_threshold; ++r) {
      cluster.probe_round();
    }
    ASSERT_TRUE(drain(cluster, {uploads.begin() + prefix, uploads.end()},
                      seed * 31 + 8))
        << "seed " << seed;
    cluster.replicate_until_quiescent();

    // Heal the probe path: the victim unfences on the next heartbeat and
    // serves whatever partitions the current table still gives it.
    cluster.set_probe_reachable(victim, true);
    cluster.probe_round();
    EXPECT_FALSE(cluster.fence(victim)->fenced()) << "seed " << seed;

    const auto got = cluster.canonical_bytes(dir.path);
    ASSERT_TRUE(got.has_value()) << "seed " << seed;
    EXPECT_EQ(*got, want) << "content diverged at seed " << seed;
  }
}

}  // namespace
