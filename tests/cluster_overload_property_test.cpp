// Overload + chaos acceptance (the issue's bar): across 50 seeded fault
// plans, a 3-node cluster whose links drop/duplicate/reorder/corrupt AND
// whose nodes run admission control at a deliberately tiny ingest
// capacity is flooded with every upload at the same sim instant. Nodes
// shed sub-upload legs with retry-after hints, the router defers just the
// refused partitions, the client's UploadQueue paces itself by the hints
// — and once the flood subsides the cluster must hold the byte-identical
// canonical content of a fault-free, admission-free single-node run.
// Every shed upload is eventually admitted (drain() == true): shedding
// re-schedules work, it never loses it.
//
// Suite name starts with "Admission" so the sanitizer CI lanes pick it up.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "net/admission.hpp"
#include "net/fault.hpp"
#include "net/server.hpp"
#include "net/upload_queue.hpp"
#include "net/wire.hpp"
#include "sim/crowd.hpp"
#include "store/snapshot.hpp"
#include "util/rng.hpp"

namespace {

using namespace svg;
using namespace svg::cluster;

struct ScopedDir {
  explicit ScopedDir(const std::string& tag) {
    path = (std::filesystem::temp_directory_path() /
            ("svg_cluster_overload_" + tag + "_" + std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~ScopedDir() { std::filesystem::remove_all(path); }
  std::string path;
};

std::vector<net::UploadMessage> make_uploads(std::uint64_t seed) {
  util::Xoshiro256 rng(seed ^ 0x0E);
  sim::CityModel city;
  const std::size_t n_uploads = 4 + rng.bounded(4);  // 4..7 — a real flood
  std::vector<net::UploadMessage> uploads;
  for (std::size_t u = 0; u < n_uploads; ++u) {
    net::UploadMessage msg;
    msg.video_id = u + 1;
    msg.segments = sim::random_representative_fovs(
        5 + rng.bounded(6), city, 1'400'000'000'000, 3'600'000, rng);
    for (std::size_t i = 0; i < msg.segments.size(); ++i) {
      msg.segments[i].video_id = msg.video_id;
      msg.segments[i].segment_id = static_cast<std::uint32_t>(i);
    }
    uploads.push_back(std::move(msg));
  }
  return uploads;
}

net::FaultPlan make_plan(std::uint64_t seed) {
  util::Xoshiro256 rng(seed ^ 0x0E7C1A05);
  net::FaultPlan plan;
  plan.seed = seed;
  plan.drop = rng.uniform() * 0.2;
  plan.duplicate = rng.uniform() * 0.15;
  plan.reorder = rng.uniform() * 0.15;
  plan.corrupt = rng.uniform() * 0.1;
  return plan;
}

TEST(AdmissionClusterOverloadTest, FloodedFaultyClusterConvergesAcross50Seeds) {
  std::uint64_t total_hints = 0;
  std::uint64_t total_deferred = 0;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    ScopedDir dir("seed_" + std::to_string(seed));
    const auto uploads = make_uploads(seed);

    // Fault-free, admission-free single-node oracle over the same bytes.
    net::CloudServer oracle;
    for (const auto& m : uploads) {
      net::UploadMessage msg = m;
      msg.upload_id = 0;  // content oracle; ids are a cluster concern
      const auto rt = net::decode_upload(net::encode_upload(msg));
      ASSERT_TRUE(rt.has_value());
      ASSERT_TRUE(oracle.ingest(*rt));
    }
    ASSERT_TRUE(oracle.save_snapshot(dir.path + "/oracle.snap"));
    const auto snap =
        store::load_snapshot_file_full(dir.path + "/oracle.snap");
    ASSERT_TRUE(snap.has_value());
    const auto want = canonical_fingerprint(snap->reps);

    // 3-node durable cluster: faulty links AND per-node admission at a
    // starvation-level ingest capacity plus a per-client rate limit —
    // every overload mechanism in play at once. Capacity is 2 rps
    // (500 ms service) so the queue genuinely builds: the faulty link
    // itself advances sim time ~40 ms per transfer, and the service time
    // must dwarf that for arrivals to outpace the drain.
    net::SimClock clock;
    ClusterConfig cfg;
    cfg.nodes = 3;
    cfg.partition.bounds = sim::CityModel{}.bounds_deg();
    cfg.data_dir = dir.path + "/cluster";
    cfg.faulty = true;
    cfg.fault = make_plan(seed);
    cfg.clock = &clock;
    cfg.admission.enabled = true;
    cfg.admission.ingest.capacity_rps = 2.0;  // 500 ms per sub-upload
    cfg.admission.ingest.queue_depth = 1;
    cfg.admission.per_client.rate_per_sec = 50.0;
    cfg.admission.per_client.burst = 4.0;
    cfg.admission.clock = &clock;
    Cluster cluster(cfg);

    // The flood: every upload offered at the same instant. The queue
    // paces retries by the servers' retry-after hints; the attempt budget
    // bounds the run. drain() == true is the no-lost-work guarantee —
    // every shed leg was eventually admitted, none exhausted.
    net::RetryPolicy policy;
    policy.max_attempts = 64;
    net::UploadQueue queue(policy, seed * 31 + 7, &clock);
    for (const auto& m : uploads) queue.enqueue(m);
    ASSERT_TRUE(queue.drain(cluster.router().upload_channel()))
        << "seed " << seed << ": a shed upload never landed";
    total_hints += queue.stats().retry_after_hints;
    total_deferred += queue.stats().deferred;

    // Flood over: the canonical content must be byte-identical to the
    // fault-free oracle — shedding delayed the rows, it lost none and
    // duplicated none.
    const auto got = cluster.canonical_bytes(dir.path);
    ASSERT_TRUE(got.has_value()) << "seed " << seed;
    ASSERT_EQ(*got, want) << "canonical bytes diverged at seed " << seed;

    // Load has subsided: after the backlog's worth of idle sim time,
    // every node admits a fresh client's request on the first verdict
    // (and that admit closes any shed episode a stray duplicate delivery
    // left open).
    clock.advance(10'000.0);
    for (std::size_t i = 0; i < cfg.nodes; ++i) {
      ASSERT_NE(cluster.node(i), nullptr);
      auto* admission = cluster.node(i)->admission();
      ASSERT_NE(admission, nullptr);
      EXPECT_TRUE(admission->admit_ingest(/*client_key=*/9'999).admitted)
          << "seed " << seed << " node " << i;
      EXPECT_FALSE(admission->stats().ingest.shedding)
          << "seed " << seed << " node " << i;
    }
  }
  // The sweep as a whole must actually have exercised overload: a run
  // where no server ever handed back a hint tested nothing.
  EXPECT_GT(total_hints, 0U);
  EXPECT_GT(total_deferred, 0U);
}

}  // namespace
