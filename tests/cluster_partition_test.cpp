// Geo-partitioner and routing-table properties: the cell→partition layout
// must be a pure function of PartitionConfig (any restart recomputes the
// identical assignment), range pruning must never skip a partition that
// could hold a match, a rectangle that misses the deployment entirely must
// contact nobody, and the routing-table wire message must survive a round
// trip and reject corruption.

#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <vector>

#include "cluster/partition.hpp"
#include "cluster/router.hpp"
#include "cluster/wire.hpp"
#include "sim/crowd.hpp"
#include "util/rng.hpp"

namespace {

using namespace svg;
using namespace svg::cluster;

PartitionConfig city_config(std::size_t partitions, std::uint64_t salt = 0) {
  PartitionConfig cfg;
  cfg.bounds = sim::CityModel{}.bounds_deg();
  cfg.cells_per_side = 16;
  cfg.partitions = partitions;
  cfg.salt = salt;
  return cfg;
}

TEST(ClusterPartitionTest, LayoutIsDeterministicAcrossInstances) {
  const PartitionConfig cfg = city_config(4, 7);
  const GeoPartitioner a(cfg);
  const GeoPartitioner b(cfg);  // "restart": same config, fresh instance
  util::Xoshiro256 rng(42);
  const geo::Box2 bounds = cfg.bounds;
  for (int i = 0; i < 2000; ++i) {
    const double lng =
        bounds.min[0] + rng.uniform() * (bounds.max[0] - bounds.min[0]);
    const double lat =
        bounds.min[1] + rng.uniform() * (bounds.max[1] - bounds.min[1]);
    ASSERT_EQ(a.partition_of(lng, lat), b.partition_of(lng, lat));
    ASSERT_LT(a.partition_of(lng, lat), cfg.partitions);
  }
  for (std::size_t cell = 0; cell < a.cell_count(); ++cell) {
    ASSERT_EQ(a.partition_of_cell(cell), b.partition_of_cell(cell));
  }
}

TEST(ClusterPartitionTest, SaltChangesTheLayout) {
  const GeoPartitioner a(city_config(4, 0));
  const GeoPartitioner b(city_config(4, 1));
  std::size_t differs = 0;
  for (std::size_t cell = 0; cell < a.cell_count(); ++cell) {
    if (a.partition_of_cell(cell) != b.partition_of_cell(cell)) ++differs;
  }
  EXPECT_GT(differs, 0u);
}

TEST(ClusterPartitionTest, EveryPartitionOwnsSomeCells) {
  // 256 cells over 4 partitions: the hash should not starve any partition.
  const GeoPartitioner p(city_config(4));
  std::vector<std::size_t> cells_per(4, 0);
  for (std::size_t cell = 0; cell < p.cell_count(); ++cell) {
    ++cells_per[p.partition_of_cell(cell)];
  }
  for (std::size_t part = 0; part < 4; ++part) {
    EXPECT_GT(cells_per[part], 0u) << "partition " << part << " owns no cell";
  }
}

TEST(ClusterPartitionTest, OutOfBoundsPositionsClampToBorderCells) {
  const PartitionConfig cfg = city_config(3);
  const GeoPartitioner p(cfg);
  // Far outside on every side: still a valid cell, so the FoV has an owner.
  EXPECT_EQ(p.cell_of(cfg.bounds.min[0] - 10.0, cfg.bounds.min[1] - 10.0),
            p.cell_of(cfg.bounds.min[0], cfg.bounds.min[1]));
  EXPECT_EQ(p.cell_of(cfg.bounds.max[0] + 10.0, cfg.bounds.max[1] + 10.0),
            p.cell_of(cfg.bounds.max[0] - 1e-9, cfg.bounds.max[1] - 1e-9));
  EXPECT_LT(p.partition_of(cfg.bounds.max[0] + 10.0, 0.0), cfg.partitions);
}

TEST(ClusterPartitionTest, RangePruningCoversEveryInteriorPoint) {
  // For any in-bounds point, a rectangle around it must fan out to (at
  // least) the partition that owns the point — the safety half of the
  // pruning contract.
  const GeoPartitioner p(city_config(5, 3));
  const geo::Box2 bounds = p.config().bounds;
  util::Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double lng =
        bounds.min[0] + rng.uniform() * (bounds.max[0] - bounds.min[0]);
    const double lat =
        bounds.min[1] + rng.uniform() * (bounds.max[1] - bounds.min[1]);
    index::GeoTimeRange range;
    range.lng_min = lng - 1e-4;
    range.lng_max = lng + 1e-4;
    range.lat_min = lat - 1e-4;
    range.lat_max = lat + 1e-4;
    const auto parts = p.partitions_for_range(range);
    const std::size_t owner = p.partition_of(lng, lat);
    ASSERT_NE(std::find(parts.begin(), parts.end(), owner), parts.end())
        << "owner partition pruned away at (" << lng << ", " << lat << ")";
  }
}

TEST(ClusterPartitionTest, CellBoundaryStraddlingRangeFansToBothOwners) {
  const GeoPartitioner p(city_config(4, 1));
  const PartitionConfig& cfg = p.config();
  const double cell_w =
      (cfg.bounds.max[0] - cfg.bounds.min[0]) / cfg.cells_per_side;
  // A thin rectangle straddling the first vertical cell boundary.
  const double boundary = cfg.bounds.min[0] + cell_w;
  const double mid_lat = (cfg.bounds.min[1] + cfg.bounds.max[1]) / 2;
  index::GeoTimeRange range;
  range.lng_min = boundary - cell_w * 0.1;
  range.lng_max = boundary + cell_w * 0.1;
  range.lat_min = mid_lat;
  range.lat_max = mid_lat;
  const auto parts = p.partitions_for_range(range);
  const std::size_t left = p.partition_of(boundary - cell_w * 0.05, mid_lat);
  const std::size_t right = p.partition_of(boundary + cell_w * 0.05, mid_lat);
  EXPECT_NE(std::find(parts.begin(), parts.end(), left), parts.end());
  EXPECT_NE(std::find(parts.begin(), parts.end(), right), parts.end());
  // Sorted and unique.
  auto sorted = parts;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  EXPECT_EQ(parts, sorted);
}

TEST(ClusterPartitionTest, DisjointRangeFansOutToNobody) {
  const GeoPartitioner p(city_config(4));
  const geo::Box2 bounds = p.config().bounds;
  index::GeoTimeRange range;
  // A rectangle a continent away from the deployment.
  range.lng_min = bounds.max[0] + 50.0;
  range.lng_max = bounds.max[0] + 51.0;
  range.lat_min = bounds.min[1];
  range.lat_max = bounds.max[1];
  EXPECT_TRUE(p.partitions_for_range(range).empty());
}

TEST(ClusterPartitionTest, RoutingTableWireRoundTrip) {
  RoutingTableMessage msg;
  msg.partition = city_config(5, 9);
  msg.table = RoutingTable::identity(5);
  msg.table.epoch = 3;
  msg.table.primary_of[2] = 4;  // one partition failed over

  const auto bytes = encode_routing_table(msg);
  const auto back = decode_routing_table(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->partition, msg.partition);
  EXPECT_EQ(back->table, msg.table);

  // A decoded table must rebuild the identical partitioner (the
  // restart-determinism guarantee, carried over the wire).
  const GeoPartitioner a(msg.partition);
  const GeoPartitioner b(back->partition);
  for (std::size_t cell = 0; cell < a.cell_count(); ++cell) {
    ASSERT_EQ(a.partition_of_cell(cell), b.partition_of_cell(cell));
  }
}

TEST(ClusterPartitionTest, RoutingTableRejectsCorruptionAndTruncation) {
  RoutingTableMessage msg;
  msg.partition = city_config(3);
  msg.table = RoutingTable::identity(3);
  const auto bytes = encode_routing_table(msg);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    auto bad = bytes;
    bad[i] ^= 0x40;
    EXPECT_FALSE(decode_routing_table(bad).has_value())
        << "flip at byte " << i << " decoded anyway";
  }
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(
        decode_routing_table(std::span(bytes.data(), len)).has_value());
  }
}

TEST(ClusterPartitionTest, SubUploadIdsAreDeterministicAndNonZero) {
  for (std::uint64_t id = 1; id < 500; ++id) {
    for (std::size_t part = 0; part < 8; ++part) {
      const std::uint64_t sub = sub_upload_id(id, part);
      EXPECT_NE(sub, 0u);
      EXPECT_EQ(sub, sub_upload_id(id, part));  // pure function
    }
    EXPECT_NE(sub_upload_id(id, 0), sub_upload_id(id, 1));
  }
}

}  // namespace
