// Scatter-gather correctness: the cluster's merged top-N must be
// byte-identical (through the client results codec) to a single-node
// server holding the same corpus, a query missing the deployment fans out
// to zero nodes, and the shared k-way merge helper behaves exactly as the
// single-list ranking.

#include <gtest/gtest.h>

#include <span>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "net/server.hpp"
#include "net/upload_queue.hpp"
#include "net/wire.hpp"
#include "obs/families.hpp"
#include "retrieval/top_n.hpp"
#include "sim/crowd.hpp"
#include "util/rng.hpp"

namespace {

using namespace svg;
using namespace svg::cluster;

std::vector<net::UploadMessage> make_uploads(std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  sim::CityModel city;
  const std::size_t n_uploads = 4 + rng.bounded(4);
  std::vector<net::UploadMessage> uploads;
  for (std::size_t u = 0; u < n_uploads; ++u) {
    net::UploadMessage msg;
    msg.video_id = u + 1;
    msg.segments = sim::random_representative_fovs(
        8 + rng.bounded(8), city, 1'400'000'000'000, 3'600'000, rng);
    for (std::size_t i = 0; i < msg.segments.size(); ++i) {
      msg.segments[i].video_id = msg.video_id;
      msg.segments[i].segment_id = static_cast<std::uint32_t>(i);
    }
    uploads.push_back(std::move(msg));
  }
  return uploads;
}

/// The upload wire codec stores positions as 1e-7 degree fixed point, so
/// cluster nodes index quantized FoVs. The single-node oracle must see
/// the same quantization or its ranking doubles differ in the last few
/// millimetres — roundtrip its uploads through the codec.
net::UploadMessage wire_roundtrip(const net::UploadMessage& m) {
  const auto back = net::decode_upload(net::encode_upload(m));
  EXPECT_TRUE(back.has_value());
  return *back;
}

/// The exact conversion handle_query applies before encoding, so two
/// RankedResult lists compare through the client codec's bytes.
std::vector<std::uint8_t> results_bytes(
    const std::vector<retrieval::RankedResult>& hits) {
  net::ResultsMessage out;
  for (const auto& h : hits) {
    net::ResultEntry e;
    e.video_id = h.rep.video_id;
    e.segment_id = h.rep.segment_id;
    e.t_start = h.rep.t_start;
    e.t_end = h.rep.t_end;
    e.distance_m = static_cast<float>(h.distance_m);
    out.entries.push_back(e);
  }
  return net::encode_results(out);
}

retrieval::Query random_query(util::Xoshiro256& rng) {
  const geo::Box2 b = sim::CityModel{}.bounds_deg();
  retrieval::Query q;
  q.t_start = 1'400'000'000'000;
  q.t_end = q.t_start + 3'600'000;
  q.center = {b.min[1] + rng.uniform() * (b.max[1] - b.min[1]),
              b.min[0] + rng.uniform() * (b.max[0] - b.min[0])};
  q.radius_m = 30.0 + rng.uniform() * 90.0;
  return q;
}

TEST(ClusterQueryTest, ClusterMatchesSingleNodeByteIdenticalAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto uploads = make_uploads(seed);

    net::CloudServer single;
    for (const auto& m : uploads) ASSERT_TRUE(single.ingest(wire_roundtrip(m)));

    ClusterConfig cfg;  // in-memory: query path only
    cfg.nodes = 4;
    cfg.partition.bounds = sim::CityModel{}.bounds_deg();
    Cluster cluster(cfg);
    net::UploadQueue queue({}, seed * 13 + 1);
    for (const auto& m : uploads) queue.enqueue(m);
    ASSERT_TRUE(queue.drain(cluster.router().upload_channel()));

    util::Xoshiro256 rng(seed ^ 0xABCDEF);
    for (int i = 0; i < 25; ++i) {
      const retrieval::Query q = random_query(rng);
      bool complete = false;
      const auto got = cluster.router().search(q, 10, &complete);
      ASSERT_TRUE(complete);
      const auto want = single.search_n(q, 10);
      ASSERT_EQ(results_bytes(got), results_bytes(want))
          << "seed " << seed << " query " << i;
      // Beyond the quantizing codec: ranking doubles must be bit-equal,
      // or cross-node ties would break differently than single-node ones.
      for (std::size_t r = 0; r < got.size(); ++r) {
        ASSERT_EQ(got[r].distance_m, want[r].distance_m);
        ASSERT_EQ(got[r].relevance, want[r].relevance);
      }
    }
  }
}

TEST(ClusterQueryTest, QueryOutsideDeploymentContactsNoNode) {
  ClusterConfig cfg;
  cfg.nodes = 3;
  cfg.partition.bounds = sim::CityModel{}.bounds_deg();
  Cluster cluster(cfg);
  const auto uploads = make_uploads(3);
  net::UploadQueue queue({}, 9);
  for (const auto& m : uploads) queue.enqueue(m);
  ASSERT_TRUE(queue.drain(cluster.router().upload_channel()));

  auto& m = obs::cluster_metrics();
  const std::uint64_t fanned_before = m.fanout_nodes.value();
  const std::uint64_t queries_before = m.queries.value();

  retrieval::Query q;
  q.t_start = 1'400'000'000'000;
  q.t_end = q.t_start + 3'600'000;
  q.center = {0.0, 0.0};  // Gulf of Guinea, far from the deployment
  q.radius_m = 100.0;
  bool complete = false;
  EXPECT_TRUE(cluster.router().search(q, 10, &complete).empty());
  EXPECT_TRUE(complete);  // vacuously: no node needed answering
  EXPECT_EQ(m.queries.value(), queries_before + 1);
  EXPECT_EQ(m.fanout_nodes.value(), fanned_before);  // zero fan-out
}

TEST(ClusterQueryTest, MergeKeepsGlobalOrderAcrossLists) {
  auto mk = [](double d, std::uint64_t vid, std::uint32_t sid) {
    retrieval::RankedResult r;
    r.distance_m = d;
    r.rep.video_id = vid;
    r.rep.segment_id = sid;
    return r;
  };
  std::vector<std::vector<retrieval::RankedResult>> lists = {
      {mk(1.0, 1, 0), mk(4.0, 1, 1), mk(9.0, 1, 2)},
      {mk(2.0, 2, 0), mk(3.0, 2, 1)},
      {},
      {mk(0.5, 3, 0)},
  };
  const auto merged = retrieval::merge_ranked_lists(
      std::span<const std::vector<retrieval::RankedResult>>(lists), 4,
      retrieval::RankedBefore{});
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0].rep.video_id, 3u);
  EXPECT_EQ(merged[1].rep.video_id, 1u);
  EXPECT_EQ(merged[2].rep.video_id, 2u);
  EXPECT_DOUBLE_EQ(merged[3].distance_m, 3.0);
}

TEST(ClusterQueryTest, MergeDeduplicatesFollowerCopies) {
  auto mk = [](double d, std::uint64_t vid, std::uint32_t sid) {
    retrieval::RankedResult r;
    r.distance_m = d;
    r.rep.video_id = vid;
    r.rep.segment_id = sid;
    return r;
  };
  // List 1 is a follower holding replicated copies of list 0's rows.
  std::vector<std::vector<retrieval::RankedResult>> lists = {
      {mk(1.0, 1, 0), mk(2.0, 1, 1)},
      {mk(1.0, 1, 0), mk(2.0, 1, 1), mk(3.0, 2, 0)},
  };
  const auto same = [](const retrieval::RankedResult& a,
                       const retrieval::RankedResult& b) {
    return a.rep.video_id == b.rep.video_id &&
           a.rep.segment_id == b.rep.segment_id;
  };
  const auto merged = retrieval::merge_ranked_lists(
      std::span<const std::vector<retrieval::RankedResult>>(lists), 10,
      retrieval::RankedBefore{}, same);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].rep.video_id, 1u);
  EXPECT_EQ(merged[1].rep.segment_id, 1u);
  EXPECT_EQ(merged[2].rep.video_id, 2u);
}

TEST(ClusterQueryTest, MergeTiesResolveToLowerListIndex) {
  auto mk = [](double d, std::uint64_t vid) {
    retrieval::RankedResult r;
    r.distance_m = d;
    r.rep.video_id = vid;
    return r;
  };
  // Exact tie under RankedBefore (same distance, video, segment) but
  // different relevance payloads: the lower list must win, always.
  auto a = mk(5.0, 7);
  a.relevance = 0.25;
  auto b = mk(5.0, 7);
  b.relevance = 0.75;
  std::vector<std::vector<retrieval::RankedResult>> lists = {{a}, {b}};
  const auto merged = retrieval::merge_ranked_lists(
      std::span<const std::vector<retrieval::RankedResult>>(lists), 2,
      retrieval::RankedBefore{});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_DOUBLE_EQ(merged[0].relevance, 0.25);
  EXPECT_DOUBLE_EQ(merged[1].relevance, 0.75);
}

TEST(ClusterQueryTest, MergeRespectsTheKCut) {
  auto mk = [](double d) {
    retrieval::RankedResult r;
    r.distance_m = d;
    return r;
  };
  std::vector<std::vector<retrieval::RankedResult>> lists = {
      {mk(1), mk(3), mk(5)}, {mk(2), mk(4), mk(6)}};
  const auto merged = retrieval::merge_ranked_lists(
      std::span<const std::vector<retrieval::RankedResult>>(lists), 3,
      retrieval::RankedBefore{});
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_DOUBLE_EQ(merged[2].distance_m, 3.0);
  const auto all = retrieval::merge_ranked_lists(
      std::span<const std::vector<retrieval::RankedResult>>(lists), 100,
      retrieval::RankedBefore{});
  EXPECT_EQ(all.size(), 6u);
}

}  // namespace
