// Anti-entropy repair (cluster/repair.hpp + Cluster::repair_round): the
// fingerprint book is an order-independent incremental summary, identical
// books make repair a no-op, and seeded silent divergence (a shipping
// cursor forced past unreplicated records) is detected and healed by
// re-shipping ONLY the divergent range — not a full resync.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/repair.hpp"
#include "net/server.hpp"
#include "net/upload_queue.hpp"
#include "obs/families.hpp"
#include "obs/journal.hpp"
#include "sim/crowd.hpp"
#include "util/rng.hpp"

namespace {

using namespace svg;
using namespace svg::cluster;

struct ScopedDir {
  explicit ScopedDir(const std::string& tag) {
    path = (std::filesystem::temp_directory_path() /
            ("svg_repair_" + tag + "_" + std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~ScopedDir() { std::filesystem::remove_all(path); }
  std::string path;
};

std::vector<net::UploadMessage> make_uploads(std::uint64_t seed,
                                             std::size_t count) {
  util::Xoshiro256 rng(seed);
  sim::CityModel city;
  std::vector<net::UploadMessage> uploads;
  for (std::size_t u = 0; u < count; ++u) {
    net::UploadMessage msg;
    msg.video_id = u + 1;
    msg.segments = sim::random_representative_fovs(
        5 + rng.bounded(4), city, 1'400'000'000'000, 3'600'000, rng);
    for (std::size_t i = 0; i < msg.segments.size(); ++i) {
      msg.segments[i].video_id = msg.video_id;
      msg.segments[i].segment_id = static_cast<std::uint32_t>(i);
    }
    uploads.push_back(std::move(msg));
  }
  return uploads;
}

ClusterConfig durable_config(const std::string& dir) {
  ClusterConfig cfg;
  cfg.nodes = 3;
  cfg.partition.bounds = sim::CityModel{}.bounds_deg();
  cfg.partition.cells_per_side = 16;
  cfg.data_dir = dir;
  return cfg;
}

bool drain(Cluster& cluster, const std::vector<net::UploadMessage>& uploads,
           std::uint64_t queue_seed) {
  net::UploadQueue queue({}, queue_seed);
  for (const auto& m : uploads) queue.enqueue(m);
  return queue.drain(cluster.router().upload_channel());
}

/// True iff the two nodes' books agree on every partition `owner` serves
/// under the current table.
bool books_agree(Cluster& cluster, std::size_t owner, std::size_t peer) {
  const auto routing = cluster.router().routing();
  for (std::size_t p = 0; p < routing.table.primary_of.size(); ++p) {
    if (routing.table.primary_of[p] != owner) continue;
    if (!(cluster.book(owner).summary(p) == cluster.book(peer).summary(p))) {
      return false;
    }
  }
  return true;
}

TEST(FingerprintBookTest, OrderIndependentAndContentSensitive) {
  util::Xoshiro256 rng(7);
  sim::CityModel city;
  std::vector<std::pair<std::uint64_t, std::vector<core::RepresentativeFov>>>
      records;
  for (int i = 0; i < 64; ++i) {
    records.push_back({rng.next() | 1,
                       sim::random_representative_fovs(
                           2, city, 1'400'000'000'000, 3'600'000, rng)});
  }
  FingerprintBook a(4);
  for (const auto& [id, reps] : records) {
    a.add(id % 4, id, record_digest(id, reps));
  }
  // Same multiset, reversed insertion order: identical summaries.
  FingerprintBook b(4);
  for (auto it = records.rbegin(); it != records.rend(); ++it) {
    b.add(it->first % 4, it->first, record_digest(it->first, it->second));
  }
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_TRUE(a.summary(p) == b.summary(p)) << "partition " << p;
  }
  // Dropping one record diverges exactly that record's bucket.
  FingerprintBook c(4);
  for (std::size_t i = 0; i + 1 < records.size(); ++i) {
    const auto& [id, reps] = records[i];
    c.add(id % 4, id, record_digest(id, reps));
  }
  const auto& [lost_id, lost_reps] = records.back();
  const std::size_t lost_p = lost_id % 4;
  const auto div =
      FingerprintBook::divergent_buckets(a.summary(lost_p), c.summary(lost_p));
  ASSERT_EQ(div.size(), 1u);
  EXPECT_EQ(div.front(), fingerprint_bucket(lost_id));
  // Same id with different CONTENT also diverges (digest covers payload).
  EXPECT_NE(record_digest(lost_id, lost_reps),
            record_digest(lost_id, records.front().second));
}

TEST(ClusterRepairTest, CaughtUpClusterRepairsNothing) {
  ScopedDir dir("noop");
  Cluster cluster(durable_config(dir.path + "/c"));
  ASSERT_TRUE(drain(cluster, make_uploads(21, 6), 5));
  cluster.replicate_until_quiescent();

  auto& rm = obs::cluster_repair_metrics();
  const std::uint64_t started_before = rm.repairs_started.value();
  const std::uint64_t exchanges_before = rm.exchanges.value();
  EXPECT_EQ(cluster.repair_round(), 0u);
  EXPECT_GT(rm.exchanges.value(), exchanges_before);
  EXPECT_EQ(rm.repairs_started.value(), started_before);
}

TEST(ClusterRepairTest, SeededDivergenceIsRepairedWithoutFullResync) {
  ScopedDir dir("diverge");
  Cluster cluster(durable_config(dir.path + "/c"));

  // Phase 1: a healthy prefix, fully replicated.
  ASSERT_TRUE(drain(cluster, make_uploads(31, 10), 9));
  cluster.replicate_until_quiescent();

  // Phase 2: more ingest, then silently skip ONE stream's shipping by
  // forcing node 0's cursor to its WAL tip — the follower never sees
  // node 0's phase-2 records and no lag remains to betray it. The other
  // streams replicate normally, so a repair that rewinds more than
  // stream 0 is over-repairing.
  ASSERT_TRUE(drain(cluster, make_uploads(32, 5), 10));
  cluster.node(0)->sync_wal();
  const std::uint64_t phase2_records = cluster.replication_lag(0);
  ASSERT_GT(phase2_records, 0u);
  cluster.force_ship_cursor(0, cluster.node(0)->last_wal_seq());
  EXPECT_EQ(cluster.replication_lag(0), 0u);
  cluster.replicate_until_quiescent();
  EXPECT_EQ(cluster.replicate_until_quiescent(), 0u)
      << "divergence must be silent to the shipping path";
  std::uint64_t total_records = 0;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    cluster.node(i)->sync_wal();
    total_records += cluster.node(i)->last_wal_seq();
  }

  // Anti-entropy: the fingerprint exchange finds the divergence and
  // re-ships the missing range through the ordinary replication path.
  auto& rm = obs::cluster_repair_metrics();
  const std::uint64_t completed_before = rm.repairs_completed.value();
  const std::size_t reshipped = cluster.repair_round();
  EXPECT_GE(reshipped, phase2_records);
  EXPECT_LT(reshipped, total_records) << "repair must not full-resync";
  EXPECT_GT(rm.repairs_completed.value(), completed_before);

  for (std::size_t i = 0; i < cluster.size(); ++i) {
    EXPECT_TRUE(books_agree(cluster, i, (i + 1) % cluster.size()))
        << "stream " << i << " still divergent";
  }

  // Journal: repair_started then repair_completed.
  bool saw_started = false;
  bool saw_completed = false;
  for (const auto& rec : obs::Journal::global().tail()) {
    if (rec.event == obs::JournalEvent::kRepairStarted) saw_started = true;
    if (rec.event == obs::JournalEvent::kRepairCompleted) {
      EXPECT_TRUE(saw_started);
      saw_completed = true;
    }
  }
  EXPECT_TRUE(saw_started);
  EXPECT_TRUE(saw_completed);

  // A second round finds nothing left to repair.
  const std::uint64_t started_after = rm.repairs_started.value();
  EXPECT_EQ(cluster.repair_round(), 0u);
  EXPECT_EQ(rm.repairs_started.value(), started_after);
}

TEST(ClusterRepairTest, BookFromWalMatchesIncrementalBook) {
  ScopedDir dir("rebuild");
  ClusterConfig cfg = durable_config(dir.path + "/c");
  Cluster cluster(cfg);
  ASSERT_TRUE(drain(cluster, make_uploads(41, 8), 13));
  cluster.replicate_until_quiescent();

  const GeoPartitioner partitioner(cluster.router().routing().partition);
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    cluster.node(i)->sync_wal();
    FingerprintBook rebuilt;
    ASSERT_TRUE(book_from_wal(cluster.wal_dir(i), partitioner, rebuilt));
    for (std::size_t p = 0; p < partitioner.config().partitions; ++p) {
      EXPECT_TRUE(rebuilt.summary(p) == cluster.book(i).summary(p))
          << "node " << i << " partition " << p;
    }
  }
}

}  // namespace
