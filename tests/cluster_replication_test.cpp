// WAL-shipping replication unit coverage: a follower fed batches from the
// primary's log converges to the primary's exact content, re-applied
// batches are no-ops (upload_id dedup + cursor skip), gap batches are
// refused whole, and the cursor never moves backwards.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <tuple>
#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/replication.hpp"
#include "cluster/wire.hpp"
#include "net/server.hpp"
#include "obs/families.hpp"
#include "sim/crowd.hpp"
#include "store/snapshot.hpp"
#include "util/rng.hpp"

namespace {

using namespace svg;
using namespace svg::cluster;

struct ScopedDir {
  explicit ScopedDir(const std::string& tag) {
    path = (std::filesystem::temp_directory_path() /
            ("svg_cluster_repl_" + tag + "_" + std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~ScopedDir() { std::filesystem::remove_all(path); }
  std::string path;
};

std::vector<net::UploadMessage> make_uploads(std::uint64_t seed,
                                             std::size_t count) {
  util::Xoshiro256 rng(seed);
  sim::CityModel city;
  std::vector<net::UploadMessage> uploads;
  for (std::size_t u = 0; u < count; ++u) {
    net::UploadMessage msg;
    msg.upload_id = 1000 + u;
    msg.video_id = u + 1;
    msg.segments = sim::random_representative_fovs(
        4 + rng.bounded(5), city, 1'400'000'000'000, 3'600'000, rng);
    for (std::size_t i = 0; i < msg.segments.size(); ++i) {
      msg.segments[i].video_id = msg.video_id;
      msg.segments[i].segment_id = static_cast<std::uint32_t>(i);
    }
    uploads.push_back(std::move(msg));
  }
  return uploads;
}

std::vector<std::uint8_t> fingerprint(const net::CloudServer& server,
                                      const std::string& scratch) {
  EXPECT_TRUE(server.save_snapshot(scratch));
  const auto snap = store::load_snapshot_file_full(scratch);
  EXPECT_TRUE(snap.has_value());
  return canonical_fingerprint(snap->reps);
}

std::unique_ptr<net::CloudServer> make_durable(const std::string& dir) {
  net::ServerDurabilityConfig d;
  d.data_dir = dir;
  d.fsync = store::FsyncPolicy::kNone;
  return std::make_unique<net::CloudServer>(net::ServerIndexConfig{},
                                            retrieval::RetrievalConfig{}, d);
}

TEST(ClusterReplicationTest, FollowerShipsUntilCaughtUpAndMatchesPrimary) {
  ScopedDir dir("catchup");
  const auto primary_ptr = make_durable(dir.path + "/p");
  net::CloudServer& primary = *primary_ptr;
  net::CloudServer follower;  // content equality is index-level
  const auto uploads = make_uploads(1, 8);
  for (const auto& m : uploads) ASSERT_TRUE(primary.ingest(m));
  primary.sync_wal();

  std::uint64_t cursor = 0;
  std::size_t batches = 0;
  for (;;) {
    const auto batch =
        next_replicate_batch(dir.path + "/p", 0, cursor, /*max_records=*/3);
    ASSERT_TRUE(batch.has_value());
    if (batch->payloads.empty()) break;  // caught up
    cursor = apply_replicate_batch(follower, *batch, cursor);
    ++batches;
    ASSERT_LT(batches, 100u);
  }
  EXPECT_EQ(cursor, primary.last_wal_seq());
  EXPECT_EQ(follower.indexed_segments(), primary.indexed_segments());
  EXPECT_EQ(fingerprint(follower, dir.path + "/f.snap"),
            fingerprint(primary, dir.path + "/p.snap"));
  // max_records=3 over 8 records means at least 3 non-empty batches.
  EXPECT_GE(batches, 3u);
}

TEST(ClusterReplicationTest, ReapplyingABatchIsIdempotent) {
  ScopedDir dir("idem");
  const auto primary_ptr = make_durable(dir.path + "/p");
  net::CloudServer& primary = *primary_ptr;
  net::CloudServer follower;
  const auto uploads = make_uploads(2, 4);
  for (const auto& m : uploads) ASSERT_TRUE(primary.ingest(m));
  primary.sync_wal();

  const auto batch = next_replicate_batch(dir.path + "/p", 0, 0, 0);
  ASSERT_TRUE(batch.has_value());
  ASSERT_EQ(batch->payloads.size(), uploads.size());
  std::size_t applied = 0;
  std::uint64_t cursor = apply_replicate_batch(follower, *batch, 0, &applied);
  EXPECT_EQ(applied, uploads.size());
  EXPECT_EQ(cursor, primary.last_wal_seq());

  // Duplicate delivery of the same batch: cursor skips everything.
  applied = 99;
  const std::uint64_t cursor2 =
      apply_replicate_batch(follower, *batch, cursor, &applied);
  EXPECT_EQ(cursor2, cursor);
  EXPECT_EQ(applied, 0u);
  EXPECT_EQ(follower.indexed_segments(), primary.indexed_segments());

  // Even with a rewound cursor (say the ack was lost and the shipper
  // resent from 0), upload_id dedup keeps the content single-copy.
  const std::uint64_t cursor3 =
      apply_replicate_batch(follower, *batch, 0, &applied);
  EXPECT_EQ(cursor3, cursor);
  EXPECT_EQ(follower.indexed_segments(), primary.indexed_segments());
  EXPECT_EQ(fingerprint(follower, dir.path + "/f.snap"),
            fingerprint(primary, dir.path + "/p.snap"));
}

TEST(ClusterReplicationTest, GapBatchIsRefusedWhole) {
  ScopedDir dir("gap");
  const auto primary_ptr = make_durable(dir.path + "/p");
  net::CloudServer& primary = *primary_ptr;
  net::CloudServer follower;
  const auto uploads = make_uploads(3, 5);
  for (const auto& m : uploads) ASSERT_TRUE(primary.ingest(m));
  primary.sync_wal();

  // A batch starting at seq 3 against a cursor of 0 would leave a hole.
  const auto tail = next_replicate_batch(dir.path + "/p", 0, 2, 0);
  ASSERT_TRUE(tail.has_value());
  ASSERT_EQ(tail->first_seq, 3u);
  const std::uint64_t rejects_before =
      obs::cluster_metrics().replicate_rejects.value();
  std::size_t applied = 99;
  const std::uint64_t cursor =
      apply_replicate_batch(follower, *tail, 0, &applied);
  EXPECT_EQ(cursor, 0u);  // unchanged
  EXPECT_EQ(applied, 0u);
  EXPECT_EQ(follower.indexed_segments(), 0u);
  EXPECT_EQ(obs::cluster_metrics().replicate_rejects.value(),
            rejects_before + 1);

  // The same batch is fine once the cursor has caught up to its start.
  const auto head = next_replicate_batch(dir.path + "/p", 0, 0, 2);
  ASSERT_TRUE(head.has_value());
  std::uint64_t c = apply_replicate_batch(follower, *head, 0);
  EXPECT_EQ(c, 2u);
  c = apply_replicate_batch(follower, *tail, c);
  EXPECT_EQ(c, primary.last_wal_seq());
  EXPECT_EQ(fingerprint(follower, dir.path + "/f.snap"),
            fingerprint(primary, dir.path + "/p.snap"));
}

TEST(ClusterReplicationTest, CursorNeverMovesBackwards) {
  ScopedDir dir("mono");
  const auto primary_ptr = make_durable(dir.path + "/p");
  net::CloudServer& primary = *primary_ptr;
  net::CloudServer follower;
  const auto uploads = make_uploads(4, 6);
  for (const auto& m : uploads) ASSERT_TRUE(primary.ingest(m));
  primary.sync_wal();

  const auto all = next_replicate_batch(dir.path + "/p", 0, 0, 0);
  ASSERT_TRUE(all.has_value());
  std::uint64_t cursor = apply_replicate_batch(follower, *all, 0);
  const std::uint64_t tip = cursor;

  // Stale prefix batches delivered late (reordering) leave the cursor at
  // the tip.
  const auto prefix = next_replicate_batch(dir.path + "/p", 0, 0, 2);
  ASSERT_TRUE(prefix.has_value());
  cursor = apply_replicate_batch(follower, *prefix, cursor);
  EXPECT_EQ(cursor, tip);
}

TEST(ClusterReplicationTest, EmptyBatchMeansCaughtUpAndAppliesNothing) {
  ScopedDir dir("empty");
  const auto primary_ptr = make_durable(dir.path + "/p");
  net::CloudServer& primary = *primary_ptr;
  net::CloudServer follower;
  const auto uploads = make_uploads(5, 3);
  for (const auto& m : uploads) ASSERT_TRUE(primary.ingest(m));
  primary.sync_wal();

  const std::uint64_t tip = primary.last_wal_seq();
  const auto batch = next_replicate_batch(dir.path + "/p", 0, tip, 0);
  ASSERT_TRUE(batch.has_value());
  EXPECT_TRUE(batch->payloads.empty());
  EXPECT_EQ(batch->first_seq, tip + 1);
  std::size_t applied = 99;
  EXPECT_EQ(apply_replicate_batch(follower, *batch, tip, &applied), tip);
  EXPECT_EQ(applied, 0u);
}

TEST(ClusterReplicationTest, BatchWireRoundTripAndCorruptionRejection) {
  ReplicateBatchMessage m;
  m.primary = 2;
  m.first_seq = 17;
  m.payloads = {{1, 2, 3}, {}, {255, 0, 128, 7}};
  const auto bytes = encode_replicate_batch(m);
  const auto back = decode_replicate_batch(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->primary, m.primary);
  EXPECT_EQ(back->first_seq, m.first_seq);
  EXPECT_EQ(back->payloads, m.payloads);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    auto bad = bytes;
    bad[i] ^= 0x10;
    EXPECT_FALSE(decode_replicate_batch(bad).has_value());
  }

  ReplicateAckMessage ack;
  ack.follower = 1;
  ack.applied_seq = 42;
  const auto ack_bytes = encode_replicate_ack(ack);
  const auto ack_back = decode_replicate_ack(ack_bytes);
  ASSERT_TRUE(ack_back.has_value());
  EXPECT_EQ(ack_back->follower, 1u);
  EXPECT_EQ(ack_back->applied_seq, 42u);
}

}  // namespace
