#include "core/filtering.hpp"

#include <gtest/gtest.h>

#include "core/segmentation.hpp"
#include "geo/angle.hpp"
#include "geo/geodesy.hpp"
#include "sim/sensors.hpp"
#include "util/stats.hpp"

namespace {

using namespace svg::core;
using svg::geo::LatLng;
using svg::geo::offset_m;

const LatLng kOrigin{39.9042, 116.4074};

FovRecord rec(TimestampMs t, double east, double north, double theta) {
  return {t, {offset_m(kOrigin, east, north), theta}};
}

TEST(SensorSmootherTest, FirstSampleIsPassedThrough) {
  SensorSmoother s;
  const auto r = rec(0, 5, 5, 42);
  const auto out = s.push(r);
  EXPECT_EQ(out.t, r.t);
  EXPECT_EQ(out.fov.p, r.fov.p);
  EXPECT_EQ(out.fov.theta_deg, r.fov.theta_deg);
}

TEST(SensorSmootherTest, OffConfigIsIdentity) {
  SensorSmoother s(FilterConfig::off());
  s.push(rec(0, 0, 0, 0));
  const auto out = s.push(rec(33, 3, -4, 123));
  EXPECT_NEAR(svg::geo::distance_m(out.fov.p, rec(0, 3, -4, 0).fov.p), 0.0,
              1e-9);
  EXPECT_DOUBLE_EQ(out.fov.theta_deg, 123.0);
}

TEST(SensorSmootherTest, PositionMovesFractionally) {
  FilterConfig cfg;
  cfg.position_alpha = 0.25;
  cfg.max_speed_mps = 0.0;
  SensorSmoother s(cfg);
  s.push(rec(0, 0, 0, 0));
  const auto out = s.push(rec(33, 8, 0, 0));
  const auto d = svg::geo::displacement_m(kOrigin, out.fov.p);
  EXPECT_NEAR(d.x, 2.0, 0.01);  // 25% of the way
}

TEST(SensorSmootherTest, HeadingSmoothsAcrossWrap) {
  FilterConfig cfg;
  cfg.heading_alpha = 0.5;
  SensorSmoother s(cfg);
  s.push(rec(0, 0, 0, 350.0));
  const auto out = s.push(rec(33, 0, 0, 10.0));
  // Halfway from 350° to 10° along the short arc = 0°, never 180°.
  EXPECT_NEAR(svg::geo::angular_difference_deg(out.fov.theta_deg, 0.0), 0.0,
              1e-9);
}

TEST(SensorSmootherTest, SpeedGateRejectsTeleports) {
  FilterConfig cfg;
  cfg.position_alpha = 1.0;
  cfg.max_speed_mps = 50.0;
  SensorSmoother s(cfg);
  s.push(rec(0, 0, 0, 0));
  // 1000 m in 33 ms is a glitch; estimate holds.
  const auto out = s.push(rec(33, 1000, 0, 0));
  EXPECT_NEAR(svg::geo::distance_m(out.fov.p, kOrigin), 0.0, 0.01);
  EXPECT_EQ(s.rejected_fixes(), 1u);
  // A plausible fix afterwards is accepted.
  const auto ok = s.push(rec(1033, 10, 0, 0));
  EXPECT_NEAR(svg::geo::distance_m(ok.fov.p, rec(0, 10, 0, 0).fov.p), 0.0,
              0.05);
}

TEST(SensorSmootherTest, ResetForgetsState) {
  SensorSmoother s;
  s.push(rec(0, 0, 0, 0));
  s.reset();
  const auto out = s.push(rec(1000, 100, 100, 90));
  // Treated as a fresh first sample.
  EXPECT_NEAR(svg::geo::distance_m(out.fov.p, rec(0, 100, 100, 0).fov.p),
              0.0, 1e-9);
}

TEST(SmoothRecordsTest, ReducesNoiseAgainstGroundTruth) {
  // A noisy straight walk: smoothing must cut position and heading RMS
  // error versus the true trajectory.
  svg::sim::StraightTrajectory traj(kOrigin, 45.0, 1.4, 60.0);
  svg::sim::SensorNoiseConfig noise;
  noise.gps_sigma_m = 6.0;
  noise.compass_sigma_deg = 8.0;
  svg::sim::SensorSampler sampler(noise, {10.0, 0});
  svg::util::Xoshiro256 rng(3);
  const auto raw = sampler.sample(traj, rng);
  const auto smoothed = smooth_records(raw);

  svg::util::RunningStats raw_pos_err, smooth_pos_err;
  svg::util::RunningStats raw_heading_err, smooth_heading_err;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const auto truth = traj.at(static_cast<double>(i) / 10.0);
    raw_pos_err.add(svg::geo::distance_m(raw[i].fov.p, truth.position));
    smooth_pos_err.add(
        svg::geo::distance_m(smoothed[i].fov.p, truth.position));
    raw_heading_err.add(svg::geo::angular_difference_deg(
        raw[i].fov.theta_deg, truth.heading_deg));
    smooth_heading_err.add(svg::geo::angular_difference_deg(
        smoothed[i].fov.theta_deg, truth.heading_deg));
  }
  EXPECT_LT(smooth_pos_err.mean(), raw_pos_err.mean());
  EXPECT_LT(smooth_heading_err.mean(), raw_heading_err.mean());
}

TEST(SmoothRecordsTest, FewerSpuriousSegmentsAfterSmoothing) {
  // The end the filter serves: noisy input over-segments; smoothing gets
  // the count back toward the noise-free figure.
  svg::sim::StraightTrajectory traj(kOrigin, 0.0, 1.4, 120.0);
  svg::sim::SensorNoiseConfig noise;
  noise.gps_sigma_m = 8.0;
  noise.compass_sigma_deg = 10.0;
  svg::sim::SensorSampler sampler(noise, {10.0, 0});
  svg::util::Xoshiro256 rng(4);
  const auto raw = sampler.sample(traj, rng);
  const auto smoothed = smooth_records(raw);

  const SimilarityModel model({30.0, 100.0});
  const auto segs_raw = segment_video(raw, model, {0.5});
  const auto segs_smoothed = segment_video(smoothed, model, {0.5});
  EXPECT_LE(segs_smoothed.size(), segs_raw.size());
}

TEST(SmoothRecordsTest, TimestampsPreserved) {
  std::vector<FovRecord> raw;
  for (int i = 0; i < 10; ++i) raw.push_back(rec(i * 100, i, 0, 0));
  const auto out = smooth_records(raw);
  ASSERT_EQ(out.size(), raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    EXPECT_EQ(out[i].t, raw[i].t);
  }
}

}  // namespace
