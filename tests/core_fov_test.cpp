#include "core/fov.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "geo/angle.hpp"

namespace {

using namespace svg::core;
using svg::geo::LatLng;
using svg::geo::offset_m;

const LatLng kOrigin{39.9042, 116.4074};

TEST(CameraIntrinsicsTest, FullAngleIsTwiceAlpha) {
  const CameraIntrinsics c{30.0, 100.0};
  EXPECT_DOUBLE_EQ(c.full_angle_deg(), 60.0);
}

TEST(CameraIntrinsicsTest, LateralExtentFormula) {
  const CameraIntrinsics c{30.0, 100.0};
  EXPECT_NEAR(c.lateral_extent_m(), 100.0, 1e-9);  // 2·100·sin 30°
  const CameraIntrinsics wide{45.0, 50.0};
  EXPECT_NEAR(wide.lateral_extent_m(), 100.0 * std::sqrt(0.5), 1e-9);
}

TEST(CoversPointTest, InFrontWithinRange) {
  const CameraIntrinsics c{30.0, 100.0};
  const FoV f{kOrigin, 0.0};  // facing north
  EXPECT_TRUE(covers_point(f, c, offset_m(kOrigin, 0, 50)));
  EXPECT_TRUE(covers_point(f, c, offset_m(kOrigin, 20, 60)));
}

TEST(CoversPointTest, OwnPositionCovered) {
  const CameraIntrinsics c{30.0, 100.0};
  const FoV f{kOrigin, 123.0};
  EXPECT_TRUE(covers_point(f, c, kOrigin));
}

TEST(CoversPointTest, BeyondRadiusNotCovered) {
  const CameraIntrinsics c{30.0, 100.0};
  const FoV f{kOrigin, 0.0};
  EXPECT_FALSE(covers_point(f, c, offset_m(kOrigin, 0, 101)));
}

TEST(CoversPointTest, BehindNotCovered) {
  const CameraIntrinsics c{30.0, 100.0};
  const FoV f{kOrigin, 0.0};
  EXPECT_FALSE(covers_point(f, c, offset_m(kOrigin, 0, -10)));
}

TEST(CoversPointTest, OutsideConeNotCovered) {
  const CameraIntrinsics c{30.0, 100.0};
  const FoV f{kOrigin, 0.0};
  // 45° off-axis at 50 m: outside a 30° half-angle.
  EXPECT_FALSE(covers_point(f, c, offset_m(kOrigin, 35.4, 35.4)));
}

TEST(CoversPointTest, ConeFollowsHeading) {
  const CameraIntrinsics c{30.0, 100.0};
  const FoV east{kOrigin, 90.0};
  EXPECT_TRUE(covers_point(east, c, offset_m(kOrigin, 50, 0)));
  EXPECT_FALSE(covers_point(east, c, offset_m(kOrigin, 0, 50)));
}

TEST(ViewableSceneTest, MatchesCoversPoint) {
  const CameraIntrinsics c{25.0, 80.0};
  const FoV f{offset_m(kOrigin, 10, 20), 47.0};
  const svg::geo::LocalFrame frame(kOrigin);
  const auto sector = viewable_scene(f, c, frame);
  EXPECT_NEAR(sector.apex.x, 10.0, 0.05);
  EXPECT_NEAR(sector.apex.y, 20.0, 0.05);
  EXPECT_EQ(sector.azimuth_deg, 47.0);
  EXPECT_EQ(sector.half_angle_deg, 25.0);
  EXPECT_EQ(sector.radius_m, 80.0);
  // Sample points agree between the two coverage predicates.
  for (double e : {0.0, 30.0, 60.0}) {
    for (double n : {0.0, 30.0, 60.0}) {
      const LatLng target = offset_m(kOrigin, e, n);
      EXPECT_EQ(covers_point(f, c, target),
                sector.covers(frame.to_local(target)))
          << e << "," << n;
    }
  }
}

TEST(VideoSegmentTest, TimesFromFrames) {
  VideoSegment s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.start_time(), 0);
  s.frames.push_back({500, {kOrigin, 0}});
  s.frames.push_back({900, {kOrigin, 1}});
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.start_time(), 500);
  EXPECT_EQ(s.end_time(), 900);
}

TEST(RepresentativeFovTest, Duration) {
  RepresentativeFov r;
  r.t_start = 1000;
  r.t_end = 4500;
  EXPECT_EQ(r.duration_ms(), 3500);
}

}  // namespace
