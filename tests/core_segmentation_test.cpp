// Algorithm 1 (video segmentation) and Eq. 11 (segment abstraction).

#include "core/segmentation.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "geo/angle.hpp"
#include "geo/geodesy.hpp"

namespace {

using namespace svg::core;
using svg::geo::LatLng;
using svg::geo::offset_m;

const LatLng kOrigin{39.9042, 116.4074};

SimilarityModel model(double alpha = 30.0, double radius = 100.0) {
  return SimilarityModel({alpha, radius});
}

FovRecord rec(TimestampMs t, double east, double north, double theta) {
  return {t, {offset_m(kOrigin, east, north), theta}};
}

/// A stationary recording: n frames, identical pose.
std::vector<FovRecord> static_stream(int n) {
  std::vector<FovRecord> v;
  for (int i = 0; i < n; ++i) v.push_back(rec(i * 33, 0, 0, 90.0));
  return v;
}

TEST(VideoSegmenterTest, StaticSceneIsOneSegment) {
  const auto m = model();
  const auto frames = static_stream(100);
  const auto segs = segment_video(frames, m, {0.5});
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].size(), 100u);
  EXPECT_EQ(segs[0].start_time(), 0);
  EXPECT_EQ(segs[0].end_time(), 99 * 33);
}

TEST(VideoSegmenterTest, SharpTurnSplitsExactlyOnce) {
  const auto m = model(30.0);
  std::vector<FovRecord> frames;
  for (int i = 0; i < 50; ++i) frames.push_back(rec(i * 33, 0, 0, 0.0));
  // 90° turn: similarity to anchor drops to 0 < any threshold.
  for (int i = 50; i < 100; ++i) frames.push_back(rec(i * 33, 0, 0, 90.0));
  const auto segs = segment_video(frames, m, {0.5});
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0].size(), 50u);
  EXPECT_EQ(segs[1].size(), 50u);
  EXPECT_EQ(segs[1].start_time(), 50 * 33);
}

TEST(VideoSegmenterTest, SlowPanSplitsAtThresholdCrossing) {
  // Rotating 1°/frame with α = 30°: Sim_R = (60 − δθ)/60 < 0.5 once
  // δθ > 30°, so the anchor-relative split lands after 31 frames.
  const auto m = model(30.0);
  std::vector<FovRecord> frames;
  for (int i = 0; i < 62; ++i) {
    frames.push_back(rec(i * 33, 0, 0, static_cast<double>(i)));
  }
  const auto segs = segment_video(frames, m, {0.5});
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0].size(), 31u);  // δθ = 31 triggers at frame index 31
}

TEST(VideoSegmenterTest, SegmentsPartitionTheStream) {
  const auto m = model();
  std::vector<FovRecord> frames;
  // A wandering walk with several direction changes.
  for (int i = 0; i < 300; ++i) {
    const double theta = (i / 60) * 45.0;
    frames.push_back(rec(i * 33, i * 0.5, i * 0.3, theta));
  }
  const auto segs = segment_video(frames, m, {0.4});
  std::size_t total = 0;
  TimestampMs prev_end = -1;
  for (const auto& s : segs) {
    ASSERT_FALSE(s.empty());
    total += s.size();
    ASSERT_GT(s.start_time(), prev_end);
    ASSERT_LE(s.start_time(), s.end_time());
    prev_end = s.end_time();
  }
  EXPECT_EQ(total, frames.size());
}

TEST(VideoSegmenterTest, HigherThresholdNeverMakesFewerSegments) {
  // Section VII: bigger threshold ⇒ denser segmentation.
  const auto m = model();
  std::vector<FovRecord> frames;
  for (int i = 0; i < 400; ++i) {
    frames.push_back(rec(i * 33, i * 0.7, 0.0, 0.2 * i));
  }
  std::size_t prev = 0;
  for (double thresh : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const auto segs = segment_video(frames, m, {thresh});
    ASSERT_GE(segs.size(), prev) << thresh;
    prev = segs.size();
  }
}

TEST(VideoSegmenterTest, StreamingMatchesBatch) {
  const auto m = model();
  std::vector<FovRecord> frames;
  for (int i = 0; i < 200; ++i) {
    frames.push_back(rec(i * 33, i * 1.0, i * -0.4, 3.0 * i));
  }
  const auto batch = segment_video(frames, m, {0.5});

  VideoSegmenter seg(m, {0.5});
  std::vector<VideoSegment> streamed;
  for (const auto& f : frames) {
    if (auto done = seg.push(f)) streamed.push_back(std::move(*done));
  }
  if (auto done = seg.finish()) streamed.push_back(std::move(*done));

  ASSERT_EQ(streamed.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(streamed[i].size(), batch[i].size());
    EXPECT_EQ(streamed[i].start_time(), batch[i].start_time());
    EXPECT_EQ(streamed[i].end_time(), batch[i].end_time());
  }
}

TEST(VideoSegmenterTest, FinishOnEmptyReturnsNothing) {
  const auto m = model();
  VideoSegmenter seg(m, {0.5});
  EXPECT_FALSE(seg.finish().has_value());
}

TEST(VideoSegmenterTest, ReusableAfterFinish) {
  const auto m = model();
  VideoSegmenter seg(m, {0.5});
  seg.push(rec(0, 0, 0, 0));
  ASSERT_TRUE(seg.finish().has_value());
  seg.push(rec(100, 0, 0, 0));
  const auto s = seg.finish();
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->start_time(), 100);
}

TEST(VideoSegmenterTest, CountersTrackActivity) {
  const auto m = model();
  VideoSegmenter seg(m, {0.5});
  for (int i = 0; i < 10; ++i) seg.push(rec(i, 0, 0, 0));
  EXPECT_EQ(seg.frames_seen(), 10u);
  EXPECT_EQ(seg.segments_completed(), 0u);
  seg.push(rec(10, 0, 0, 120.0));  // split
  EXPECT_EQ(seg.segments_completed(), 1u);
}

// --- abstraction (Eq. 11) ---------------------------------------------------

TEST(AbstractSegmentTest, AveragesPositionAndInterval) {
  VideoSegment s;
  s.frames = {rec(100, 0, 0, 10), rec(200, 10, 20, 20), rec(300, 20, 40, 30)};
  const auto rep = abstract_segment(s, 7, 3);
  EXPECT_EQ(rep.video_id, 7u);
  EXPECT_EQ(rep.segment_id, 3u);
  EXPECT_EQ(rep.t_start, 100);
  EXPECT_EQ(rep.t_end, 300);
  EXPECT_EQ(rep.duration_ms(), 200);
  // Mean position = offset (10, 20) from origin.
  const auto d = svg::geo::displacement_m(kOrigin, rep.fov.p);
  EXPECT_NEAR(d.x, 10.0, 0.05);
  EXPECT_NEAR(d.y, 20.0, 0.05);
  EXPECT_NEAR(rep.fov.theta_deg, 20.0, 1e-6);
}

TEST(AbstractSegmentTest, EmptySegmentThrows) {
  EXPECT_THROW(abstract_segment(VideoSegment{}, 0, 0), std::invalid_argument);
}

TEST(AbstractSegmentTest, CircularPolicySurvivesWrap) {
  VideoSegment s;
  s.frames = {rec(0, 0, 0, 359.0), rec(33, 0, 0, 1.0)};
  const auto circular = abstract_segment(s, 0, 0, MeanPolicy::kCircular);
  EXPECT_NEAR(
      svg::geo::angular_difference_deg(circular.fov.theta_deg, 0.0), 0.0,
      1e-6);
  // The paper's arithmetic policy lands on due south — the documented bug.
  const auto paper = abstract_segment(s, 0, 0, MeanPolicy::kArithmeticPaper);
  EXPECT_NEAR(paper.fov.theta_deg, 180.0, 1e-6);
}

// --- fused streaming pipeline ----------------------------------------------

TEST(StreamingPipelineTest, MatchesSegmentThenAbstract) {
  const auto m = model();
  std::vector<FovRecord> frames;
  for (int i = 0; i < 250; ++i) {
    frames.push_back(rec(i * 33, 0.8 * i, 0.1 * i, 2.0 * i));
  }
  // Reference: batch segment + abstract.
  const auto segs = segment_video(frames, m, {0.5});
  std::vector<RepresentativeFov> expected;
  for (std::size_t i = 0; i < segs.size(); ++i) {
    expected.push_back(
        abstract_segment(segs[i], 99, static_cast<std::uint32_t>(i)));
  }

  StreamingAbstractionPipeline pipe(m, {0.5}, 99);
  std::vector<RepresentativeFov> got;
  for (const auto& f : frames) {
    if (auto r = pipe.push(f)) got.push_back(*r);
  }
  if (auto r = pipe.finish()) got.push_back(*r);

  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].video_id, 99u);
    EXPECT_EQ(got[i].segment_id, expected[i].segment_id);
    EXPECT_EQ(got[i].t_start, expected[i].t_start);
    EXPECT_EQ(got[i].t_end, expected[i].t_end);
    EXPECT_NEAR(got[i].fov.p.lat, expected[i].fov.p.lat, 1e-12);
    EXPECT_NEAR(got[i].fov.p.lng, expected[i].fov.p.lng, 1e-12);
    EXPECT_NEAR(got[i].fov.theta_deg, expected[i].fov.theta_deg, 1e-9);
  }
}

TEST(StreamingPipelineTest, EmitsNothingBeforeFirstSplit) {
  const auto m = model();
  StreamingAbstractionPipeline pipe(m, {0.5}, 1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(pipe.push(rec(i, 0, 0, 0)).has_value());
  }
  EXPECT_TRUE(pipe.finish().has_value());
}

TEST(StreamingPipelineTest, SegmentIdsAreSequential) {
  const auto m = model();
  StreamingAbstractionPipeline pipe(m, {0.5}, 1);
  std::vector<std::uint32_t> ids;
  for (int i = 0; i < 10; ++i) {
    // Jump heading by 120° every frame → every frame a new segment.
    if (auto r = pipe.push(rec(i, 0, 0, (i % 3) * 120.0))) {
      ids.push_back(r->segment_id);
    }
  }
  if (auto r = pipe.finish()) ids.push_back(r->segment_id);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(ids[i], i);
  }
}

TEST(ComplexityTest, SegmentationIsLinearInFrames) {
  // O(1) per frame: 10x frames should take ~10x similarity evaluations —
  // verified structurally: frames_seen == pushes, no hidden growth.
  const auto m = model();
  VideoSegmenter seg(m, {0.5});
  for (int i = 0; i < 10'000; ++i) {
    seg.push(rec(i, 0.1 * i, 0, 0.05 * i));
  }
  EXPECT_EQ(seg.frames_seen(), 10'000u);
}

}  // namespace
