// Sensor-dropout handling: invalid GPS/compass readings (NaN, out-of-range)
// are repaired to the last valid fix or dropped, never averaged into a
// segment. Covers both segmenter variants and the MobileClient counters.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "core/segmentation.hpp"
#include "net/client.hpp"

namespace {

using namespace svg::core;

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

FovRecord frame(TimestampMs t, double lat, double lng, double theta) {
  FovRecord rec;
  rec.t = t;
  rec.fov.p.lat = lat;
  rec.fov.p.lng = lng;
  rec.fov.theta_deg = theta;
  return rec;
}

TEST(SensorValidationTest, ValidFovRecordChecksRangesAndFiniteness) {
  EXPECT_TRUE(valid_fov_record(frame(0, 39.9, 116.4, 45.0)));
  EXPECT_TRUE(valid_fov_record(frame(0, -90.0, -180.0, 0.0)));
  EXPECT_TRUE(valid_fov_record(frame(0, 90.0, 180.0, 359.0)));
  EXPECT_FALSE(valid_fov_record(frame(0, kNan, 116.4, 45.0)));
  EXPECT_FALSE(valid_fov_record(frame(0, 39.9, kNan, 45.0)));
  EXPECT_FALSE(valid_fov_record(frame(0, 39.9, 116.4, kNan)));
  EXPECT_FALSE(valid_fov_record(frame(0, kInf, 116.4, 45.0)));
  EXPECT_FALSE(valid_fov_record(frame(0, 91.0, 116.4, 45.0)));
  EXPECT_FALSE(valid_fov_record(frame(0, -91.0, 116.4, 45.0)));
  EXPECT_FALSE(valid_fov_record(frame(0, 39.9, 181.0, 45.0)));
  EXPECT_FALSE(valid_fov_record(frame(0, 39.9, -181.0, 45.0)));
}

TEST(SensorValidationTest, PipelineDropsLeadingInvalidFrames) {
  const SimilarityModel model({});
  StreamingAbstractionPipeline pipe(model, {}, 1);
  EXPECT_FALSE(pipe.push(frame(0, kNan, 116.4, 0.0)).has_value());
  EXPECT_FALSE(pipe.push(frame(33, 39.9, kNan, 0.0)).has_value());
  EXPECT_EQ(pipe.frames_dropped(), 2u);
  EXPECT_EQ(pipe.frames_held(), 0u);
  EXPECT_FALSE(pipe.finish().has_value());  // nothing valid ever arrived
}

TEST(SensorValidationTest, PipelineHoldsLastFixThroughDropout) {
  const SimilarityModel model({});
  StreamingAbstractionPipeline pipe(model, {}, 1);
  (void)pipe.push(frame(0, 39.9, 116.4, 10.0));
  // A GPS dropout burst mid-segment: repaired to the last fix, so the
  // running averages never see NaN.
  (void)pipe.push(frame(33, kNan, kNan, kNan));
  (void)pipe.push(frame(66, kNan, 116.4, 10.0));
  (void)pipe.push(frame(100, 39.9, 116.4, 10.0));
  EXPECT_EQ(pipe.frames_held(), 2u);
  EXPECT_EQ(pipe.frames_dropped(), 0u);
  const auto rep = pipe.finish();
  ASSERT_TRUE(rep.has_value());
  EXPECT_TRUE(std::isfinite(rep->fov.p.lat));
  EXPECT_TRUE(std::isfinite(rep->fov.p.lng));
  EXPECT_TRUE(std::isfinite(rep->fov.theta_deg));
  EXPECT_NEAR(rep->fov.p.lat, 39.9, 1e-9);
  EXPECT_NEAR(rep->fov.p.lng, 116.4, 1e-9);
  // Held frames keep their own timestamps: the segment still spans 100 ms.
  EXPECT_EQ(rep->t_start, 0);
  EXPECT_EQ(rep->t_end, 100);
}

TEST(SensorValidationTest, SegmenterRepairsInvalidFramesIdentically) {
  const SimilarityModel model({});
  VideoSegmenter seg(model, {});
  EXPECT_FALSE(seg.push(frame(0, 95.0, 116.4, 0.0)).has_value());  // dropped
  (void)seg.push(frame(33, 39.9, 116.4, 0.0));
  (void)seg.push(frame(66, kNan, 0.0, 0.0));  // held
  EXPECT_EQ(seg.frames_dropped(), 1u);
  EXPECT_EQ(seg.frames_held(), 1u);
  const auto done = seg.finish();
  ASSERT_TRUE(done.has_value());
  ASSERT_EQ(done->size(), 2u);
  for (const auto& f : done->frames) {
    EXPECT_TRUE(valid_fov_record(f));
  }
}

TEST(SensorValidationTest, HeldFrameDoesNotForceASplit) {
  // The repaired frame equals the last fix, so similarity to the anchor is
  // whatever the previous frame's was — a dropout must not split a segment
  // that was coherent.
  const SimilarityModel model({});
  StreamingAbstractionPipeline pipe(model, {}, 1);
  ASSERT_FALSE(pipe.push(frame(0, 39.9, 116.4, 10.0)).has_value());
  ASSERT_FALSE(pipe.push(frame(33, kNan, kNan, kNan)).has_value());
  ASSERT_FALSE(pipe.push(frame(66, kNan, kNan, kNan)).has_value());
  EXPECT_EQ(pipe.segments_emitted(), 0u);
  ASSERT_TRUE(pipe.finish().has_value());
  EXPECT_EQ(pipe.segments_emitted(), 1u);
}

TEST(SensorValidationTest, ClientStatsMirrorPipelineCounters) {
  const SimilarityModel model({});
  svg::net::MobileClient client(1, model, {});
  client.on_frame(frame(0, kNan, 116.4, 0.0));      // dropped (no fix yet)
  client.on_frame(frame(33, 39.9, 116.4, 0.0));     // valid
  client.on_frame(frame(66, 39.9, kInf, 0.0));      // held
  client.on_frame(frame(100, 39.9, 116.4, 0.0));    // valid
  const auto& s = client.stats();
  EXPECT_EQ(s.frames_processed, 4u);
  EXPECT_EQ(s.frames_dropped, 1u);
  EXPECT_EQ(s.frames_held, 1u);
  const auto msg = client.finish_recording();
  ASSERT_EQ(msg.segments.size(), 1u);
  EXPECT_TRUE(std::isfinite(msg.segments[0].fov.p.lat));
}

}  // namespace
