// Validates the FoV similarity measurement (Section III) against every
// property the paper states, plus agreement with the exact sector-overlap
// oracle.

#include "core/similarity.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "geo/angle.hpp"
#include "geo/geodesy.hpp"

namespace {

using svg::core::CameraIntrinsics;
using svg::core::FoV;
using svg::core::SimilarityModel;
using svg::geo::LatLng;
using svg::geo::offset_m;

const LatLng kOrigin{39.9042, 116.4074};

CameraIntrinsics cam(double alpha = 30.0, double radius = 100.0) {
  return {alpha, radius};
}

FoV fov_at(double east, double north, double theta) {
  return {offset_m(kOrigin, east, north), theta};
}

// --- Eq. 4: rotation --------------------------------------------------------

TEST(SimRotationTest, IdentityIsOne) {
  SimilarityModel m(cam());
  EXPECT_DOUBLE_EQ(m.sim_rotation(0.0), 1.0);
}

TEST(SimRotationTest, LinearDecreaseUntilFullAngle) {
  SimilarityModel m(cam(30.0));
  // Eq. 4: (2α − δθ)/(2α) with 2α = 60°.
  EXPECT_NEAR(m.sim_rotation(15.0), 45.0 / 60.0, 1e-12);
  EXPECT_NEAR(m.sim_rotation(30.0), 30.0 / 60.0, 1e-12);
  EXPECT_NEAR(m.sim_rotation(59.9), 0.1 / 60.0, 1e-9);
}

TEST(SimRotationTest, ZeroBeyondFullAngle) {
  SimilarityModel m(cam(30.0));
  EXPECT_DOUBLE_EQ(m.sim_rotation(60.0), 0.0);
  EXPECT_DOUBLE_EQ(m.sim_rotation(90.0), 0.0);
  EXPECT_DOUBLE_EQ(m.sim_rotation(180.0), 0.0);
}

TEST(SimRotationTest, UsesCircularDifference) {
  SimilarityModel m(cam(30.0));
  EXPECT_NEAR(m.sim_rotation(350.0), m.sim_rotation(10.0), 1e-12);
  EXPECT_NEAR(m.sim_rotation(-20.0), m.sim_rotation(20.0), 1e-12);
}

// --- Eq. 5: parallel translation --------------------------------------------

TEST(SimParallelTest, ZeroDistanceIsOne) {
  SimilarityModel m(cam());
  EXPECT_NEAR(m.sim_parallel(0.0), 1.0, 1e-12);
}

TEST(SimParallelTest, PhiMatchesEq5) {
  const double alpha = 30.0, R = 100.0, d = 50.0;
  SimilarityModel m(cam(alpha, R));
  const double expected = svg::geo::rad_to_deg(
      std::atan(R * std::sin(svg::geo::deg_to_rad(alpha)) /
                (d + R * std::cos(svg::geo::deg_to_rad(alpha)))));
  EXPECT_NEAR(m.phi_parallel_deg(d), expected, 1e-9);
}

TEST(SimParallelTest, StrictlyDecreasingButPositive) {
  SimilarityModel m(cam(30.0, 100.0));
  double prev = m.sim_parallel(0.0);
  for (double d = 10.0; d <= 2000.0; d += 10.0) {
    const double s = m.sim_parallel(d);
    ASSERT_LT(s, prev) << d;
    ASSERT_GT(s, 0.0) << d;  // paper: Sim_∥ always positive
    prev = s;
  }
}

// --- Sim_⊥: perpendicular translation ---------------------------------------

TEST(SimPerpendicularTest, ZeroDistanceIsOne) {
  SimilarityModel m(cam());
  EXPECT_NEAR(m.sim_perpendicular(0.0), 1.0, 1e-12);
}

TEST(SimPerpendicularTest, HitsZeroAtLateralExtent) {
  // Paper: Sim_⊥ drops to 0 when d reaches 2R sin α.
  const CameraIntrinsics c = cam(30.0, 100.0);
  SimilarityModel m(c);
  const double lateral = c.lateral_extent_m();
  EXPECT_NEAR(lateral, 100.0, 1e-9);  // 2·100·sin30° = 100
  EXPECT_GT(m.sim_perpendicular(lateral - 1.0), 0.0);
  EXPECT_DOUBLE_EQ(m.sim_perpendicular(lateral), 0.0);
  EXPECT_DOUBLE_EQ(m.sim_perpendicular(lateral + 50.0), 0.0);
}

TEST(SimPerpendicularTest, StrictlyDecreasingUntilZero) {
  SimilarityModel m(cam(30.0, 100.0));
  double prev = m.sim_perpendicular(0.0);
  for (double d = 5.0; d < 100.0; d += 5.0) {
    const double s = m.sim_perpendicular(d);
    ASSERT_LT(s, prev) << d;
    prev = s;
  }
}

// Paper property (Eq. 8): Sim_∥ ≥ Sim_⊥, equality iff d = 0 — parameterized
// across camera geometries.
class ParallelDominatesPerpendicular
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(ParallelDominatesPerpendicular, HoldsForAllDistances) {
  const auto [alpha, R] = GetParam();
  SimilarityModel m(cam(alpha, R));
  EXPECT_DOUBLE_EQ(m.sim_parallel(0.0), m.sim_perpendicular(0.0));
  for (double d = 1.0; d <= 3.0 * R; d += R / 50.0) {
    ASSERT_GT(m.sim_parallel(d), m.sim_perpendicular(d))
        << "alpha=" << alpha << " R=" << R << " d=" << d;
  }
}

INSTANTIATE_TEST_SUITE_P(
    CameraGeometries, ParallelDominatesPerpendicular,
    ::testing::Values(std::pair{20.0, 50.0}, std::pair{30.0, 100.0},
                      std::pair{35.0, 100.0}, std::pair{45.0, 20.0},
                      std::pair{25.0, 200.0}));

// --- Eq. 9: direction interpolation -----------------------------------------

TEST(SimTranslationTest, EndpointsMatchComponents) {
  SimilarityModel m(cam(30.0, 100.0));
  const double d = 40.0;
  EXPECT_NEAR(m.sim_translation(d, 0.0), m.sim_parallel(d), 1e-12);
  EXPECT_NEAR(m.sim_translation(d, 90.0), m.sim_perpendicular(d), 1e-12);
}

TEST(SimTranslationTest, MidpointIsAverage) {
  SimilarityModel m(cam(30.0, 100.0));
  const double d = 40.0;
  EXPECT_NEAR(m.sim_translation(d, 45.0),
              0.5 * (m.sim_parallel(d) + m.sim_perpendicular(d)), 1e-12);
}

TEST(SimTranslationTest, BackwardFoldsToForward) {
  SimilarityModel m(cam(30.0, 100.0));
  const double d = 40.0;
  EXPECT_NEAR(m.sim_translation(d, 180.0), m.sim_translation(d, 0.0), 1e-12);
  EXPECT_NEAR(m.sim_translation(d, 135.0), m.sim_translation(d, 45.0),
              1e-12);
  EXPECT_NEAR(m.sim_translation(d, 270.0), m.sim_translation(d, 90.0),
              1e-12);
}

TEST(SimTranslationTest, MonotoneInDirection) {
  // Moving from axial (0°) to lateral (90°) can only lose similarity.
  SimilarityModel m(cam(30.0, 100.0));
  const double d = 40.0;
  double prev = m.sim_translation(d, 0.0);
  for (double dir = 10.0; dir <= 90.0; dir += 10.0) {
    const double s = m.sim_translation(d, dir);
    ASSERT_LE(s, prev + 1e-12) << dir;
    prev = s;
  }
}

TEST(SimTranslationTest, ZeroDistanceIsOneForAnyDirection) {
  SimilarityModel m(cam());
  for (double dir = 0.0; dir < 360.0; dir += 30.0) {
    EXPECT_DOUBLE_EQ(m.sim_translation(0.0, dir), 1.0);
  }
}

// --- Eq. 10 + Eq. 3: full similarity ----------------------------------------

TEST(SimilarityTest, IdenticalFovsGiveExactlyOne) {
  SimilarityModel m(cam());
  const FoV f = fov_at(0, 0, 42.0);
  EXPECT_DOUBLE_EQ(m.similarity(f, f), 1.0);
}

TEST(SimilarityTest, NeverExceedsOne) {
  SimilarityModel m(cam());
  for (double east : {0.0, 10.0, -30.0}) {
    for (double theta : {0.0, 15.0, 300.0}) {
      const double s = m.similarity(fov_at(0, 0, 0), fov_at(east, 5, theta));
      ASSERT_LE(s, 1.0);
      ASSERT_GE(s, 0.0);
    }
  }
}

TEST(SimilarityTest, SymmetricInArguments) {
  SimilarityModel m(cam());
  const FoV a = fov_at(0, 0, 10.0);
  const FoV b = fov_at(25.0, 40.0, 50.0);
  EXPECT_NEAR(m.similarity(a, b), m.similarity(b, a), 1e-12);
}

TEST(SimilarityTest, RotationAloneReducesToEq4) {
  SimilarityModel m(cam(30.0));
  const FoV f1 = fov_at(0, 0, 0.0);
  const FoV f2 = fov_at(0, 0, 20.0);
  EXPECT_NEAR(m.similarity(f1, f2), m.sim_rotation(20.0), 1e-12);
}

TEST(SimilarityTest, TranslationAloneReducesToEq9) {
  SimilarityModel m(cam(30.0, 100.0));
  // Both face north; move 30 m north (parallel).
  EXPECT_NEAR(m.similarity(fov_at(0, 0, 0), fov_at(0, 30, 0)),
              m.sim_parallel(30.0), 1e-6);
  // Both face north; move 30 m east (perpendicular).
  EXPECT_NEAR(m.similarity(fov_at(0, 0, 0), fov_at(30, 0, 0)),
              m.sim_perpendicular(30.0), 1e-6);
}

TEST(SimilarityTest, ProductStructure) {
  SimilarityModel m(cam(30.0, 100.0));
  // Rotate 20° AND translate 30 m along the mean axis (10°).
  const FoV f1 = fov_at(0, 0, 0.0);
  const double mean_axis = 10.0;
  const double e = 30.0 * std::sin(svg::geo::deg_to_rad(mean_axis));
  const double n = 30.0 * std::cos(svg::geo::deg_to_rad(mean_axis));
  const FoV f2 = fov_at(e, n, 20.0);
  EXPECT_NEAR(m.similarity(f1, f2),
              m.sim_rotation(20.0) * m.sim_translation(30.0, 0.0), 1e-4);
}

TEST(SimilarityTest, OppositeHeadingsGiveZero) {
  SimilarityModel m(cam(30.0));
  EXPECT_DOUBLE_EQ(m.similarity(fov_at(0, 0, 0), fov_at(5, 5, 180)), 0.0);
}

TEST(SimilarityTest, FarApartFacingSameWayPerpendicularGivesZero) {
  const CameraIntrinsics c = cam(30.0, 100.0);
  SimilarityModel m(c);
  // 150 m > 2R sinα = 100 m lateral separation, same heading.
  EXPECT_DOUBLE_EQ(m.similarity(fov_at(0, 0, 0), fov_at(150, 0, 0)), 0.0);
}

TEST(SimilarityTest, DecreasesWithDistanceAlongAnyDirection) {
  SimilarityModel m(cam(30.0, 100.0));
  for (double dir_deg : {0.0, 30.0, 60.0, 90.0}) {
    const double e_unit = std::sin(svg::geo::deg_to_rad(dir_deg));
    const double n_unit = std::cos(svg::geo::deg_to_rad(dir_deg));
    double prev = 1.0;
    for (double d = 10.0; d <= 90.0; d += 10.0) {
      const double s = m.similarity(fov_at(0, 0, 0),
                                    fov_at(d * e_unit, d * n_unit, 0.0));
      ASSERT_LE(s, prev + 1e-9) << dir_deg << " " << d;
      prev = s;
    }
  }
}

// --- closed form vs exact overlap oracle ------------------------------------

TEST(SimilarityOracleTest, RotationMatchesExactOverlapShape) {
  // For pure rotation the angular-overlap formula is exact.
  SimilarityModel m(cam(30.0, 100.0));
  const FoV f1 = fov_at(0, 0, 0.0);
  for (double dt : {0.0, 15.0, 30.0, 45.0}) {
    const FoV f2 = fov_at(0, 0, dt);
    const double model = m.similarity(f1, f2);
    const double exact = m.exact_overlap_similarity(f1, f2, 384);
    EXPECT_NEAR(model, exact, 0.05) << dt;
  }
}

TEST(SimilarityOracleTest, ModelTracksOracleUnderTranslation) {
  // The closed form approximates the overlap; require qualitative
  // agreement (same ordering, bounded absolute error) rather than
  // equality.
  SimilarityModel m(cam(30.0, 100.0));
  const FoV f1 = fov_at(0, 0, 0.0);
  double prev_model = 2.0, prev_exact = 2.0;
  for (double d : {5.0, 20.0, 40.0, 60.0, 80.0}) {
    const FoV f2 = fov_at(d, 0.0, 0.0);  // perpendicular move
    const double model = m.similarity(f1, f2);
    const double exact = m.exact_overlap_similarity(f1, f2, 384);
    ASSERT_LT(model, prev_model);
    ASSERT_LT(exact, prev_exact);
    EXPECT_NEAR(model, exact, 0.25) << d;
    prev_model = model;
    prev_exact = exact;
  }
}

TEST(SimilarityPlanarTest, MatchesGeodeticPath) {
  SimilarityModel m(cam(30.0, 100.0));
  const FoV f1 = fov_at(0, 0, 10.0);
  const FoV f2 = fov_at(20.0, 35.0, 40.0);
  const auto disp = svg::geo::displacement_m(f1.p, f2.p);
  const double planar = m.similarity_planar(
      disp.norm(), svg::geo::azimuth_of_direction(disp.x, disp.y),
      f1.theta_deg, f2.theta_deg);
  EXPECT_NEAR(planar, m.similarity(f1, f2), 1e-12);
}

}  // namespace
