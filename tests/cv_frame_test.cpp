#include "cv/frame.hpp"

#include <gtest/gtest.h>

namespace {

using svg::cv::Frame;
using svg::cv::Resolution;

TEST(FrameTest, ConstructionFills) {
  Frame f(4, 3, 7);
  EXPECT_EQ(f.width(), 4);
  EXPECT_EQ(f.height(), 3);
  EXPECT_EQ(f.pixel_count(), 12u);
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 4; ++x) {
      ASSERT_EQ(f.at(x, y), 7);
    }
  }
}

TEST(FrameTest, DefaultIsEmpty) {
  Frame f;
  EXPECT_TRUE(f.empty());
  EXPECT_EQ(f.pixel_count(), 0u);
}

TEST(FrameTest, SetAndGet) {
  Frame f(2, 2);
  f.set(1, 0, 200);
  EXPECT_EQ(f.at(1, 0), 200);
  EXPECT_EQ(f.at(0, 0), 0);
}

TEST(FrameTest, FillRectInterior) {
  Frame f(8, 8);
  f.fill_rect(2, 3, 5, 6, 99);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      const bool inside = x >= 2 && x < 5 && y >= 3 && y < 6;
      ASSERT_EQ(f.at(x, y), inside ? 99 : 0) << x << "," << y;
    }
  }
}

TEST(FrameTest, FillRectClipsToBounds) {
  Frame f(4, 4);
  f.fill_rect(-10, -10, 100, 2, 50);
  EXPECT_EQ(f.at(0, 0), 50);
  EXPECT_EQ(f.at(3, 1), 50);
  EXPECT_EQ(f.at(0, 2), 0);
}

TEST(FrameTest, FillRectEmptyAndInvertedNoop) {
  Frame f(4, 4);
  f.fill_rect(2, 2, 2, 3, 50);  // zero width
  f.fill_rect(3, 3, 1, 1, 50);  // inverted
  for (std::size_t i = 0; i < f.pixel_count(); ++i) {
    ASSERT_EQ(f.data()[i], 0);
  }
}

TEST(ResolutionTest, Presets) {
  EXPECT_EQ(Resolution::qvga().width, 320);
  EXPECT_EQ(Resolution::vga().height, 480);
  EXPECT_EQ(Resolution::hd720().width, 1280);
}

}  // namespace
