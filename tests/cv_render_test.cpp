#include "cv/renderer.hpp"

#include <gtest/gtest.h>

#include "cv/similarity.hpp"
#include "geo/geodesy.hpp"

namespace {

using namespace svg::cv;
using svg::core::CameraIntrinsics;
using svg::geo::LatLng;
using svg::geo::LocalFrame;
using svg::geo::Vec2;

const LatLng kOrigin{39.9042, 116.4074};

SceneRenderer make_renderer(const World& world,
                            Resolution res = {160, 120}) {
  RenderOptions opts;
  opts.resolution = res;
  return SceneRenderer(world, CameraIntrinsics{30.0, 100.0},
                       LocalFrame(kOrigin), opts);
}

World single_landmark(Vec2 pos) {
  Landmark lm;
  lm.position = pos;
  lm.width_m = 10.0;
  lm.height_m = 15.0;
  lm.brightness = 10;  // dark against sky/ground
  return World({lm});
}

int count_dark(const Frame& f) {
  int n = 0;
  for (std::size_t i = 0; i < f.pixel_count(); ++i) {
    if (f.data()[i] < 50) ++n;
  }
  return n;
}

TEST(RendererTest, EmptyWorldIsSkyAndGround) {
  const World empty;
  const auto r = make_renderer(empty);
  const Frame f = r.render_local({0, 0}, 0.0);
  // Top half sky, bottom half ground.
  EXPECT_EQ(f.at(10, 10), 235);
  EXPECT_EQ(f.at(10, 100), 96);
}

TEST(RendererTest, LandmarkAheadIsVisible) {
  const auto world = single_landmark({0, 30});
  const auto r = make_renderer(world);
  const Frame f = r.render_local({0, 0}, 0.0);
  EXPECT_GT(count_dark(f), 0);
}

TEST(RendererTest, LandmarkBehindIsInvisible) {
  const auto world = single_landmark({0, -30});
  const auto r = make_renderer(world);
  const Frame f = r.render_local({0, 0}, 0.0);
  EXPECT_EQ(count_dark(f), 0);
}

TEST(RendererTest, LandmarkBeyondRadiusInvisible) {
  const auto world = single_landmark({0, 150});  // R = 100
  const auto r = make_renderer(world);
  const Frame f = r.render_local({0, 0}, 0.0);
  EXPECT_EQ(count_dark(f), 0);
}

TEST(RendererTest, LandmarkOutsideConeInvisible) {
  const auto world = single_landmark({60, 30});  // ~63° off-axis
  const auto r = make_renderer(world);
  const Frame f = r.render_local({0, 0}, 0.0);
  EXPECT_EQ(count_dark(f), 0);
}

TEST(RendererTest, RotatingTowardLandmarkRevealsIt) {
  const auto world = single_landmark({30, 30});  // 45° east of north
  const auto r = make_renderer(world);
  EXPECT_EQ(count_dark(r.render_local({0, 0}, 300.0)), 0);
  EXPECT_GT(count_dark(r.render_local({0, 0}, 45.0)), 0);
}

TEST(RendererTest, CloserLandmarkAppearsBigger) {
  const auto far_world = single_landmark({0, 80});
  const auto near_world = single_landmark({0, 20});
  const auto r_far = make_renderer(far_world);
  const auto r_near = make_renderer(near_world);
  EXPECT_GT(count_dark(r_near.render_local({0, 0}, 0.0)),
            count_dark(r_far.render_local({0, 0}, 0.0)));
}

TEST(RendererTest, SmallRotationChangesLessThanLargeRotation) {
  svg::util::Xoshiro256 rng(11);
  const World world = World::random_city(200, 300.0, rng);
  const auto r = make_renderer(world);
  const Frame base = r.render_local({0, 0}, 0.0);
  const Frame small = r.render_local({0, 0}, 5.0);
  const Frame large = r.render_local({0, 0}, 60.0);
  EXPECT_GT(frame_difference_similarity(base, small),
            frame_difference_similarity(base, large));
}

TEST(RendererTest, TranslationReducesContentSimilarityMonotonically) {
  svg::util::Xoshiro256 rng(12);
  const World world = World::street_canyon(400.0, 20.0, 15.0, rng);
  const auto r = make_renderer(world);
  const Frame base = r.render_local({0, 10}, 0.0);
  double prev = 1.0;
  for (double d : {5.0, 20.0, 60.0}) {
    const double s = frame_difference_similarity(
        base, r.render_local({0, 10 + d}, 0.0));
    EXPECT_LT(s, prev + 0.05) << d;
    prev = s;
  }
}

TEST(RenderVideoTest, OneFramePerCaptureInstant) {
  svg::util::Xoshiro256 rng(13);
  const World world = World::random_city(20, 200.0, rng);
  const auto r = make_renderer(world, {80, 60});
  svg::sim::StraightTrajectory traj(kOrigin, 0.0, 1.0, 3.0);
  const auto frames = render_video(r, traj, 10.0);
  EXPECT_EQ(frames.size(), 31u);
  for (const auto& f : frames) {
    ASSERT_EQ(f.width(), 80);
    ASSERT_EQ(f.height(), 60);
  }
}

TEST(RendererTest, GpsPoseAndLocalPoseAgree) {
  const auto world = single_landmark({0, 30});
  const auto r = make_renderer(world);
  svg::sim::Pose pose{kOrigin, 0.0};
  const Frame a = r.render(pose);
  const Frame b = r.render_local({0, 0}, 0.0);
  EXPECT_DOUBLE_EQ(frame_difference_similarity(a, b), 1.0);
}

}  // namespace
