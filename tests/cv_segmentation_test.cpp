#include "cv/segmentation.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace {

using namespace svg::cv;

std::vector<Frame> constant_video(int n, std::uint8_t v) {
  std::vector<Frame> frames;
  for (int i = 0; i < n; ++i) frames.emplace_back(16, 16, v);
  return frames;
}

TEST(ContentSegmenterTest, StaticVideoIsOneSegment) {
  const auto frames = constant_video(50, 128);
  const auto segs = segment_by_content(frames, ContentSegmenterConfig{});
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].first, 0u);
  EXPECT_EQ(segs[0].last, 49u);
  EXPECT_EQ(segs[0].size(), 50u);
}

TEST(ContentSegmenterTest, SceneCutSplits) {
  auto frames = constant_video(20, 0);
  const auto second = constant_video(20, 255);
  frames.insert(frames.end(), second.begin(), second.end());
  const auto segs = segment_by_content(frames, ContentSegmenterConfig{});
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0].last, 19u);
  EXPECT_EQ(segs[1].first, 20u);
  EXPECT_EQ(segs[1].last, 39u);
}

TEST(ContentSegmenterTest, SegmentsPartitionIndices) {
  std::vector<Frame> frames;
  for (int i = 0; i < 90; ++i) {
    frames.emplace_back(8, 8, static_cast<std::uint8_t>((i / 10) * 25));
  }
  ContentSegmenterConfig cfg;
  cfg.threshold = 0.95;
  const auto segs = segment_by_content(frames, cfg);
  ASSERT_FALSE(segs.empty());
  std::size_t expected_first = 0;
  for (const auto& s : segs) {
    ASSERT_EQ(s.first, expected_first);
    ASSERT_GE(s.last, s.first);
    expected_first = s.last + 1;
  }
  EXPECT_EQ(expected_first, frames.size());
}

TEST(ContentSegmenterTest, StreamingMatchesBatch) {
  std::vector<Frame> frames;
  for (int i = 0; i < 60; ++i) {
    frames.emplace_back(8, 8, static_cast<std::uint8_t>(i * 4));
  }
  ContentSegmenterConfig cfg;
  cfg.threshold = 0.9;
  const auto batch = segment_by_content(frames, cfg);

  ContentSegmenter seg(cfg);
  std::vector<ContentSegment> streamed;
  for (const auto& f : frames) {
    if (auto done = seg.push(f)) streamed.push_back(*done);
  }
  if (auto done = seg.finish()) streamed.push_back(*done);

  ASSERT_EQ(streamed.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(streamed[i].first, batch[i].first);
    EXPECT_EQ(streamed[i].last, batch[i].last);
  }
}

TEST(ContentSegmenterTest, CustomSimilarityFunctionIsUsed) {
  ContentSegmenterConfig cfg;
  cfg.threshold = 0.5;
  int calls = 0;
  cfg.similarity = [&calls](const Frame&, const Frame&) {
    ++calls;
    return 1.0;  // never split
  };
  const auto frames = constant_video(10, 0);
  const auto segs = segment_by_content(frames, cfg);
  EXPECT_EQ(segs.size(), 1u);
  EXPECT_EQ(calls, 9);  // every frame after the anchor
}

TEST(ContentSegmenterTest, FinishOnEmptyReturnsNothing) {
  ContentSegmenter seg(ContentSegmenterConfig{});
  EXPECT_FALSE(seg.finish().has_value());
}

}  // namespace
