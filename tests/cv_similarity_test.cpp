#include "cv/similarity.hpp"

#include <gtest/gtest.h>

namespace {

using namespace svg::cv;

Frame solid(int w, int h, std::uint8_t v) { return Frame(w, h, v); }

TEST(FrameDifferenceTest, IdenticalFramesAreOne) {
  const Frame f = solid(8, 8, 100);
  EXPECT_DOUBLE_EQ(frame_difference_similarity(f, f), 1.0);
}

TEST(FrameDifferenceTest, MaximallyDifferentIsZero) {
  EXPECT_DOUBLE_EQ(
      frame_difference_similarity(solid(4, 4, 0), solid(4, 4, 255)), 0.0);
}

TEST(FrameDifferenceTest, IntermediateValue) {
  // Mean |diff| of 51 → 1 − 0.2 = 0.8.
  EXPECT_NEAR(
      frame_difference_similarity(solid(4, 4, 100), solid(4, 4, 151)), 0.8,
      1e-12);
}

TEST(FrameDifferenceTest, MismatchedSizesGiveZero) {
  EXPECT_EQ(frame_difference_similarity(solid(4, 4, 0), solid(4, 5, 0)),
            0.0);
  EXPECT_EQ(frame_difference_similarity(Frame{}, Frame{}), 0.0);
}

TEST(FrameDifferenceTest, Symmetric) {
  Frame a(4, 4, 10);
  Frame b(4, 4, 10);
  a.set(0, 0, 250);
  b.set(3, 3, 1);
  EXPECT_DOUBLE_EQ(frame_difference_similarity(a, b),
                   frame_difference_similarity(b, a));
}

TEST(HistogramSimilarityTest, IdenticalFramesAreOne) {
  Frame f(8, 8, 37);
  f.fill_rect(0, 0, 4, 8, 200);
  EXPECT_NEAR(histogram_similarity(f, f), 1.0, 1e-12);
}

TEST(HistogramSimilarityTest, DisjointLuminanceIsZero) {
  EXPECT_NEAR(histogram_similarity(solid(4, 4, 10), solid(4, 4, 240)), 0.0,
              1e-12);
}

TEST(HistogramSimilarityTest, ShiftInvariantUnlikeDifferencing) {
  // Same content, shifted one pixel: histogram says identical, frame
  // differencing says not.
  Frame a(8, 8, 0);
  a.fill_rect(0, 0, 4, 8, 200);
  Frame b(8, 8, 0);
  b.fill_rect(1, 0, 5, 8, 200);
  EXPECT_NEAR(histogram_similarity(a, b), 1.0, 1e-12);
  EXPECT_LT(frame_difference_similarity(a, b), 1.0);
}

TEST(HistogramSimilarityTest, InvalidInputsGiveZero) {
  EXPECT_EQ(histogram_similarity(Frame{}, Frame{}), 0.0);
  EXPECT_EQ(histogram_similarity(solid(2, 2, 0), solid(2, 2, 0), 0), 0.0);
}

TEST(NccSimilarityTest, IdenticalPatternIsOne) {
  Frame f(8, 8, 0);
  f.fill_rect(2, 2, 6, 6, 200);
  EXPECT_NEAR(ncc_similarity(f, f), 1.0, 1e-12);
}

TEST(NccSimilarityTest, InvertedPatternIsZero) {
  Frame a(8, 8, 0);
  a.fill_rect(0, 0, 4, 8, 200);
  Frame b(8, 8, 200);
  b.fill_rect(0, 0, 4, 8, 0);
  EXPECT_NEAR(ncc_similarity(a, b), 0.0, 1e-12);
}

TEST(NccSimilarityTest, FlatFramesReturnHalf) {
  EXPECT_DOUBLE_EQ(ncc_similarity(solid(4, 4, 100), solid(4, 4, 100)), 0.5);
}

}  // namespace
