#include "cv/site_survey.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "geo/angle.hpp"
#include "util/rng.hpp"

namespace {

using namespace svg::cv;
using svg::geo::Vec2;

World wall_to_the_north(double distance_m, double width_m = 100.0) {
  Landmark lm;
  lm.position = {0.0, distance_m};
  lm.width_m = width_m;
  lm.height_m = 20.0;
  return World({lm});
}

TEST(SightDistanceTest, HitsObstructionAhead) {
  const auto world = wall_to_the_north(40.0);
  EXPECT_NEAR(sight_distance(world, {0, 0}, 0.0), 40.0, 1e-9);
}

TEST(SightDistanceTest, MissesObstructionBehind) {
  const auto world = wall_to_the_north(40.0);
  EXPECT_DOUBLE_EQ(sight_distance(world, {0, 0}, 180.0, 300.0), 300.0);
}

TEST(SightDistanceTest, MissesNarrowObstructionOffAxis) {
  World world;
  Landmark lm;
  lm.position = {30.0, 40.0};  // 37° east of north
  lm.width_m = 2.0;
  world.add(lm);
  // Looking due north misses it.
  EXPECT_DOUBLE_EQ(sight_distance(world, {0, 0}, 0.0, 300.0), 300.0);
  // Looking straight at it hits at 50 m.
  EXPECT_NEAR(sight_distance(world, {0, 0}, 36.87, 300.0), 50.0, 0.5);
}

TEST(SightDistanceTest, NearestOfSeveral) {
  World world;
  for (double d : {80.0, 30.0, 150.0}) {
    Landmark lm;
    lm.position = {0.0, d};
    lm.width_m = 10.0;
    world.add(lm);
  }
  EXPECT_NEAR(sight_distance(world, {0, 0}, 0.0), 30.0, 1e-9);
}

TEST(SurveyRadiusTest, OpenFieldGivesMaxRadius) {
  const World empty;
  SurveyConfig cfg;
  EXPECT_DOUBLE_EQ(survey_radius_of_view(empty, {0, 0}, cfg),
                   cfg.max_radius_m);
}

TEST(SurveyRadiusTest, DenseCityShortensRadius) {
  svg::util::Xoshiro256 rng(1);
  const auto dense = World::random_city(4000, 400.0, rng);
  svg::util::Xoshiro256 rng2(2);
  const auto sparse = World::random_city(40, 400.0, rng2);
  const double r_dense = survey_radius_of_view(dense, {0, 0});
  const double r_sparse = survey_radius_of_view(sparse, {0, 0});
  EXPECT_LT(r_dense, r_sparse);
  EXPECT_GE(r_dense, SurveyConfig{}.min_radius_m);
}

TEST(SurveyRadiusTest, RespectsFloor) {
  // A tight box of walls right around the camera.
  World world;
  for (double az = 0; az < 360; az += 10) {
    Landmark lm;
    const double r = svg::geo::deg_to_rad(az);
    lm.position = {2.0 * std::sin(r), 2.0 * std::cos(r)};
    lm.width_m = 5.0;
    world.add(lm);
  }
  SurveyConfig cfg;
  EXPECT_DOUBLE_EQ(survey_radius_of_view(world, {0, 0}, cfg),
                   cfg.min_radius_m);
}

TEST(DeriveThresholdTest, FasterMotionLowersThreshold) {
  const svg::core::CameraIntrinsics cam{30.0, 100.0};
  const double walking = derive_threshold(cam, 1.4, 30.0, 10.0);
  const double driving = derive_threshold(cam, 12.0, 30.0, 10.0);
  EXPECT_GT(walking, driving);
  EXPECT_GE(driving, 0.05);
  EXPECT_LE(walking, 0.95);
}

TEST(DeriveThresholdTest, LongerTargetSegmentsLowerThreshold) {
  const svg::core::CameraIntrinsics cam{30.0, 100.0};
  const double short_seg = derive_threshold(cam, 1.4, 30.0, 5.0);
  const double long_seg = derive_threshold(cam, 1.4, 30.0, 30.0);
  EXPECT_GT(short_seg, long_seg);
}

TEST(DeriveThresholdTest, StationaryPanOnlyDependsOnTurnRate) {
  const svg::core::CameraIntrinsics cam{30.0, 100.0};
  const double slow_pan = derive_threshold(cam, 0.0, 30.0, 5.0, 2.0);
  const double fast_pan = derive_threshold(cam, 0.0, 30.0, 5.0, 20.0);
  EXPECT_GT(slow_pan, fast_pan);
}

}  // namespace
