#include "geo/angle.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace {

using namespace svg::geo;

TEST(WrapDegTest, BasicCases) {
  EXPECT_DOUBLE_EQ(wrap_deg(0.0), 0.0);
  EXPECT_DOUBLE_EQ(wrap_deg(359.0), 359.0);
  EXPECT_DOUBLE_EQ(wrap_deg(360.0), 0.0);
  EXPECT_DOUBLE_EQ(wrap_deg(361.0), 1.0);
  EXPECT_DOUBLE_EQ(wrap_deg(-1.0), 359.0);
  EXPECT_DOUBLE_EQ(wrap_deg(-360.0), 0.0);
  EXPECT_DOUBLE_EQ(wrap_deg(720.0 + 45.0), 45.0);
}

TEST(WrapDegSignedTest, BasicCases) {
  EXPECT_DOUBLE_EQ(wrap_deg_signed(0.0), 0.0);
  EXPECT_DOUBLE_EQ(wrap_deg_signed(179.0), 179.0);
  EXPECT_DOUBLE_EQ(wrap_deg_signed(180.0), -180.0);
  EXPECT_DOUBLE_EQ(wrap_deg_signed(181.0), -179.0);
  EXPECT_DOUBLE_EQ(wrap_deg_signed(-190.0), 170.0);
}

// Eq. 2: δθ = min(|θ2−θ1|, 360−|θ2−θ1|).
struct AngDiffCase {
  double a, b, expected;
};

class AngularDifferenceTest : public ::testing::TestWithParam<AngDiffCase> {};

TEST_P(AngularDifferenceTest, MatchesEq2) {
  const auto& c = GetParam();
  EXPECT_NEAR(angular_difference_deg(c.a, c.b), c.expected, 1e-12);
  // Symmetry.
  EXPECT_NEAR(angular_difference_deg(c.b, c.a), c.expected, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, AngularDifferenceTest,
    ::testing::Values(AngDiffCase{0, 0, 0}, AngDiffCase{0, 90, 90},
                      AngDiffCase{0, 180, 180}, AngDiffCase{0, 270, 90},
                      AngDiffCase{350, 10, 20}, AngDiffCase{10, 350, 20},
                      AngDiffCase{359, 1, 2}, AngDiffCase{-10, 10, 20},
                      AngDiffCase{720, 90, 90}));

TEST(AngularDifferenceTest, AlwaysInZeroTo180) {
  for (double a = -400; a <= 400; a += 37.0) {
    for (double b = -400; b <= 400; b += 23.0) {
      const double d = angular_difference_deg(a, b);
      ASSERT_GE(d, 0.0);
      ASSERT_LE(d, 180.0);
    }
  }
}

TEST(SignedAngularDifferenceTest, ShortestRotation) {
  EXPECT_DOUBLE_EQ(signed_angular_difference_deg(0, 90), 90.0);
  EXPECT_DOUBLE_EQ(signed_angular_difference_deg(90, 0), -90.0);
  EXPECT_DOUBLE_EQ(signed_angular_difference_deg(350, 10), 20.0);
  EXPECT_DOUBLE_EQ(signed_angular_difference_deg(10, 350), -20.0);
  EXPECT_DOUBLE_EQ(signed_angular_difference_deg(0, 180), 180.0);
}

TEST(SignedAngularDifferenceTest, ConsistentWithUnsigned) {
  for (double a = 0; a < 360; a += 17.0) {
    for (double b = 0; b < 360; b += 13.0) {
      EXPECT_NEAR(std::fabs(signed_angular_difference_deg(a, b)),
                  angular_difference_deg(a, b), 1e-9);
    }
  }
}

TEST(ArithmeticMeanTest, SimpleAverage) {
  const std::vector<double> v{10.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(arithmetic_mean_deg(v), 20.0);
}

TEST(ArithmeticMeanTest, BreaksAtWrap) {
  // The paper's Eq. 11 averages 359 and 1 to 180 — the documented defect.
  const std::vector<double> v{359.0, 1.0};
  EXPECT_DOUBLE_EQ(arithmetic_mean_deg(v), 180.0);
}

TEST(CircularMeanTest, HandlesWrapCorrectly) {
  const std::vector<double> v{359.0, 1.0};
  // Compare as angles: the mean must sit on north, whether it comes out as
  // ~0 or ~360 - epsilon.
  EXPECT_NEAR(angular_difference_deg(circular_mean_deg(v), 0.0), 0.0, 1e-9);
}

TEST(CircularMeanTest, MatchesArithmeticAwayFromWrap) {
  const std::vector<double> v{80.0, 100.0};
  EXPECT_NEAR(circular_mean_deg(v), 90.0, 1e-9);
}

TEST(CircularMeanTest, EmptyAndCancellingInputs) {
  EXPECT_DOUBLE_EQ(circular_mean_deg({}), 0.0);
  const std::vector<double> opposite{0.0, 180.0};
  EXPECT_DOUBLE_EQ(circular_mean_deg(opposite), 0.0);
}

TEST(AzimuthDirectionTest, CardinalDirections) {
  EXPECT_NEAR(azimuth_of_direction(0, 1), 0.0, 1e-9);    // north
  EXPECT_NEAR(azimuth_of_direction(1, 0), 90.0, 1e-9);   // east
  EXPECT_NEAR(azimuth_of_direction(0, -1), 180.0, 1e-9); // south
  EXPECT_NEAR(azimuth_of_direction(-1, 0), 270.0, 1e-9); // west
  EXPECT_DOUBLE_EQ(azimuth_of_direction(0, 0), 0.0);     // degenerate
}

TEST(AzimuthDirectionTest, RoundTrip) {
  for (double az = 0.0; az < 360.0; az += 11.25) {
    double e, n;
    direction_of_azimuth(az, e, n);
    EXPECT_NEAR(azimuth_of_direction(e, n), az, 1e-9) << az;
    EXPECT_NEAR(e * e + n * n, 1.0, 1e-12);
  }
}

TEST(DegRadTest, RoundTrip) {
  EXPECT_NEAR(rad_to_deg(deg_to_rad(123.4)), 123.4, 1e-12);
  EXPECT_NEAR(deg_to_rad(180.0), std::numbers::pi, 1e-15);
}

}  // namespace
