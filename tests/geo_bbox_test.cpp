#include "geo/bbox.hpp"

#include <gtest/gtest.h>

namespace {

using svg::geo::Box2;
using svg::geo::Box3;

TEST(BoxTest, EmptyBoxProperties) {
  const Box2 e = Box2::empty();
  EXPECT_TRUE(e.is_empty());
  EXPECT_FALSE(e.valid());
  EXPECT_EQ(e.volume(), 0.0);
}

TEST(BoxTest, ExpandEmptyWithPointYieldsPoint) {
  Box2 e = Box2::empty();
  e.expand_point({1.0, 2.0});
  EXPECT_TRUE(e.valid());
  EXPECT_EQ(e.min[0], 1.0);
  EXPECT_EQ(e.max[1], 2.0);
  EXPECT_EQ(e.volume(), 0.0);  // degenerate but valid
}

TEST(BoxTest, FromPointContainsExactlyThatPoint) {
  const Box2 b = Box2::from_point({3.0, 4.0});
  EXPECT_TRUE(b.contains_point({3.0, 4.0}));
  EXPECT_FALSE(b.contains_point({3.0, 4.1}));
}

TEST(BoxTest, IntersectsIsSymmetricAndCorrect) {
  const Box2 a{{0, 0}, {2, 2}};
  const Box2 b{{1, 1}, {3, 3}};
  const Box2 c{{2.5, 2.5}, {4, 4}};
  EXPECT_TRUE(a.intersects(b));
  EXPECT_TRUE(b.intersects(a));
  EXPECT_FALSE(a.intersects(c));
  EXPECT_TRUE(b.intersects(c));
}

TEST(BoxTest, TouchingEdgesIntersect) {
  const Box2 a{{0, 0}, {1, 1}};
  const Box2 b{{1, 0}, {2, 1}};
  EXPECT_TRUE(a.intersects(b));
}

TEST(BoxTest, ContainsBoxAndPoint) {
  const Box2 outer{{0, 0}, {10, 10}};
  const Box2 inner{{2, 2}, {5, 5}};
  EXPECT_TRUE(outer.contains(inner));
  EXPECT_FALSE(inner.contains(outer));
  EXPECT_TRUE(outer.contains(outer));
  EXPECT_TRUE(outer.contains_point({0, 10}));
  EXPECT_FALSE(outer.contains_point({-0.1, 5}));
}

TEST(BoxTest, VolumeAndMargin) {
  const Box3 b{{0, 0, 0}, {2, 3, 4}};
  EXPECT_DOUBLE_EQ(b.volume(), 24.0);
  EXPECT_DOUBLE_EQ(b.margin(), 9.0);
}

TEST(BoxTest, DegenerateDimensionVolumeZero) {
  const Box3 b{{0, 0, 5}, {2, 3, 5}};
  EXPECT_DOUBLE_EQ(b.volume(), 0.0);
  EXPECT_DOUBLE_EQ(b.margin(), 5.0);
}

TEST(BoxTest, EnlargementMetric) {
  const Box2 a{{0, 0}, {2, 2}};
  const Box2 inside{{0.5, 0.5}, {1, 1}};
  const Box2 outside{{3, 0}, {4, 2}};
  EXPECT_DOUBLE_EQ(a.enlargement(inside), 0.0);
  EXPECT_DOUBLE_EQ(a.enlargement(outside), 8.0 - 4.0);
}

TEST(BoxTest, OverlapVolume) {
  const Box2 a{{0, 0}, {2, 2}};
  const Box2 b{{1, 1}, {3, 3}};
  EXPECT_DOUBLE_EQ(a.overlap_volume(b), 1.0);
  const Box2 c{{5, 5}, {6, 6}};
  EXPECT_DOUBLE_EQ(a.overlap_volume(c), 0.0);
  // Touching boxes overlap with zero volume.
  const Box2 d{{2, 0}, {3, 2}};
  EXPECT_DOUBLE_EQ(a.overlap_volume(d), 0.0);
}

TEST(BoxTest, ExpandedUnionCoversBoth) {
  const Box2 a{{0, 0}, {1, 1}};
  const Box2 b{{2, -1}, {3, 0.5}};
  const Box2 u = a.expanded(b);
  EXPECT_TRUE(u.contains(a));
  EXPECT_TRUE(u.contains(b));
  EXPECT_EQ(u.min[1], -1.0);
  EXPECT_EQ(u.max[0], 3.0);
}

TEST(BoxTest, CenterOfBox) {
  const Box2 a{{0, 2}, {4, 6}};
  const auto c = a.center();
  EXPECT_DOUBLE_EQ(c[0], 2.0);
  EXPECT_DOUBLE_EQ(c[1], 4.0);
}

}  // namespace
