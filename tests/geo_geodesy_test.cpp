#include "geo/geodesy.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "geo/angle.hpp"

namespace {

using namespace svg::geo;

TEST(MetresPerDegreeTest, LatitudeScaleMatchesSphere) {
  // 2πr/360 for the paper's r = 6378140 m.
  EXPECT_NEAR(metres_per_degree_lat(), 111'319.45, 1.0);
}

TEST(MetresPerDegreeTest, LongitudeShrinksWithLatitude) {
  EXPECT_NEAR(metres_per_degree_lng(0.0), metres_per_degree_lat(), 1e-6);
  EXPECT_NEAR(metres_per_degree_lng(60.0), metres_per_degree_lat() * 0.5,
              1e-6);
  EXPECT_LT(metres_per_degree_lng(89.9), 200.0);
}

TEST(DisplacementTest, PureNorth) {
  const LatLng a{40.0, 116.0};
  const LatLng b{40.001, 116.0};
  const Vec2 d = displacement_m(a, b);
  EXPECT_NEAR(d.x, 0.0, 1e-9);
  EXPECT_NEAR(d.y, 0.001 * metres_per_degree_lat(), 1e-6);
}

TEST(DisplacementTest, PureEastScaledByLatitude) {
  const LatLng a{60.0, 10.0};
  const LatLng b{60.0, 10.001};
  const Vec2 d = displacement_m(a, b);
  EXPECT_NEAR(d.x, 0.001 * metres_per_degree_lng(60.0), 1e-6);
  EXPECT_NEAR(d.y, 0.0, 1e-9);
}

TEST(DisplacementTest, AntiSymmetric) {
  const LatLng a{39.9, 116.3};
  const LatLng b{39.95, 116.42};
  const Vec2 ab = displacement_m(a, b);
  const Vec2 ba = displacement_m(b, a);
  EXPECT_NEAR(ab.x, -ba.x, 1e-9);
  EXPECT_NEAR(ab.y, -ba.y, 1e-9);
}

TEST(DisplacementTest, ShortWayAcrossAntimeridian) {
  const LatLng a{0.0, 179.999};
  const LatLng b{0.0, -179.999};
  const Vec2 d = displacement_m(a, b);
  // 0.002° of longitude at the equator, heading east.
  EXPECT_NEAR(d.x, 0.002 * metres_per_degree_lng(0.0), 1e-6);
  EXPECT_LT(std::fabs(d.x), 300.0);
}

TEST(DistanceTest, PythagoreanOnSmallOffsets) {
  const LatLng a{40.0, 116.0};
  const LatLng b = offset_m(a, 30.0, 40.0);
  EXPECT_NEAR(distance_m(a, b), 50.0, 0.01);
}

TEST(BearingTest, CardinalBearings) {
  const LatLng a{40.0, 116.0};
  EXPECT_NEAR(bearing_deg(a, offset_m(a, 0.0, 100.0)), 0.0, 1e-6);
  EXPECT_NEAR(bearing_deg(a, offset_m(a, 100.0, 0.0)), 90.0, 1e-3);
  EXPECT_NEAR(bearing_deg(a, offset_m(a, 0.0, -100.0)), 180.0, 1e-6);
  EXPECT_NEAR(bearing_deg(a, offset_m(a, -100.0, 0.0)), 270.0, 1e-3);
}

TEST(OffsetTest, RoundTripsThroughDisplacement) {
  const LatLng origin{39.9042, 116.4074};
  for (double east : {-500.0, 0.0, 123.45}) {
    for (double north : {-200.0, 0.0, 777.0}) {
      const LatLng moved = offset_m(origin, east, north);
      const Vec2 d = displacement_m(origin, moved);
      EXPECT_NEAR(d.x, east, 0.05) << east << "," << north;
      EXPECT_NEAR(d.y, north, 0.05);
    }
  }
}

TEST(LocalFrameTest, OriginMapsToZero) {
  const LatLng origin{39.9, 116.4};
  const LocalFrame frame(origin);
  const Vec2 v = frame.to_local(origin);
  EXPECT_EQ(v.x, 0.0);
  EXPECT_EQ(v.y, 0.0);
}

TEST(LocalFrameTest, RoundTrip) {
  const LocalFrame frame(LatLng{39.9, 116.4});
  for (double x : {-1000.0, -1.5, 0.0, 250.0}) {
    for (double y : {-300.0, 0.0, 42.0, 2000.0}) {
      const LatLng g = frame.to_global({x, y});
      const Vec2 back = frame.to_local(g);
      EXPECT_NEAR(back.x, x, 1e-6);
      EXPECT_NEAR(back.y, y, 1e-6);
    }
  }
}

TEST(LocalFrameTest, ConsistentWithDisplacement) {
  const LatLng origin{39.9, 116.4};
  const LocalFrame frame(origin);
  const LatLng p = offset_m(origin, 120.0, -80.0);
  const Vec2 local = frame.to_local(p);
  const Vec2 disp = displacement_m(origin, p);
  EXPECT_NEAR(local.x, disp.x, 0.01);
  EXPECT_NEAR(local.y, disp.y, 0.01);
}

}  // namespace
