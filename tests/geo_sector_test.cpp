#include "geo/sector.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "geo/angle.hpp"

namespace {

using svg::geo::Sector;
using svg::geo::Vec2;

Sector north_sector(double half_angle = 30.0, double radius = 100.0) {
  Sector s;
  s.apex = {0, 0};
  s.azimuth_deg = 0.0;
  s.half_angle_deg = half_angle;
  s.radius_m = radius;
  return s;
}

TEST(SectorCoversTest, ApexIsCovered) {
  EXPECT_TRUE(north_sector().covers({0, 0}));
}

TEST(SectorCoversTest, PointsAlongAxis) {
  const Sector s = north_sector();
  EXPECT_TRUE(s.covers({0, 50}));
  EXPECT_TRUE(s.covers({0, 100}));   // boundary inclusive
  EXPECT_FALSE(s.covers({0, 100.1}));
  EXPECT_FALSE(s.covers({0, -1}));   // behind
}

TEST(SectorCoversTest, AngularBoundary) {
  const Sector s = north_sector(30.0, 100.0);
  // 29.9° off-axis at range 50: inside.
  const double a1 = svg::geo::deg_to_rad(29.9);
  EXPECT_TRUE(s.covers({50 * std::sin(a1), 50 * std::cos(a1)}));
  // 30.1° off-axis: outside.
  const double a2 = svg::geo::deg_to_rad(30.1);
  EXPECT_FALSE(s.covers({50 * std::sin(a2), 50 * std::cos(a2)}));
}

TEST(SectorCoversTest, WorksAcrossNorthWrap) {
  Sector s = north_sector(30.0, 100.0);
  s.azimuth_deg = 350.0;
  // 10° east of north is within [320°, 20°].
  const double a = svg::geo::deg_to_rad(10.0);
  EXPECT_TRUE(s.covers({50 * std::sin(a), 50 * std::cos(a)}));
  // 50° east of north is not.
  const double b = svg::geo::deg_to_rad(50.0);
  EXPECT_FALSE(s.covers({50 * std::sin(b), 50 * std::cos(b)}));
}

TEST(SectorAreaTest, MatchesFormula) {
  const Sector s = north_sector(30.0, 100.0);
  EXPECT_NEAR(s.area(), (60.0 / 360.0) * std::numbers::pi * 1e4, 1e-9);
}

TEST(SectorAxisTest, PointsAlongAzimuth) {
  Sector s = north_sector();
  s.azimuth_deg = 90.0;
  const Vec2 a = s.axis();
  EXPECT_NEAR(a.x, 1.0, 1e-12);
  EXPECT_NEAR(a.y, 0.0, 1e-12);
}

TEST(SectorBoundingBoxTest, ContainsPolygonSamples) {
  for (double az : {0.0, 45.0, 135.0, 250.0, 355.0}) {
    Sector s = north_sector(35.0, 80.0);
    s.azimuth_deg = az;
    const auto bb = s.bounding_box();
    for (const Vec2& p : s.polygon(64)) {
      EXPECT_TRUE(bb.contains_point({p.x, p.y}))
          << "az=" << az << " p=(" << p.x << "," << p.y << ")";
    }
  }
}

TEST(SectorBoundingBoxTest, NorthFacingIncludesArcTop) {
  const Sector s = north_sector(30.0, 100.0);
  const auto bb = s.bounding_box();
  // The arc's topmost point is (0, R), which exceeds the chord endpoints.
  EXPECT_NEAR(bb.max[1], 100.0, 1e-9);
  EXPECT_NEAR(bb.min[1], 0.0, 1e-9);
  EXPECT_NEAR(bb.max[0], 50.0, 1e-9);   // R sin 30°
  EXPECT_NEAR(bb.min[0], -50.0, 1e-9);
}

TEST(SectorPolygonTest, VerticesOnArcOrApex) {
  const Sector s = north_sector(30.0, 100.0);
  const auto poly = s.polygon(16);
  EXPECT_EQ(poly.size(), 17u);
  EXPECT_EQ(poly.front(), (Vec2{0, 0}));
  for (std::size_t i = 1; i < poly.size(); ++i) {
    EXPECT_NEAR(poly[i].norm(), 100.0, 1e-9);
  }
}

TEST(SectorOverlapTest, SelfOverlapEqualsArea) {
  const Sector s = north_sector(30.0, 100.0);
  const double overlap = sector_overlap_area(s, s, 512);
  EXPECT_NEAR(overlap, s.area(), 0.02 * s.area());
}

TEST(SectorOverlapTest, DisjointSectorsZero) {
  const Sector a = north_sector();
  Sector b = north_sector();
  b.apex = {500, 0};
  EXPECT_EQ(sector_overlap_area(a, b), 0.0);
}

TEST(SectorOverlapTest, OppositeDirectionsZero) {
  const Sector a = north_sector();
  Sector b = north_sector();
  b.azimuth_deg = 180.0;
  EXPECT_NEAR(sector_overlap_area(a, b, 256), 0.0, 1.0);
}

TEST(SectorOverlapTest, HalfRotationOverlapRoughlyHalf) {
  const Sector a = north_sector(30.0, 100.0);
  Sector b = a;
  b.azimuth_deg = 30.0;  // half the 60° span shared
  const double overlap = sector_overlap_area(a, b, 512);
  EXPECT_NEAR(overlap / a.area(), 0.5, 0.03);
}

TEST(SectorOverlapTest, MonotoneInRotation) {
  const Sector a = north_sector(30.0, 100.0);
  double prev = sector_overlap_area(a, a, 256);
  for (double az = 10.0; az <= 70.0; az += 10.0) {
    Sector b = a;
    b.azimuth_deg = az;
    const double o = sector_overlap_area(a, b, 256);
    EXPECT_LE(o, prev + 0.02 * a.area()) << az;
    prev = o;
  }
}

}  // namespace
