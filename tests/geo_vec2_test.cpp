#include "geo/vec2.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace {

using svg::geo::Vec2;

TEST(Vec2Test, ArithmeticOperators) {
  const Vec2 a{1, 2}, b{3, -4};
  EXPECT_EQ(a + b, (Vec2{4, -2}));
  EXPECT_EQ(a - b, (Vec2{-2, 6}));
  EXPECT_EQ(a * 2.0, (Vec2{2, 4}));
  EXPECT_EQ(2.0 * a, (Vec2{2, 4}));
  EXPECT_EQ(b / 2.0, (Vec2{1.5, -2}));
  EXPECT_EQ(-a, (Vec2{-1, -2}));
}

TEST(Vec2Test, CompoundAssignment) {
  Vec2 v{1, 1};
  v += {2, 3};
  EXPECT_EQ(v, (Vec2{3, 4}));
  v -= {1, 1};
  EXPECT_EQ(v, (Vec2{2, 3}));
}

TEST(Vec2Test, DotAndCross) {
  const Vec2 a{1, 0}, b{0, 1};
  EXPECT_DOUBLE_EQ(a.dot(b), 0.0);
  EXPECT_DOUBLE_EQ(a.cross(b), 1.0);   // b is CCW from a
  EXPECT_DOUBLE_EQ(b.cross(a), -1.0);
  EXPECT_DOUBLE_EQ((Vec2{2, 3}).dot({4, 5}), 23.0);
}

TEST(Vec2Test, NormAndDistance) {
  const Vec2 v{3, 4};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.norm2(), 25.0);
  EXPECT_DOUBLE_EQ(svg::geo::distance({0, 0}, v), 5.0);
}

TEST(Vec2Test, NormalizedUnitLength) {
  const Vec2 v{3, 4};
  const Vec2 n = v.normalized();
  EXPECT_NEAR(n.norm(), 1.0, 1e-12);
  EXPECT_NEAR(n.x, 0.6, 1e-12);
  // Zero vector normalizes to zero, not NaN.
  const Vec2 z = Vec2{}.normalized();
  EXPECT_EQ(z, Vec2{});
}

TEST(Vec2Test, RotationCcw) {
  const Vec2 east{1, 0};
  const Vec2 north = east.rotated(std::numbers::pi / 2);
  EXPECT_NEAR(north.x, 0.0, 1e-12);
  EXPECT_NEAR(north.y, 1.0, 1e-12);
  // Full turn is identity.
  const Vec2 round = east.rotated(2 * std::numbers::pi);
  EXPECT_NEAR(round.x, 1.0, 1e-12);
  EXPECT_NEAR(round.y, 0.0, 1e-12);
}

TEST(Vec2Test, RotationPreservesNorm) {
  const Vec2 v{2.5, -7.25};
  for (double a = 0.0; a < 6.28; a += 0.37) {
    EXPECT_NEAR(v.rotated(a).norm(), v.norm(), 1e-12);
  }
}

}  // namespace
