#include "index/fov_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "sim/crowd.hpp"
#include "util/rng.hpp"

namespace {

using namespace svg::index;
using svg::core::RepresentativeFov;
using svg::geo::LatLng;

RepresentativeFov make_rep(std::uint64_t vid, double lat, double lng,
                           double theta, svg::core::TimestampMs t0,
                           svg::core::TimestampMs t1) {
  RepresentativeFov r;
  r.video_id = vid;
  r.fov.p = {lat, lng};
  r.fov.theta_deg = theta;
  r.t_start = t0;
  r.t_end = t1;
  return r;
}

GeoTimeRange range(double lng0, double lng1, double lat0, double lat1,
                   svg::core::TimestampMs t0, svg::core::TimestampMs t1) {
  return GeoTimeRange{lng0, lng1, lat0, lat1, t0, t1};
}

std::vector<std::uint64_t> ids(const std::vector<RepresentativeFov>& v) {
  std::vector<std::uint64_t> out;
  for (const auto& r : v) out.push_back(r.video_id);
  std::sort(out.begin(), out.end());
  return out;
}

TEST(FovIndexTest, InsertAndSpatialQuery) {
  FovIndex idx;
  idx.insert(make_rep(1, 40.0, 116.0, 0, 0, 1000));
  idx.insert(make_rep(2, 40.5, 116.5, 0, 0, 1000));
  const auto hits =
      idx.query_collect(range(115.9, 116.1, 39.9, 40.1, 0, 2000));
  EXPECT_EQ(ids(hits), (std::vector<std::uint64_t>{1}));
}

TEST(FovIndexTest, TemporalFiltering) {
  FovIndex idx;
  idx.insert(make_rep(1, 40.0, 116.0, 0, 0, 1000));
  idx.insert(make_rep(2, 40.0, 116.0, 0, 5000, 6000));
  // Window covering only the second segment.
  EXPECT_EQ(ids(idx.query_collect(range(115.9, 116.1, 39.9, 40.1, 4000,
                                        7000))),
            (std::vector<std::uint64_t>{2}));
  // Window overlapping both.
  EXPECT_EQ(ids(idx.query_collect(range(115.9, 116.1, 39.9, 40.1, 500,
                                        5500))),
            (std::vector<std::uint64_t>{1, 2}));
  // Window between them.
  EXPECT_TRUE(
      idx.query_collect(range(115.9, 116.1, 39.9, 40.1, 2000, 4000))
          .empty());
}

TEST(FovIndexTest, IntervalTouchingWindowBoundaryMatches) {
  FovIndex idx;
  idx.insert(make_rep(1, 40.0, 116.0, 0, 1000, 2000));
  EXPECT_EQ(
      idx.query_collect(range(115.9, 116.1, 39.9, 40.1, 2000, 3000)).size(),
      1u);
  EXPECT_EQ(
      idx.query_collect(range(115.9, 116.1, 39.9, 40.1, 0, 1000)).size(),
      1u);
}

TEST(FovIndexTest, EraseByHandle) {
  FovIndex idx;
  const auto h1 = idx.insert(make_rep(1, 40.0, 116.0, 0, 0, 1000));
  idx.insert(make_rep(2, 40.0, 116.0, 0, 0, 1000));
  EXPECT_EQ(idx.size(), 2u);
  EXPECT_TRUE(idx.erase(h1));
  EXPECT_FALSE(idx.erase(h1));  // stale handle
  EXPECT_FALSE(idx.erase(9999));
  EXPECT_EQ(idx.size(), 1u);
  EXPECT_EQ(ids(idx.query_collect(range(115.9, 116.1, 39.9, 40.1, 0, 2000))),
            (std::vector<std::uint64_t>{2}));
}

TEST(FovIndexTest, MatchesLinearIndexOnRandomWorkload) {
  svg::sim::CityModel city;
  svg::util::Xoshiro256 rng(42);
  const auto reps = svg::sim::random_representative_fovs(
      3000, city, 0, 86'400'000, rng);
  FovIndex tree;
  LinearIndex linear;
  for (const auto& r : reps) {
    tree.insert(r);
    linear.insert(r);
  }
  tree.check_invariants();
  for (int q = 0; q < 100; ++q) {
    const LatLng c = city.random_point(rng);
    const double half = rng.uniform(0.0005, 0.01);
    const auto t0 = static_cast<svg::core::TimestampMs>(
        rng.bounded(86'400'000));
    const auto t1 = t0 + static_cast<svg::core::TimestampMs>(
                             rng.bounded(3'600'000));
    const auto gr =
        range(c.lng - half, c.lng + half, c.lat - half, c.lat + half, t0,
              t1);
    ASSERT_EQ(ids(tree.query_collect(gr)), ids(linear.query_collect(gr)))
        << "query " << q;
  }
}

TEST(FovIndexTest, BulkLoadMatchesDynamic) {
  svg::sim::CityModel city;
  svg::util::Xoshiro256 rng(43);
  const auto reps = svg::sim::random_representative_fovs(
      2000, city, 0, 86'400'000, rng);
  FovIndex dynamic;
  for (const auto& r : reps) dynamic.insert(r);
  const FovIndex bulk = FovIndex::bulk_load(reps);
  EXPECT_EQ(bulk.size(), 2000u);
  bulk.check_invariants();
  for (int q = 0; q < 50; ++q) {
    const LatLng c = city.random_point(rng);
    const auto gr = range(c.lng - 0.005, c.lng + 0.005, c.lat - 0.005,
                          c.lat + 0.005, 0, 86'400'000);
    ASSERT_EQ(ids(bulk.query_collect(gr)), ids(dynamic.query_collect(gr)));
  }
}

TEST(FovIndexTest, StatsExposeTreeShape) {
  svg::sim::CityModel city;
  svg::util::Xoshiro256 rng(44);
  FovIndex idx;
  for (const auto& r :
       svg::sim::random_representative_fovs(1000, city, 0, 1000000, rng)) {
    idx.insert(r);
  }
  const auto s = idx.stats();
  EXPECT_EQ(s.size, 1000u);
  EXPECT_GE(s.height, 2u);
}

TEST(LinearIndexTest, EraseHidesEntry) {
  LinearIndex idx;
  const auto h = idx.insert(make_rep(1, 40.0, 116.0, 0, 0, 1000));
  EXPECT_EQ(idx.size(), 1u);
  EXPECT_TRUE(idx.erase(h));
  EXPECT_EQ(idx.size(), 0u);
  EXPECT_TRUE(
      idx.query_collect(range(115.0, 117.0, 39.0, 41.0, 0, 2000)).empty());
}

// Regression: query_collect/size/snapshot used to bypass the svg_index_*
// query instrumentation, so dashboards undercounted reads. All read entry
// points must count as queries.
TEST(ConcurrentFovIndexTest, AllReadPathsFeedQueryMetrics) {
  auto& m = svg::obs::index_metrics();
  ConcurrentFovIndex idx;
  idx.insert(make_rep(1, 40.0, 116.0, 0, 0, 1000));

  const auto q0 = m.queries.value();
  idx.query(range(115.9, 116.1, 39.9, 40.1, 0, 2000),
            [](const RepresentativeFov&) {});
  EXPECT_EQ(m.queries.value() - q0, 1u);
  (void)idx.query_collect(range(115.9, 116.1, 39.9, 40.1, 0, 2000));
  EXPECT_EQ(m.queries.value() - q0, 2u);
  (void)idx.size();
  EXPECT_EQ(m.queries.value() - q0, 3u);
  (void)idx.snapshot();
  EXPECT_EQ(m.queries.value() - q0, 4u);
}

TEST(ConcurrentFovIndexTest, InsertBatchAmortizesOneLockHold) {
  auto& m = svg::obs::index_metrics();
  ConcurrentFovIndex idx;
  std::vector<RepresentativeFov> burst;
  for (int i = 0; i < 40; ++i) {
    burst.push_back(make_rep(7, 40.0, 116.0, 0, i * 100, i * 100 + 50));
  }
  const auto inserts0 = m.inserts.value();
  idx.insert_batch(burst);
  EXPECT_EQ(idx.size(), 40u);
  EXPECT_EQ(m.inserts.value() - inserts0, 40u);
  idx.insert_batch({});  // empty batch is a no-op, not a lock acquisition
  EXPECT_EQ(m.inserts.value() - inserts0, 40u);
}

TEST(ConcurrentFovIndexTest, ParallelReadersDuringWrites) {
  svg::sim::CityModel city;
  svg::util::Xoshiro256 rng(45);
  const auto reps = svg::sim::random_representative_fovs(
      2000, city, 0, 86'400'000, rng);
  ConcurrentFovIndex idx;
  for (std::size_t i = 0; i < 1000; ++i) idx.insert(reps[i]);

  // Bounded reader loops: an unbounded `while (!stop)` scan loop can
  // starve the writer forever on reader-preferring shared_mutex
  // implementations.
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> readers;
  const auto bounds = city.bounds_deg();
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        const auto hits = idx.query_collect(
            range(bounds.min[0], bounds.max[0], bounds.min[1],
                  bounds.max[1], 0, 86'400'000));
        reads.fetch_add(1, std::memory_order_relaxed);
        // Sizes only ever grow during this test.
        ASSERT_GE(hits.size(), 1000u);
        ASSERT_LE(hits.size(), 2000u);
      }
    });
  }
  for (std::size_t i = 1000; i < 2000; ++i) idx.insert(reps[i]);
  for (auto& t : readers) t.join();
  EXPECT_EQ(idx.size(), 2000u);
  EXPECT_GT(reads.load(), 0u);
}

}  // namespace
