#include "index/kdtree_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/crowd.hpp"
#include "util/rng.hpp"

namespace {

using namespace svg::index;
using svg::core::RepresentativeFov;

std::vector<std::uint64_t> ids(const std::vector<RepresentativeFov>& v) {
  std::vector<std::uint64_t> out;
  for (const auto& r : v) out.push_back(r.video_id);
  std::sort(out.begin(), out.end());
  return out;
}

TEST(KdTreeIndexTest, EmptyCorpus) {
  const KdTreeIndex idx({});
  EXPECT_EQ(idx.size(), 0u);
  EXPECT_TRUE(
      idx.query_collect({0, 1, 0, 1, 0, 1}).empty());
}

TEST(KdTreeIndexTest, SingleEntry) {
  RepresentativeFov rep;
  rep.video_id = 9;
  rep.fov.p = {40.0, 116.0};
  rep.t_start = 1000;
  rep.t_end = 2000;
  const KdTreeIndex idx({rep});
  EXPECT_EQ(
      idx.query_collect({115.9, 116.1, 39.9, 40.1, 1500, 1600}).size(), 1u);
  EXPECT_TRUE(
      idx.query_collect({115.9, 116.1, 39.9, 40.1, 3000, 4000}).empty());
}

TEST(KdTreeIndexTest, MatchesLinearOnRandomWorkload) {
  svg::sim::CityModel city;
  svg::util::Xoshiro256 rng(8);
  const auto reps = svg::sim::random_representative_fovs(
      3000, city, 0, 86'400'000, rng);
  const KdTreeIndex kd(reps);
  LinearIndex linear;
  for (const auto& r : reps) linear.insert(r);

  for (int q = 0; q < 80; ++q) {
    const auto c = city.random_point(rng);
    const double half = rng.uniform(0.0005, 0.01);
    const auto t0 = static_cast<svg::core::TimestampMs>(
        rng.bounded(80'000'000));
    const GeoTimeRange range{c.lng - half, c.lng + half, c.lat - half,
                             c.lat + half, t0,
                             t0 + static_cast<svg::core::TimestampMs>(
                                      rng.bounded(6'000'000))};
    ASSERT_EQ(ids(kd.query_collect(range)),
              ids(linear.query_collect(range)))
        << q;
  }
}

TEST(KdTreeIndexTest, FindsSegmentsStartedBeforeWindow) {
  // The t_start-only weakness the widening compensates: a segment that
  // began long before the query window but still overlaps it.
  RepresentativeFov lingering;
  lingering.video_id = 1;
  lingering.fov.p = {40.0, 116.0};
  lingering.t_start = 0;
  lingering.t_end = 1'000'000;  // ~17 min segment
  const KdTreeIndex idx({lingering});
  EXPECT_EQ(
      idx.query_collect({115.9, 116.1, 39.9, 40.1, 900'000, 950'000}).size(),
      1u);
}

TEST(KdTreeIndexTest, VisitsFewerNodesThanCorpusOnSmallQueries) {
  svg::sim::CityModel city;
  svg::util::Xoshiro256 rng(9);
  const auto reps = svg::sim::random_representative_fovs(
      10'000, city, 0, 86'400'000, rng);
  const KdTreeIndex kd(reps);
  const auto c = city.center;
  (void)kd.query_collect(
      {c.lng - 0.001, c.lng + 0.001, c.lat - 0.001, c.lat + 0.001,
       40'000'000, 44'000'000});
  EXPECT_LT(kd.nodes_visited_last_query(), 10'000u);
  EXPECT_GT(kd.nodes_visited_last_query(), 0u);
}

}  // namespace
