// k-nearest-neighbour search on the R-tree and the uniform-grid baseline.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "index/grid_index.hpp"
#include "index/rtree.hpp"
#include "sim/crowd.hpp"
#include "util/rng.hpp"

namespace {

using svg::geo::Box3;
using svg::index::GridIndex;
using svg::index::RTree;

using Tree = RTree<std::uint64_t, 3>;

Box3 point_box(double x, double y, double z) {
  Box3 b;
  b.min = {x, y, z};
  b.max = {x, y, z};
  return b;
}

TEST(RTreeNearestTest, FindsExactNearestPoints) {
  Tree tree(svg::index::RTreeOptions{8, 3});
  svg::util::Xoshiro256 rng(1);
  std::vector<std::array<double, 3>> pts;
  for (std::uint64_t i = 0; i < 500; ++i) {
    const std::array<double, 3> p{rng.uniform(0.0, 100.0),
                                  rng.uniform(0.0, 100.0),
                                  rng.uniform(0.0, 100.0)};
    pts.push_back(p);
    tree.insert(point_box(p[0], p[1], p[2]), i);
  }
  const std::array<double, 3> q{50.0, 50.0, 50.0};
  const auto knn = tree.nearest(q, 10);
  ASSERT_EQ(knn.size(), 10u);

  // Brute-force reference.
  std::vector<std::pair<double, std::uint64_t>> ref;
  for (std::uint64_t i = 0; i < pts.size(); ++i) {
    double d2 = 0;
    for (int d = 0; d < 3; ++d) {
      d2 += (pts[i][d] - q[d]) * (pts[i][d] - q[d]);
    }
    ref.emplace_back(d2, i);
  }
  std::sort(ref.begin(), ref.end());
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(knn[i].value, ref[i].second) << i;
  }
}

TEST(RTreeNearestTest, ResultsOrderedByDistance) {
  Tree tree;
  svg::util::Xoshiro256 rng(2);
  for (std::uint64_t i = 0; i < 200; ++i) {
    tree.insert(point_box(rng.uniform(0, 10), rng.uniform(0, 10),
                          rng.uniform(0, 10)),
                i);
  }
  const std::array<double, 3> q{5, 5, 5};
  const auto knn = tree.nearest(q, 20);
  double prev = -1.0;
  for (const auto& e : knn) {
    const double d2 = Tree::min_dist2(e.box, q);
    EXPECT_GE(d2, prev);
    prev = d2;
  }
}

TEST(RTreeNearestTest, KLargerThanSizeReturnsAll) {
  Tree tree;
  for (std::uint64_t i = 0; i < 5; ++i) {
    tree.insert(point_box(static_cast<double>(i), 0, 0), i);
  }
  EXPECT_EQ(tree.nearest({0, 0, 0}, 50).size(), 5u);
  EXPECT_TRUE(tree.nearest({0, 0, 0}, 0).empty());
  Tree empty;
  EXPECT_TRUE(empty.nearest({0, 0, 0}, 3).empty());
}

TEST(RTreeNearestTest, FilterSkipsWithoutConsumingSlots) {
  Tree tree;
  for (std::uint64_t i = 0; i < 100; ++i) {
    tree.insert(point_box(static_cast<double>(i), 0, 0), i);
  }
  // Only even ids allowed; ask for the 5 nearest to x = 0.
  const auto knn = tree.nearest(
      {0, 0, 0}, 5,
      [](const Box3&, const std::uint64_t& v) { return v % 2 == 0; });
  ASSERT_EQ(knn.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(knn[i].value, 2 * i);
  }
}

TEST(RTreeNearestTest, MinDist2Semantics) {
  Box3 b;
  b.min = {0, 0, 0};
  b.max = {10, 10, 10};
  EXPECT_DOUBLE_EQ(Tree::min_dist2(b, {5, 5, 5}), 0.0);   // inside
  EXPECT_DOUBLE_EQ(Tree::min_dist2(b, {13, 5, 5}), 9.0);  // face
  EXPECT_DOUBLE_EQ(Tree::min_dist2(b, {13, 14, 5}), 25.0);  // edge
}

// --- grid baseline ------------------------------------------------------

svg::geo::Box2 beijing_bounds() {
  svg::geo::Box2 b;
  b.min = {116.30, 39.85};
  b.max = {116.50, 39.95};
  return b;
}

TEST(GridIndexTest, MatchesLinearOnRandomWorkload) {
  svg::sim::CityModel city;
  svg::util::Xoshiro256 rng(3);
  const auto reps = svg::sim::random_representative_fovs(
      2000, city, 0, 86'400'000, rng);
  const auto bounds = city.bounds_deg();
  GridIndex grid(bounds, 32);
  svg::index::LinearIndex linear;
  for (const auto& r : reps) {
    grid.insert(r);
    linear.insert(r);
  }
  ASSERT_EQ(grid.size(), linear.size());
  auto ids = [](const std::vector<svg::core::RepresentativeFov>& v) {
    std::vector<std::uint64_t> out;
    for (const auto& r : v) out.push_back(r.video_id);
    std::sort(out.begin(), out.end());
    return out;
  };
  for (int q = 0; q < 60; ++q) {
    const auto c = city.random_point(rng);
    const double half = rng.uniform(0.0005, 0.01);
    const svg::index::GeoTimeRange range{
        c.lng - half, c.lng + half, c.lat - half, c.lat + half,
        static_cast<svg::core::TimestampMs>(rng.bounded(43'200'000)),
        static_cast<svg::core::TimestampMs>(43'200'000 +
                                            rng.bounded(43'200'000))};
    ASSERT_EQ(ids(grid.query_collect(range)),
              ids(linear.query_collect(range)))
        << q;
  }
}

TEST(GridIndexTest, EraseWorks) {
  GridIndex grid(beijing_bounds(), 8);
  svg::core::RepresentativeFov rep;
  rep.video_id = 1;
  rep.fov.p = {39.9, 116.4};
  rep.t_start = 0;
  rep.t_end = 1000;
  const auto h = grid.insert(rep);
  EXPECT_EQ(grid.size(), 1u);
  EXPECT_TRUE(grid.erase(h));
  EXPECT_FALSE(grid.erase(h));
  EXPECT_EQ(grid.size(), 0u);
  const svg::index::GeoTimeRange all{116.30, 116.50, 39.85, 39.95, 0, 2000};
  EXPECT_TRUE(grid.query_collect(all).empty());
}

TEST(GridIndexTest, OutOfBoundsEntriesClampIntoBorderCells) {
  GridIndex grid(beijing_bounds(), 8);
  svg::core::RepresentativeFov rep;
  rep.video_id = 7;
  rep.fov.p = {50.0, 120.0};  // way outside
  rep.t_start = 0;
  rep.t_end = 1000;
  grid.insert(rep);
  // Still findable with a range that includes its true coordinates.
  const svg::index::GeoTimeRange range{119.0, 121.0, 49.0, 51.0, 0, 2000};
  EXPECT_EQ(grid.query_collect(range).size(), 1u);
}

TEST(GridIndexTest, CellsTouchedScalesWithRange) {
  GridIndex grid(beijing_bounds(), 16);
  const svg::index::GeoTimeRange small{116.40, 116.41, 39.90, 39.905, 0, 1};
  const svg::index::GeoTimeRange big{116.30, 116.50, 39.85, 39.95, 0, 1};
  EXPECT_LT(grid.cells_touched(small), grid.cells_touched(big));
  EXPECT_EQ(grid.cells_touched(big), 16u * 16u);
}

TEST(GridIndexTest, InvalidConstructionThrows) {
  EXPECT_THROW(GridIndex(svg::geo::Box2::empty(), 8),
               std::invalid_argument);
  EXPECT_THROW(GridIndex(beijing_bounds(), 0), std::invalid_argument);
}

}  // namespace
