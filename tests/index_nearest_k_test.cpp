// FovIndex::nearest_k — Section V's "top-k most relevant video segments"
// without a radius guess: best-first search with time-window filtering.

#include <gtest/gtest.h>

#include <algorithm>

#include "geo/geodesy.hpp"
#include "index/fov_index.hpp"
#include "sim/crowd.hpp"
#include "util/rng.hpp"

namespace {

using namespace svg::index;
using svg::core::RepresentativeFov;
using svg::geo::LatLng;

TEST(FovIndexNearestKTest, OrderedByDistance) {
  svg::sim::CityModel city;
  svg::util::Xoshiro256 rng(1);
  FovIndex idx;
  const auto reps =
      svg::sim::random_representative_fovs(2000, city, 0, 3'600'000, rng);
  for (const auto& r : reps) idx.insert(r);

  const auto hits = idx.nearest_k(city.center, 10, 0, 3'600'000);
  ASSERT_EQ(hits.size(), 10u);
  double prev = -1.0;
  for (const auto& h : hits) {
    const double d = svg::geo::distance_m(h.fov.p, city.center);
    EXPECT_GE(d, prev - 1e-9);
    prev = d;
  }
}

TEST(FovIndexNearestKTest, MatchesBruteForceTopK) {
  svg::sim::CityModel city;
  svg::util::Xoshiro256 rng(2);
  FovIndex idx;
  const auto reps =
      svg::sim::random_representative_fovs(3000, city, 0, 3'600'000, rng);
  for (const auto& r : reps) idx.insert(r);

  for (int trial = 0; trial < 10; ++trial) {
    const LatLng q = city.random_point(rng);
    const auto got = idx.nearest_k(q, 5, 0, 3'600'000);
    // Brute force reference.
    std::vector<std::pair<double, std::uint64_t>> ref;
    for (const auto& r : reps) {
      ref.emplace_back(svg::geo::distance_m(r.fov.p, q), r.video_id);
    }
    std::sort(ref.begin(), ref.end());
    ASSERT_EQ(got.size(), 5u);
    for (std::size_t i = 0; i < 5; ++i) {
      EXPECT_EQ(got[i].video_id, ref[i].second) << trial << ":" << i;
    }
  }
}

TEST(FovIndexNearestKTest, TimeWindowFilters) {
  FovIndex idx;
  RepresentativeFov early;
  early.video_id = 1;
  early.fov.p = {39.9, 116.4};
  early.t_start = 0;
  early.t_end = 1000;
  RepresentativeFov late = early;
  late.video_id = 2;
  late.t_start = 100'000;
  late.t_end = 101'000;
  idx.insert(early);
  idx.insert(late);

  const auto hits = idx.nearest_k({39.9, 116.4}, 5, 90'000, 200'000);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].video_id, 2u);
}

TEST(FovIndexNearestKTest, KLargerThanMatchesReturnsAll) {
  FovIndex idx;
  RepresentativeFov rep;
  rep.fov.p = {39.9, 116.4};
  rep.t_start = 0;
  rep.t_end = 1000;
  for (std::uint64_t i = 0; i < 3; ++i) {
    rep.video_id = i;
    idx.insert(rep);
  }
  EXPECT_EQ(idx.nearest_k({39.9, 116.4}, 50, 0, 2000).size(), 3u);
  EXPECT_TRUE(idx.nearest_k({39.9, 116.4}, 0, 0, 2000).empty());
}

TEST(FovIndexNearestKTest, EmptyIndex) {
  FovIndex idx;
  EXPECT_TRUE(idx.nearest_k({39.9, 116.4}, 5, 0, 1000).empty());
}

}  // namespace
