// R-tree correctness: queries checked against brute force over random
// workloads, structural invariants maintained through inserts and deletes,
// STR bulk load equivalence.

#include "index/rtree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/rng.hpp"

namespace {

using svg::geo::Box3;
using svg::index::RTree;
using svg::index::RTreeOptions;

using Tree = RTree<std::uint64_t, 3>;

Box3 random_box(svg::util::Xoshiro256& rng, double extent = 100.0,
                double max_size = 5.0) {
  Box3 b;
  for (std::size_t d = 0; d < 3; ++d) {
    const double lo = rng.uniform(0.0, extent);
    const double len = rng.uniform(0.0, max_size);
    b.min[d] = lo;
    b.max[d] = lo + len;
  }
  return b;
}

std::vector<std::uint64_t> brute_force(
    const std::vector<std::pair<Box3, std::uint64_t>>& data,
    const Box3& query) {
  std::vector<std::uint64_t> out;
  for (const auto& [box, value] : data) {
    if (box.intersects(query)) out.push_back(value);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::uint64_t> tree_query(const Tree& tree, const Box3& query) {
  std::vector<std::uint64_t> out;
  tree.query(query, [&](const Box3&, const std::uint64_t& v) {
    out.push_back(v);
  });
  std::sort(out.begin(), out.end());
  return out;
}

TEST(RTreeTest, EmptyTreeBasics) {
  Tree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree_query(tree, Box3{{0, 0, 0}, {1, 1, 1}}).empty());
  EXPECT_FALSE(tree.erase(Box3{{0, 0, 0}, {1, 1, 1}}, 1));
  tree.check_invariants();
}

TEST(RTreeTest, SingleEntryRoundTrip) {
  Tree tree;
  const Box3 b{{1, 2, 3}, {4, 5, 6}};
  tree.insert(b, 42);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree_query(tree, b), (std::vector<std::uint64_t>{42}));
  EXPECT_TRUE(tree_query(tree, Box3{{10, 10, 10}, {11, 11, 11}}).empty());
  tree.check_invariants();
}

TEST(RTreeTest, OptionsValidated) {
  EXPECT_THROW(Tree(RTreeOptions{1, 1}), std::invalid_argument);
  EXPECT_THROW(Tree(RTreeOptions{8, 5}), std::invalid_argument);
  EXPECT_THROW(Tree(RTreeOptions{8, 0}), std::invalid_argument);
  EXPECT_NO_THROW(Tree(RTreeOptions{8, 4}));
}

// Parameterized over (node capacity, entry count) — splits, deep trees, and
// degenerate boxes all get exercised.
class RTreeRandomized
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(RTreeRandomized, QueriesMatchBruteForce) {
  const auto [capacity, count] = GetParam();
  RTreeOptions opts{capacity, std::max<std::size_t>(1, capacity / 3)};
  Tree tree(opts);
  svg::util::Xoshiro256 rng(capacity * 1000 + count);

  std::vector<std::pair<Box3, std::uint64_t>> data;
  for (std::uint64_t i = 0; i < count; ++i) {
    const Box3 b = random_box(rng);
    data.emplace_back(b, i);
    tree.insert(b, i);
  }
  tree.check_invariants();
  EXPECT_EQ(tree.size(), count);

  for (int q = 0; q < 50; ++q) {
    const Box3 query = random_box(rng, 100.0, 20.0);
    ASSERT_EQ(tree_query(tree, query), brute_force(data, query))
        << "query " << q;
  }
}

TEST_P(RTreeRandomized, DeleteHalfThenQueriesStillMatch) {
  const auto [capacity, count] = GetParam();
  RTreeOptions opts{capacity, std::max<std::size_t>(1, capacity / 3)};
  Tree tree(opts);
  svg::util::Xoshiro256 rng(capacity * 7919 + count);

  std::vector<std::pair<Box3, std::uint64_t>> data;
  for (std::uint64_t i = 0; i < count; ++i) {
    const Box3 b = random_box(rng);
    data.emplace_back(b, i);
    tree.insert(b, i);
  }
  // Delete every other entry.
  std::vector<std::pair<Box3, std::uint64_t>> kept;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (i % 2 == 0) {
      ASSERT_TRUE(tree.erase(data[i].first, data[i].second)) << i;
    } else {
      kept.push_back(data[i]);
    }
  }
  tree.check_invariants();
  EXPECT_EQ(tree.size(), kept.size());

  for (int q = 0; q < 30; ++q) {
    const Box3 query = random_box(rng, 100.0, 25.0);
    ASSERT_EQ(tree_query(tree, query), brute_force(kept, query));
  }
}

INSTANTIATE_TEST_SUITE_P(
    CapacityAndSize, RTreeRandomized,
    ::testing::Combine(::testing::Values(std::size_t{4}, std::size_t{8},
                                         std::size_t{16}, std::size_t{64}),
                       ::testing::Values(std::size_t{10}, std::size_t{100},
                                         std::size_t{1000})));

TEST(RTreeTest, EraseMissingReturnsFalse) {
  Tree tree;
  const Box3 b{{0, 0, 0}, {1, 1, 1}};
  tree.insert(b, 1);
  EXPECT_FALSE(tree.erase(b, 2));                            // wrong value
  EXPECT_FALSE(tree.erase(Box3{{5, 5, 5}, {6, 6, 6}}, 1));   // wrong box
  EXPECT_TRUE(tree.erase(b, 1));
  EXPECT_FALSE(tree.erase(b, 1));  // already gone
  EXPECT_TRUE(tree.empty());
}

TEST(RTreeTest, DeleteEverythingLeavesCleanTree) {
  Tree tree(RTreeOptions{4, 2});
  svg::util::Xoshiro256 rng(5);
  std::vector<std::pair<Box3, std::uint64_t>> data;
  for (std::uint64_t i = 0; i < 200; ++i) {
    const Box3 b = random_box(rng);
    data.emplace_back(b, i);
    tree.insert(b, i);
  }
  for (const auto& [box, value] : data) {
    ASSERT_TRUE(tree.erase(box, value));
    tree.check_invariants();
  }
  EXPECT_TRUE(tree.empty());
  // Tree is reusable.
  tree.insert(data[0].first, 7);
  EXPECT_EQ(tree.size(), 1u);
}

TEST(RTreeTest, DuplicateBoxesWithDistinctValues) {
  Tree tree(RTreeOptions{4, 2});
  const Box3 b{{1, 1, 1}, {2, 2, 2}};
  for (std::uint64_t i = 0; i < 20; ++i) tree.insert(b, i);
  EXPECT_EQ(tree_query(tree, b).size(), 20u);
  EXPECT_TRUE(tree.erase(b, 13));
  const auto rest = tree_query(tree, b);
  EXPECT_EQ(rest.size(), 19u);
  EXPECT_EQ(std::count(rest.begin(), rest.end(), 13u), 0);
  tree.check_invariants();
}

TEST(RTreeTest, DegeneratePointBoxes) {
  // FoV rectangles are degenerate in lng/lat; make sure zero-volume boxes
  // index and query correctly.
  Tree tree(RTreeOptions{8, 3});
  svg::util::Xoshiro256 rng(6);
  std::vector<std::pair<Box3, std::uint64_t>> data;
  for (std::uint64_t i = 0; i < 500; ++i) {
    Box3 b;
    const double x = rng.uniform(0.0, 10.0);
    const double y = rng.uniform(0.0, 10.0);
    const double t0 = rng.uniform(0.0, 100.0);
    b.min = {x, y, t0};
    b.max = {x, y, t0 + rng.uniform(0.0, 5.0)};
    data.emplace_back(b, i);
    tree.insert(b, i);
  }
  tree.check_invariants();
  for (int q = 0; q < 40; ++q) {
    const Box3 query = random_box(rng, 10.0, 3.0);
    ASSERT_EQ(tree_query(tree, query), brute_force(data, query));
  }
}

TEST(RTreeTest, EarlyExitVisitorStops) {
  Tree tree;
  const Box3 b{{0, 0, 0}, {1, 1, 1}};
  for (std::uint64_t i = 0; i < 100; ++i) tree.insert(b, i);
  int seen = 0;
  tree.query(b, [&](const Box3&, const std::uint64_t&) {
    ++seen;
    return seen < 5;  // stop after 5
  });
  EXPECT_EQ(seen, 5);
}

TEST(RTreeTest, StatsReflectStructure) {
  Tree tree(RTreeOptions{4, 2});
  svg::util::Xoshiro256 rng(7);
  for (std::uint64_t i = 0; i < 300; ++i) {
    tree.insert(random_box(rng), i);
  }
  const auto s = tree.stats();
  EXPECT_EQ(s.size, 300u);
  EXPECT_GE(s.height, 3u);  // 300 entries at fanout <= 4
  EXPECT_GT(s.leaf_nodes, 300u / 4);
  EXPECT_GT(s.internal_nodes, 0u);
}

TEST(RTreeTest, QueryWorkCounterPopulated) {
  Tree tree(RTreeOptions{8, 3});
  svg::util::Xoshiro256 rng(8);
  for (std::uint64_t i = 0; i < 500; ++i) tree.insert(random_box(rng), i);
  tree.query(Box3{{0, 0, 0}, {10, 10, 10}},
             [](const Box3&, const std::uint64_t&) {});
  EXPECT_GT(tree.stats().boxes_visited_last_query, 0u);
}

TEST(RTreeTest, BoundsCoverEverything) {
  Tree tree;
  svg::util::Xoshiro256 rng(9);
  Box3 expect = Box3::empty();
  for (std::uint64_t i = 0; i < 100; ++i) {
    const Box3 b = random_box(rng);
    expect.expand(b);
    tree.insert(b, i);
  }
  EXPECT_EQ(tree.bounds(), expect);
}

TEST(RTreeBulkLoadTest, MatchesDynamicInsertResults) {
  svg::util::Xoshiro256 rng(10);
  std::vector<std::pair<Box3, std::uint64_t>> data;
  std::vector<Tree::Entry> entries;
  Tree dynamic(RTreeOptions{8, 3});
  for (std::uint64_t i = 0; i < 2000; ++i) {
    const Box3 b = random_box(rng);
    data.emplace_back(b, i);
    entries.push_back({b, i});
    dynamic.insert(b, i);
  }
  Tree bulk = Tree::bulk_load(std::move(entries), RTreeOptions{8, 3});
  bulk.check_invariants();
  EXPECT_EQ(bulk.size(), 2000u);
  for (int q = 0; q < 50; ++q) {
    const Box3 query = random_box(rng, 100.0, 15.0);
    const auto expected = brute_force(data, query);
    ASSERT_EQ(tree_query(bulk, query), expected);
    ASSERT_EQ(tree_query(dynamic, query), expected);
  }
}

TEST(RTreeBulkLoadTest, PacksTighterThanDynamic) {
  svg::util::Xoshiro256 rng(11);
  std::vector<Tree::Entry> entries;
  Tree dynamic(RTreeOptions{16, 6});
  for (std::uint64_t i = 0; i < 5000; ++i) {
    const Box3 b = random_box(rng);
    entries.push_back({b, i});
    dynamic.insert(b, i);
  }
  Tree bulk = Tree::bulk_load(std::move(entries), RTreeOptions{16, 6});
  EXPECT_LT(bulk.stats().leaf_nodes, dynamic.stats().leaf_nodes);
}

TEST(RTreeBulkLoadTest, EmptyAndTiny) {
  Tree empty = Tree::bulk_load({}, RTreeOptions{8, 3});
  EXPECT_TRUE(empty.empty());
  empty.check_invariants();

  Tree one = Tree::bulk_load({{Box3{{0, 0, 0}, {1, 1, 1}}, 5}},
                             RTreeOptions{8, 3});
  EXPECT_EQ(one.size(), 1u);
  EXPECT_EQ(tree_query(one, Box3{{0, 0, 0}, {2, 2, 2}}),
            (std::vector<std::uint64_t>{5}));
}

TEST(RTreeTest, MixedInsertEraseStressWithInvariants) {
  Tree tree(RTreeOptions{6, 3});
  svg::util::Xoshiro256 rng(12);
  std::vector<std::pair<Box3, std::uint64_t>> live;
  std::uint64_t next_id = 0;
  for (int round = 0; round < 2000; ++round) {
    if (live.empty() || rng.chance(0.6)) {
      const Box3 b = random_box(rng);
      tree.insert(b, next_id);
      live.emplace_back(b, next_id);
      ++next_id;
    } else {
      const std::size_t pick = rng.bounded(live.size());
      ASSERT_TRUE(tree.erase(live[pick].first, live[pick].second));
      live.erase(live.begin() + static_cast<long>(pick));
    }
    if (round % 100 == 0) tree.check_invariants();
  }
  tree.check_invariants();
  EXPECT_EQ(tree.size(), live.size());
  const Box3 everything{{-1, -1, -1}, {200, 200, 200}};
  EXPECT_EQ(tree_query(tree, everything).size(), live.size());
}

}  // namespace
