#include "index/sharded_fov_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "index/fov_index.hpp"
#include "obs/families.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace svg::index;
using svg::core::RepresentativeFov;
using svg::core::TimestampMs;

RepresentativeFov random_rep(svg::util::Xoshiro256& rng) {
  RepresentativeFov r;
  r.video_id = 1 + rng.bounded(64);  // few providers → all shards hit
  r.segment_id = static_cast<std::uint32_t>(rng.bounded(1'000'000));
  r.fov.p = {39.8 + rng.uniform() * 0.2, 116.3 + rng.uniform() * 0.2};
  r.fov.theta_deg = rng.uniform() * 360.0;
  r.t_start = static_cast<TimestampMs>(rng.uniform() * 1e6);
  r.t_end = r.t_start + 1'000 + static_cast<TimestampMs>(rng.uniform() * 1e5);
  return r;
}

GeoTimeRange random_range(svg::util::Xoshiro256& rng) {
  const double lng = 116.3 + rng.uniform() * 0.2;
  const double lat = 39.8 + rng.uniform() * 0.2;
  const double half = rng.chance(0.5) ? 0.01 : 0.08;
  const auto t0 = static_cast<TimestampMs>(rng.uniform() * 1e6);
  return {lng - half, lng + half, lat - half, lat + half, t0, t0 + 200'000};
}

/// Order-insensitive identity of a result set.
std::vector<std::pair<std::uint64_t, std::uint32_t>> keys(
    const std::vector<RepresentativeFov>& v) {
  std::vector<std::pair<std::uint64_t, std::uint32_t>> out;
  out.reserve(v.size());
  for (const auto& r : v) out.emplace_back(r.video_id, r.segment_id);
  std::sort(out.begin(), out.end());
  return out;
}

// The core guarantee: for any randomized insert/erase/query sequence the
// sharded index is indistinguishable (as a set) from one FovIndex.
TEST(ShardedFovIndexTest, EquivalentToPlainIndexUnderRandomOps) {
  svg::util::Xoshiro256 rng(1234);
  FovIndex plain;
  ShardedFovIndex sharded({.shards = 5});
  std::vector<std::pair<FovHandle, FovHandle>> live;  // (plain, sharded)

  for (int step = 0; step < 3'000; ++step) {
    const auto roll = rng.bounded(100);
    if (roll < 55 || live.empty()) {
      const auto rep = random_rep(rng);
      live.emplace_back(plain.insert(rep), sharded.insert(rep));
    } else if (roll < 75) {
      const auto pick = rng.bounded(live.size());
      const auto [ph, sh] = live[pick];
      EXPECT_EQ(plain.erase(ph), sharded.erase(sh));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      const auto q = random_range(rng);
      EXPECT_EQ(keys(plain.query_collect(q)),
                keys(sharded.query_collect(q)));
    }
    ASSERT_EQ(plain.size(), sharded.size());
  }
  EXPECT_EQ(keys(plain.snapshot()), keys(sharded.snapshot()));
  sharded.check_invariants();
}

TEST(ShardedFovIndexTest, HandlesRoundTripThroughErase) {
  svg::util::Xoshiro256 rng(99);
  ShardedFovIndex idx({.shards = 7});
  std::vector<FovHandle> handles;
  for (int i = 0; i < 500; ++i) handles.push_back(idx.insert(random_rep(rng)));
  EXPECT_EQ(idx.size(), 500u);
  for (const auto h : handles) EXPECT_TRUE(idx.erase(h));
  EXPECT_EQ(idx.size(), 0u);
  // Stale handles must be rejected, not resolved to some other entry.
  for (const auto h : handles) EXPECT_FALSE(idx.erase(h));
  idx.check_invariants();
}

TEST(ShardedFovIndexTest, InsertBatchMatchesIndividualInserts) {
  svg::util::Xoshiro256 rng(7);
  std::vector<RepresentativeFov> reps;
  for (int i = 0; i < 300; ++i) reps.push_back(random_rep(rng));

  ShardedFovIndex batched({.shards = 4, .insert_chunk = 16});
  batched.insert_batch(reps);
  ShardedFovIndex individual({.shards = 4});
  for (const auto& r : reps) individual.insert(r);

  EXPECT_EQ(batched.size(), reps.size());
  EXPECT_EQ(keys(batched.snapshot()), keys(individual.snapshot()));
  batched.check_invariants();
}

TEST(ShardedFovIndexTest, SingleShardDegeneratesToPlainIndex) {
  svg::util::Xoshiro256 rng(55);
  FovIndex plain;
  ShardedFovIndex sharded({.shards = 1});
  for (int i = 0; i < 400; ++i) {
    const auto rep = random_rep(rng);
    plain.insert(rep);
    sharded.insert(rep);
  }
  for (int i = 0; i < 50; ++i) {
    const auto q = random_range(rng);
    EXPECT_EQ(keys(plain.query_collect(q)), keys(sharded.query_collect(q)));
  }
}

TEST(ShardedFovIndexTest, TemplateAndFunctionVisitorsAgree) {
  svg::util::Xoshiro256 rng(21);
  ShardedFovIndex idx({.shards = 3});
  for (int i = 0; i < 200; ++i) idx.insert(random_rep(rng));
  const auto q = random_range(rng);

  std::vector<RepresentativeFov> via_template;
  idx.query(q, [&](const RepresentativeFov& r) { via_template.push_back(r); });
  std::vector<RepresentativeFov> via_function;
  const FovIndex::Visitor visit = [&](const RepresentativeFov& r) {
    via_function.push_back(r);
  };
  idx.query(q, visit);
  EXPECT_EQ(keys(via_template), keys(via_function));
}

// The pool fan-out path (threshold forced to 0 so it triggers on a small
// corpus) must return the same set as the inline path.
TEST(ShardedFovIndexTest, PoolFanoutMatchesInlineQueries) {
  svg::util::Xoshiro256 rng(31);
  std::vector<RepresentativeFov> reps;
  for (int i = 0; i < 500; ++i) reps.push_back(random_rep(rng));

  svg::util::ThreadPool pool(4);
  ShardedFovIndexOptions opts;
  opts.shards = 4;
  opts.pool = &pool;
  opts.parallel_query_min_size = 0;
  ShardedFovIndex fanout(opts);
  fanout.insert_batch(reps);
  ShardedFovIndex inline_idx({.shards = 4});
  inline_idx.insert_batch(reps);

  for (int i = 0; i < 30; ++i) {
    const auto q = random_range(rng);
    EXPECT_EQ(keys(fanout.query_collect(q)),
              keys(inline_idx.query_collect(q)));
  }
}

TEST(ShardedFovIndexTest, NearestKMergesAcrossShards) {
  svg::util::Xoshiro256 rng(61);
  FovIndex plain;
  ShardedFovIndex sharded({.shards = 6});
  for (int i = 0; i < 400; ++i) {
    const auto rep = random_rep(rng);
    plain.insert(rep);
    sharded.insert(rep);
  }
  const svg::geo::LatLng center{39.9, 116.4};
  const auto a = plain.nearest_k(center, 10, 0, 2'000'000);
  const auto b = sharded.nearest_k(center, 10, 0, 2'000'000);
  // Same k nearest (order-insensitive compare: equal-distance ties may
  // legitimately resolve differently).
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(keys(a), keys(b));
}

// Aggregated svg_index_* metrics move for sharded operations, and the
// per-shard size gauges always sum to the aggregate.
TEST(ShardedFovIndexTest, FeedsAggregatedAndPerShardMetrics) {
  auto& agg = svg::obs::index_metrics();
  const auto inserts0 = agg.inserts.value();
  const auto queries0 = agg.queries.value();
  const auto erases0 = agg.erases.value();

  svg::util::Xoshiro256 rng(77);
  constexpr std::size_t kShards = 3;
  ShardedFovIndex idx({.shards = kShards});
  std::vector<FovHandle> handles;
  for (int i = 0; i < 120; ++i) handles.push_back(idx.insert(random_rep(rng)));
  (void)idx.query_collect(random_range(rng));
  EXPECT_TRUE(idx.erase(handles.front()));

  EXPECT_EQ(agg.inserts.value() - inserts0, 120u);
  EXPECT_GE(agg.queries.value() - queries0, 1u);
  EXPECT_EQ(agg.erases.value() - erases0, 1u);

  std::int64_t shard_sum = 0;
  std::uint64_t shard_inserts = 0;
  for (std::size_t s = 0; s < kShards; ++s) {
    shard_sum += svg::obs::index_shard_metrics(s).size.value();
    shard_inserts += svg::obs::index_shard_metrics(s).inserts.value();
  }
  EXPECT_EQ(shard_sum, static_cast<std::int64_t>(idx.size()));
  EXPECT_GE(shard_inserts, 120u);
}

}  // namespace
