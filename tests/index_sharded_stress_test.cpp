// Concurrency stress for the sharded index: inserters, batch inserters,
// queriers, snapshotters, and erasers running simultaneously. The
// assertions are deliberately weak (no torn reads, handles round-trip,
// final accounting adds up) — the real check is running this binary under
// ThreadSanitizer (cmake -DSVG_SANITIZE=thread), where any lock-discipline
// mistake in the shard map is a hard failure.

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "index/sharded_fov_index.hpp"
#include "util/rng.hpp"

namespace {

using namespace svg::index;
using svg::core::RepresentativeFov;
using svg::core::TimestampMs;

RepresentativeFov make_rep(std::uint64_t vid, std::uint32_t seg,
                           svg::util::Xoshiro256& rng) {
  RepresentativeFov r;
  r.video_id = vid;
  r.segment_id = seg;
  r.fov.p = {39.8 + rng.uniform() * 0.2, 116.3 + rng.uniform() * 0.2};
  r.fov.theta_deg = rng.uniform() * 360.0;
  r.t_start = static_cast<TimestampMs>(rng.uniform() * 1e6);
  r.t_end = r.t_start + 10'000;
  return r;
}

TEST(ShardedFovIndexStressTest, ConcurrentInsertQueryEraseSnapshot) {
  ShardedFovIndex idx({.shards = 4, .insert_chunk = 8});

  constexpr int kInserters = 3;
  constexpr int kQueriers = 3;
  constexpr int kErasers = 2;
  constexpr int kOpsPerInserter = 400;

  std::mutex handles_mu;
  std::vector<FovHandle> handles;  // erasable pool, fed by inserters
  std::atomic<std::uint64_t> inserted{0}, erased{0};
  std::atomic<bool> writers_done{false};
  std::vector<std::thread> threads;

  for (int t = 0; t < kInserters; ++t) {
    threads.emplace_back([&, t] {
      svg::util::Xoshiro256 rng(100 + static_cast<std::uint64_t>(t));
      const auto base = static_cast<std::uint64_t>(t) * 1'000'000;
      for (int i = 0; i < kOpsPerInserter; ++i) {
        if (i % 5 == 0) {
          // Batch path: one provider's upload of 16 segments.
          std::vector<RepresentativeFov> burst;
          for (std::uint32_t s = 0; s < 16; ++s) {
            burst.push_back(
                make_rep(base + static_cast<std::uint64_t>(i), s, rng));
          }
          idx.insert_batch(burst);
          inserted.fetch_add(burst.size(), std::memory_order_relaxed);
        } else {
          const auto h = idx.insert(
              make_rep(base + static_cast<std::uint64_t>(i), 0, rng));
          inserted.fetch_add(1, std::memory_order_relaxed);
          std::lock_guard lock(handles_mu);
          handles.push_back(h);
        }
      }
    });
  }
  for (int t = 0; t < kErasers; ++t) {
    threads.emplace_back([&] {
      svg::util::Xoshiro256 rng(7);
      while (true) {
        FovHandle h = 0;
        bool have = false;
        {
          std::lock_guard lock(handles_mu);
          if (!handles.empty()) {
            h = handles.back();
            handles.pop_back();
            have = true;
          }
        }
        if (have) {
          ASSERT_TRUE(idx.erase(h));  // only ever handed out once
          erased.fetch_add(1, std::memory_order_relaxed);
        } else if (writers_done.load(std::memory_order_acquire)) {
          break;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (int t = 0; t < kQueriers; ++t) {
    threads.emplace_back([&, t] {
      svg::util::Xoshiro256 rng(200 + static_cast<std::uint64_t>(t));
      while (!writers_done.load(std::memory_order_acquire)) {
        const double lng = 116.3 + rng.uniform() * 0.2;
        const double lat = 39.8 + rng.uniform() * 0.2;
        const GeoTimeRange q{lng - 0.05, lng + 0.05, lat - 0.05, lat + 0.05,
                             0, 2'000'000};
        // The inserted counter is bumped after the index write, so a
        // concurrent reader can observe up to one in-flight burst per
        // inserter beyond the counter.
        constexpr std::uint64_t kCounterLag = kInserters * 16;
        std::size_t hits = 0;
        idx.query(q, [&](const RepresentativeFov&) { ++hits; });
        EXPECT_LE(hits,
                  inserted.load(std::memory_order_relaxed) + kCounterLag);
        if (rng.chance(0.05)) {
          const auto snap = idx.snapshot();
          EXPECT_LE(snap.size(),
                    inserted.load(std::memory_order_relaxed) + kCounterLag);
        }
        (void)idx.size();
      }
    });
  }

  // Joining in construction order is fine: inserters exit on their own,
  // then the flag releases erasers (who first drain the pool) and queriers.
  for (int t = 0; t < kInserters; ++t) threads[static_cast<std::size_t>(t)].join();
  writers_done.store(true, std::memory_order_release);
  for (std::size_t t = kInserters; t < threads.size(); ++t) threads[t].join();

  EXPECT_EQ(idx.size(), inserted.load() - erased.load());
  idx.check_invariants();
}

}  // namespace
