#include "index/tiered_fov_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "index/fov_index.hpp"
#include "obs/families.hpp"
#include "util/rng.hpp"

namespace {

using namespace svg::index;
using svg::core::RepresentativeFov;
using svg::core::TimestampMs;

RepresentativeFov random_rep(svg::util::Xoshiro256& rng) {
  RepresentativeFov r;
  r.video_id = 1 + rng.bounded(64);
  r.segment_id = static_cast<std::uint32_t>(rng.bounded(1'000'000));
  r.fov.p = {39.8 + rng.uniform() * 0.2, 116.3 + rng.uniform() * 0.2};
  r.fov.theta_deg = rng.uniform() * 360.0;
  r.t_start = static_cast<TimestampMs>(rng.uniform() * 1e6);
  r.t_end = r.t_start + 1'000 + static_cast<TimestampMs>(rng.uniform() * 1e5);
  return r;
}

GeoTimeRange random_range(svg::util::Xoshiro256& rng) {
  const double lng = 116.3 + rng.uniform() * 0.2;
  const double lat = 39.8 + rng.uniform() * 0.2;
  const double half = rng.chance(0.5) ? 0.01 : 0.08;
  const auto t0 = static_cast<TimestampMs>(rng.uniform() * 1e6);
  return {lng - half, lng + half, lat - half, lat + half, t0, t0 + 200'000};
}

/// Order-insensitive identity of a result set.
std::vector<std::pair<std::uint64_t, std::uint32_t>> keys(
    const std::vector<RepresentativeFov>& v) {
  std::vector<std::pair<std::uint64_t, std::uint32_t>> out;
  out.reserve(v.size());
  for (const auto& r : v) out.emplace_back(r.video_id, r.segment_id);
  std::sort(out.begin(), out.end());
  return out;
}

// The core guarantee: for any randomized insert/erase/query sequence the
// tiered index — memtable, in-flight seals, and STR-packed runs included —
// is indistinguishable (as a set) from one plain FovIndex. The tiny
// memtable forces many seals mid-sequence.
TEST(TieredFovIndexTest, EquivalentToPlainIndexUnderRandomOps) {
  svg::util::Xoshiro256 rng(1234);
  FovIndex plain;
  TieredFovIndex tiered({.memtable_capacity = 64});
  std::vector<std::pair<FovHandle, FovHandle>> live;  // (plain, tiered)

  for (int step = 0; step < 3'000; ++step) {
    const auto roll = rng.bounded(100);
    if (roll < 55 || live.empty()) {
      const auto rep = random_rep(rng);
      live.emplace_back(plain.insert(rep), tiered.insert(rep));
    } else if (roll < 75) {
      const auto pick = rng.bounded(live.size());
      const auto [ph, th] = live[pick];
      EXPECT_EQ(plain.erase(ph), tiered.erase(th));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      const auto q = random_range(rng);
      EXPECT_EQ(keys(plain.query_collect(q)), keys(tiered.query_collect(q)));
    }
    ASSERT_EQ(plain.size(), tiered.size());
  }
  EXPECT_EQ(keys(plain.snapshot()), keys(tiered.snapshot()));
  tiered.check_invariants();
  EXPECT_GT(tiered.run_stats().seals, 0u);
}

// Compaction must preserve the indexed set exactly: merge everything down
// to one run and re-compare against the plain index, tombstones included.
TEST(TieredFovIndexTest, CompactionPreservesTheIndexedSet) {
  svg::util::Xoshiro256 rng(4321);
  FovIndex plain;
  TieredFovIndex tiered({.memtable_capacity = 32});
  std::vector<std::pair<FovHandle, FovHandle>> live;

  for (int i = 0; i < 1'000; ++i) {
    const auto rep = random_rep(rng);
    live.emplace_back(plain.insert(rep), tiered.insert(rep));
  }
  // Tombstone a third of them.
  for (int i = 0; i < 300; ++i) {
    const auto pick = rng.bounded(live.size());
    const auto [ph, th] = live[pick];
    EXPECT_EQ(plain.erase(ph), tiered.erase(th));
    live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
  }

  const auto before = tiered.run_stats();
  ASSERT_GT(before.runs.size(), 1u);
  EXPECT_TRUE(tiered.seal_now());
  std::size_t merged = 0;
  while (tiered.compact_now(/*full=*/true) > 0) ++merged;
  EXPECT_GT(merged, 0u);

  const auto after = tiered.run_stats();
  EXPECT_EQ(after.runs.size(), 1u);
  // Compaction physically dropped the tombstones: the surviving run holds
  // exactly the live rows.
  EXPECT_EQ(after.runs[0].rows, tiered.size());
  EXPECT_EQ(keys(plain.snapshot()), keys(tiered.snapshot()));
  for (int i = 0; i < 30; ++i) {
    const auto q = random_range(rng);
    EXPECT_EQ(keys(plain.query_collect(q)), keys(tiered.query_collect(q)));
  }
  tiered.check_invariants();
}

TEST(TieredFovIndexTest, HandlesRoundTripThroughErase) {
  svg::util::Xoshiro256 rng(99);
  TieredFovIndex idx({.memtable_capacity = 64});
  std::vector<FovHandle> handles;
  for (int i = 0; i < 500; ++i) handles.push_back(idx.insert(random_rep(rng)));
  EXPECT_EQ(idx.size(), 500u);
  for (const auto h : handles) EXPECT_TRUE(idx.erase(h));
  EXPECT_EQ(idx.size(), 0u);
  // Stale handles must be rejected, not resolved to some other entry.
  for (const auto h : handles) EXPECT_FALSE(idx.erase(h));
  idx.check_invariants();
}

// Sealing is purely size-triggered, so a batch insert must produce exactly
// the same tier structure (run boundaries AND contents) as the same
// sequence of individual inserts — the property WAL replay relies on.
TEST(TieredFovIndexTest, InsertBatchMatchesIndividualInserts) {
  svg::util::Xoshiro256 rng(7);
  std::vector<RepresentativeFov> reps;
  for (int i = 0; i < 300; ++i) reps.push_back(random_rep(rng));

  TieredFovIndex batched({.memtable_capacity = 64});
  batched.insert_batch(reps);
  TieredFovIndex individual({.memtable_capacity = 64});
  for (const auto& r : reps) individual.insert(r);

  EXPECT_EQ(batched.size(), reps.size());
  EXPECT_EQ(keys(batched.snapshot()), keys(individual.snapshot()));
  const auto bs = batched.run_stats();
  const auto is = individual.run_stats();
  ASSERT_EQ(bs.runs.size(), is.runs.size());
  for (std::size_t i = 0; i < bs.runs.size(); ++i) {
    EXPECT_EQ(bs.runs[i].rows, is.runs[i].rows);
    EXPECT_EQ(bs.runs[i].ts_min, is.runs[i].ts_min);
    EXPECT_EQ(bs.runs[i].ts_max, is.runs[i].ts_max);
  }
  EXPECT_EQ(bs.memtable_rows, is.memtable_rows);
  batched.check_invariants();
}

// A query whose time window misses a run's [ts_min, ts_max] must skip it
// without touching a node — visible through svg_index_run_time_pruned.
TEST(TieredFovIndexTest, TightTimeWindowsSkipWholeRuns) {
  auto& rm = svg::obs::index_run_metrics();
  TieredFovIndex idx({.memtable_capacity = 100});
  // Two disjoint time epochs, one run each.
  RepresentativeFov r;
  r.fov.p = {39.9, 116.4};
  for (int i = 0; i < 100; ++i) {
    r.segment_id = static_cast<std::uint32_t>(i);
    r.t_start = 1'000 + i;
    r.t_end = r.t_start + 10;
    idx.insert(r);
  }
  for (int i = 0; i < 100; ++i) {
    r.segment_id = static_cast<std::uint32_t>(1000 + i);
    r.t_start = 5'000'000 + i;
    r.t_end = r.t_start + 10;
    idx.insert(r);
  }
  ASSERT_EQ(idx.run_stats().runs.size(), 2u);

  const auto pruned0 = rm.time_pruned.value();
  const auto scans0 = rm.scans.value();
  // Window covering only the first epoch: one run scanned, one pruned.
  const auto hits = idx.query_collect(
      {116.0, 117.0, 39.0, 40.0, 0, 10'000});
  EXPECT_EQ(hits.size(), 100u);
  EXPECT_EQ(rm.time_pruned.value() - pruned0, 1u);
  EXPECT_EQ(rm.scans.value() - scans0, 1u);

  // Window between the epochs: both runs pruned, nothing scanned.
  const auto none = idx.query_collect(
      {116.0, 117.0, 39.0, 40.0, 100'000, 200'000});
  EXPECT_TRUE(none.empty());
  EXPECT_EQ(rm.time_pruned.value() - pruned0, 3u);
  EXPECT_EQ(rm.scans.value() - scans0, 1u);
}

TEST(TieredFovIndexTest, TemplateAndFunctionVisitorsAgree) {
  svg::util::Xoshiro256 rng(21);
  TieredFovIndex idx({.memtable_capacity = 50});
  for (int i = 0; i < 200; ++i) idx.insert(random_rep(rng));
  const auto q = random_range(rng);

  std::vector<RepresentativeFov> via_template;
  idx.query(q, [&](const RepresentativeFov& r) { via_template.push_back(r); });
  std::vector<RepresentativeFov> via_function;
  const FovIndex::Visitor visit = [&](const RepresentativeFov& r) {
    via_function.push_back(r);
  };
  idx.query(q, visit);
  EXPECT_EQ(keys(via_template), keys(via_function));
}

// Aggregated svg_index_* metrics move for tiered operations, and the
// run-lifecycle family tracks seals and run rows.
TEST(TieredFovIndexTest, FeedsAggregatedAndRunMetrics) {
  auto& agg = svg::obs::index_metrics();
  auto& rm = svg::obs::index_run_metrics();
  const auto inserts0 = agg.inserts.value();
  const auto queries0 = agg.queries.value();
  const auto erases0 = agg.erases.value();
  const auto seals0 = rm.seals.value();
  const auto sealed_rows0 = rm.sealed_rows.value();

  svg::util::Xoshiro256 rng(77);
  TieredFovIndex idx({.memtable_capacity = 50});
  std::vector<FovHandle> handles;
  for (int i = 0; i < 120; ++i) handles.push_back(idx.insert(random_rep(rng)));
  (void)idx.query_collect(random_range(rng));
  EXPECT_TRUE(idx.erase(handles.front()));

  EXPECT_EQ(agg.inserts.value() - inserts0, 120u);
  EXPECT_GE(agg.queries.value() - queries0, 1u);
  EXPECT_EQ(agg.erases.value() - erases0, 1u);
  // 120 inserts over a 50-row memtable = 2 seals of 50 rows each.
  EXPECT_EQ(rm.seals.value() - seals0, 2u);
  EXPECT_EQ(rm.sealed_rows.value() - sealed_rows0, 100u);
  EXPECT_EQ(rm.count.value(), 2);
  EXPECT_EQ(idx.run_stats().memtable_rows, 20u);
}

// The run-level time tags must be exact bounds of the rows they summarize
// (check_invariants verifies rows ⊆ bounds; this pins tightness too).
TEST(TieredFovIndexTest, RunTimeTagsAreTight) {
  svg::util::Xoshiro256 rng(13);
  TieredFovIndex idx({.memtable_capacity = 128});
  std::vector<RepresentativeFov> reps;
  for (int i = 0; i < 512; ++i) {
    reps.push_back(random_rep(rng));
    idx.insert(reps.back());
  }
  const auto stats = idx.run_stats();
  ASSERT_EQ(stats.runs.size(), 4u);
  for (std::size_t r = 0; r < stats.runs.size(); ++r) {
    TimestampMs lo = reps[r * 128].t_start, hi = reps[r * 128].t_end;
    for (std::size_t i = r * 128; i < (r + 1) * 128; ++i) {
      lo = std::min(lo, reps[i].t_start);
      hi = std::max(hi, reps[i].t_end);
    }
    EXPECT_EQ(stats.runs[r].ts_min, lo);
    EXPECT_EQ(stats.runs[r].ts_max, hi);
  }
}

}  // namespace
