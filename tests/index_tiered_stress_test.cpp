// Concurrency suite for TieredFovIndex: writers sealing runs mid-query,
// erasers racing scans, and a fast background compactor merging under
// everything. Run under SVG_SANITIZE=thread in CI — the interesting
// property is data-race freedom across the memtable swap, the sealing
// buffer hand-off, and the run-list swap; the functional property is that
// no query ever observes a torn set (every inserted row is visible exactly
// once or not yet visible, never twice).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "index/tiered_fov_index.hpp"

namespace {

using namespace svg::index;
using svg::core::RepresentativeFov;
using svg::core::TimestampMs;

RepresentativeFov make_rep(std::uint64_t video, std::uint32_t seg) {
  RepresentativeFov r;
  r.video_id = video;
  r.segment_id = seg;
  // All rows in one tight cell so every query range covers everything —
  // maximum overlap between scans and structural churn.
  r.fov.p = {39.9 + static_cast<double>(seg % 97) * 1e-4,
             116.4 + static_cast<double>(seg % 89) * 1e-4};
  r.fov.theta_deg = static_cast<double>(seg % 360);
  r.t_start = static_cast<TimestampMs>(1'000 * seg);
  r.t_end = r.t_start + 5'000;
  return r;
}

// Writers seal runs while readers query: every query must see a count
// consistent with a prefix-per-writer of the insert streams (reads under
// the shared lock are atomic w.r.t. the memtable→sealing→run hand-offs,
// so no row may be seen twice or dropped mid-seal).
TEST(TieredStressTest, ConcurrentWritersSealingMidQuery) {
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 2'000;
  // Tiny memtable: each writer triggers many seals, so queries constantly
  // overlap a seal in flight. Background compactor on a 1 ms cadence keeps
  // the run list churning underneath them.
  TieredFovIndex idx({.memtable_capacity = 64,
                      .compact_fanin = 3,
                      .compact_interval_ms = 1});
  const GeoTimeRange everything{116.0, 117.0, 39.0, 40.0, 0,
                                10'000'000'000};

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  std::vector<std::thread> readers;
  readers.reserve(3);
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        // Per-(writer, seq) visibility bitmap for this scan.
        std::vector<std::uint8_t> seen(kWriters * kPerWriter, 0);
        bool dup = false;
        idx.query(everything, [&](const RepresentativeFov& rep) {
          const auto slot = (rep.video_id - 1) * kPerWriter + rep.segment_id;
          dup |= seen[slot]++ != 0;
        });
        if (dup) torn.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        idx.insert(make_rep(static_cast<std::uint64_t>(w + 1),
                            static_cast<std::uint32_t>(i)));
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(idx.size(),
            static_cast<std::size_t>(kWriters) * kPerWriter);
  idx.check_invariants();
  // Everything is visible after the writers drain.
  std::size_t total = 0;
  idx.query(everything, [&](const RepresentativeFov&) { ++total; });
  EXPECT_EQ(total, static_cast<std::size_t>(kWriters) * kPerWriter);
}

// Erasers and a manual full compaction race the readers: tombstoned rows
// must never resurrect (queries check the bitmap even for rows a merge
// copied before the erase landed).
TEST(TieredStressTest, ErasureNeverResurrectsUnderCompaction) {
  TieredFovIndex idx({.memtable_capacity = 64, .compact_interval_ms = 1});
  constexpr std::uint32_t kRows = 4'000;
  std::vector<FovHandle> handles;
  handles.reserve(kRows);
  for (std::uint32_t i = 0; i < kRows; ++i) {
    handles.push_back(idx.insert(make_rep(1, i)));
  }
  const GeoTimeRange everything{116.0, 117.0, 39.0, 40.0, 0,
                                10'000'000'000};

  // Erase even segments while readers scan and the compactor merges.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> resurrected{0};
  std::vector<std::uint8_t> erased(kRows, 0);  // written before the erase
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      idx.query(everything, [&](const RepresentativeFov& rep) {
        // A row flagged BEFORE its erase may still be visible (the erase
        // hasn't landed); one erased before the scan started must not be.
        (void)rep;
      });
    }
  });
  for (std::uint32_t i = 0; i < kRows; i += 2) {
    erased[i] = 1;
    EXPECT_TRUE(idx.erase(handles[i]));
    if (i % 512 == 0) (void)idx.compact_now(/*full=*/true);
  }
  (void)idx.compact_now(/*full=*/true);
  stop.store(true, std::memory_order_release);
  reader.join();

  // After the dust settles: exactly the odd rows remain, none erased.
  std::vector<std::uint8_t> seen(kRows, 0);
  idx.query(everything, [&](const RepresentativeFov& rep) {
    seen[rep.segment_id]++;
    if (erased[rep.segment_id] != 0) {
      resurrected.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(resurrected.load(), 0u);
  std::size_t visible = 0;
  for (std::uint32_t i = 0; i < kRows; ++i) {
    EXPECT_LE(seen[i], 1u);
    visible += seen[i];
  }
  EXPECT_EQ(visible, kRows / 2);
  EXPECT_EQ(idx.size(), kRows / 2);
  idx.check_invariants();
}

// insert_batch bursts against queries and the background compactor — the
// ingest path CloudServer actually drives.
TEST(TieredStressTest, BatchIngestUnderQueryLoad) {
  TieredFovIndex idx({.memtable_capacity = 128,
                      .compact_fanin = 2,
                      .compact_interval_ms = 1});
  const GeoTimeRange everything{116.0, 117.0, 39.0, 40.0, 0,
                                10'000'000'000};
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      std::size_t n = 0;
      idx.query(everything, [&](const RepresentativeFov&) { ++n; });
    }
  });
  constexpr int kBatches = 40;
  constexpr std::uint32_t kBatchSize = 200;
  std::vector<std::thread> writers;
  writers.reserve(2);
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&, w] {
      for (int b = 0; b < kBatches; ++b) {
        std::vector<RepresentativeFov> batch;
        batch.reserve(kBatchSize);
        for (std::uint32_t i = 0; i < kBatchSize; ++i) {
          batch.push_back(make_rep(
              static_cast<std::uint64_t>(w + 1),
              static_cast<std::uint32_t>(b) * kBatchSize + i));
        }
        idx.insert_batch(batch);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(idx.size(), 2u * kBatches * kBatchSize);
  idx.check_invariants();
}

}  // namespace
