// Full-system integration: a simulated crowd records around a city, clients
// segment + upload descriptors, the server indexes them, and queries are
// validated against the geometric ground-truth oracle. This is the paper's
// whole workflow in one test binary.

#include <gtest/gtest.h>

#include <map>

#include "net/client.hpp"
#include "net/server.hpp"
#include "retrieval/metrics.hpp"
#include "sim/crowd.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace svg;
using core::CameraIntrinsics;
using geo::LatLng;

const CameraIntrinsics kCam{30.0, 100.0};

struct Corpus {
  sim::CityModel city;
  std::vector<sim::ProviderSession> sessions;
  std::vector<core::RepresentativeFov> all_reps;
  retrieval::VisibilityOracle oracle{kCam};
};

Corpus build_corpus(std::uint64_t seed, std::uint32_t providers = 40) {
  Corpus c;
  c.city.extent_m = 1500.0;
  sim::CrowdConfig cfg;
  cfg.providers = providers;
  cfg.min_sessions = 1;
  cfg.max_sessions = 2;
  cfg.min_duration_s = 20.0;
  cfg.max_duration_s = 60.0;
  cfg.fps = 10.0;
  cfg.window_length_ms = 3'600'000;  // one hour
  util::Xoshiro256 rng(seed);
  c.sessions = sim::generate_crowd(c.city, cfg, rng);
  return c;
}

/// Push every session through the real client pipeline into the server.
void ingest_all(Corpus& corpus, net::CloudServer& server,
                net::Link* link = nullptr) {
  const core::SimilarityModel model(kCam);
  for (const auto& session : corpus.sessions) {
    net::MobileClient client(session.video_id, model, {0.5});
    auto msg = net::capture_session(client, session.records);
    for (const auto& rep : msg.segments) corpus.all_reps.push_back(rep);
    if (link) {
      const auto bytes = client.upload(msg, *link);
      ASSERT_TRUE(server.handle_upload(bytes));
    } else {
      server.ingest(msg);
    }
    corpus.oracle.add_video(session.video_id, session.ground_truth);
  }
}

retrieval::RetrievalConfig retrieval_config() {
  retrieval::RetrievalConfig cfg;
  cfg.camera = kCam;
  cfg.orientation_slack_deg = 10.0;
  cfg.top_n = 50;
  return cfg;
}

TEST(IntegrationTest, CrowdIngestThenQueriesAreAccurate) {
  Corpus corpus = build_corpus(1);
  net::CloudServer server({}, retrieval_config());
  net::Link link;
  ingest_all(corpus, server, &link);
  ASSERT_GT(server.indexed_segments(), 0u);
  ASSERT_EQ(server.indexed_segments(), corpus.all_reps.size());

  // Issue queries centred on places cameras actually looked at, so the
  // recall base is non-trivial.
  util::Xoshiro256 rng(2);
  std::vector<retrieval::QualityReport> reports;
  int with_relevant = 0;
  for (int q = 0; q < 60 && with_relevant < 20; ++q) {
    const auto& session =
        corpus.sessions[rng.bounded(corpus.sessions.size())];
    const auto& frame =
        session.ground_truth[rng.bounded(session.ground_truth.size())];
    // A point ~40 m ahead of a real camera at a real recording time.
    retrieval::Query query;
    query.center = geo::offset_m(
        frame.fov.p,
        40.0 * std::sin(geo::deg_to_rad(frame.fov.theta_deg)),
        40.0 * std::cos(geo::deg_to_rad(frame.fov.theta_deg)));
    query.radius_m = 30.0;
    query.t_start = frame.t - 10'000;
    query.t_end = frame.t + 10'000;

    const auto results = server.search(query);
    const auto report = retrieval::evaluate_results(
        results, corpus.all_reps, corpus.oracle, query);
    if (report.relevant_total == 0) continue;
    ++with_relevant;
    reports.push_back(report);
  }
  ASSERT_GE(with_relevant, 10);
  const auto merged = retrieval::merge_reports(reports);
  // Content-free retrieval should find most truly-covering segments and
  // not drown them in noise (paper: "comparable search accuracy").
  EXPECT_GT(merged.recall, 0.7) << "recall too low";
  EXPECT_GT(merged.precision, 0.5) << "precision too low";
}

TEST(IntegrationTest, WireAndInProcessPathsAgree) {
  Corpus corpus_a = build_corpus(3, 10);
  Corpus corpus_b = build_corpus(3, 10);

  net::CloudServer wire_server({}, retrieval_config());
  net::CloudServer local_server({}, retrieval_config());
  net::Link link;
  ingest_all(corpus_a, wire_server, &link);
  ingest_all(corpus_b, local_server, nullptr);
  ASSERT_EQ(wire_server.indexed_segments(), local_server.indexed_segments());

  util::Xoshiro256 rng(4);
  for (int i = 0; i < 10; ++i) {
    retrieval::Query q;
    q.center = corpus_a.city.random_point(rng);
    q.radius_m = 50.0;
    q.t_start = 1'400'000'000'000;
    q.t_end = q.t_start + 3'600'000;
    const auto a = wire_server.search(q);
    const auto b = local_server.search(q);
    ASSERT_EQ(a.size(), b.size()) << i;
    for (std::size_t j = 0; j < a.size(); ++j) {
      ASSERT_EQ(a[j].rep.video_id, b[j].rep.video_id);
      ASSERT_EQ(a[j].rep.segment_id, b[j].rep.segment_id);
      // Positions went through 1e-7° quantization on the wire.
      ASSERT_NEAR(a[j].distance_m, b[j].distance_m, 0.05);
    }
  }
}

TEST(IntegrationTest, ConcurrentQueriersGetConsistentAnswers) {
  Corpus corpus = build_corpus(5, 20);
  net::CloudServer server({}, retrieval_config());
  ingest_all(corpus, server);

  // One reference query answered single-threaded.
  retrieval::Query q;
  q.center = corpus.city.center;
  q.radius_m = 100.0;
  q.t_start = 1'400'000'000'000;
  q.t_end = q.t_start + 3'600'000;
  const auto expected = server.search(q);

  util::ThreadPool pool(8);
  std::vector<std::future<std::size_t>> futs;
  for (int i = 0; i < 64; ++i) {
    futs.push_back(pool.submit([&] { return server.search(q).size(); }));
  }
  for (auto& f : futs) {
    ASSERT_EQ(f.get(), expected.size());
  }
}

TEST(IntegrationTest, SegmentationCompressesUploads) {
  Corpus corpus = build_corpus(6, 20);
  const core::SimilarityModel model(kCam);
  std::size_t frames = 0, segments = 0;
  for (const auto& session : corpus.sessions) {
    net::MobileClient client(session.video_id, model, {0.5});
    const auto msg = net::capture_session(client, session.records);
    frames += session.records.size();
    segments += msg.segments.size();
  }
  ASSERT_GT(segments, 0u);
  // Averaged over movement types, many frames collapse per segment.
  EXPECT_LT(static_cast<double>(segments),
            0.2 * static_cast<double>(frames));
}

TEST(IntegrationTest, NoisySensorsStillRetrieveStaticObserver) {
  // A bystander with realistic sensor noise films a fixed spot; a query at
  // that spot must find them.
  const core::SimilarityModel model(kCam);
  const LatLng centre{39.9042, 116.4074};
  sim::RotationTrajectory traj(geo::offset_m(centre, 0, -40), 0.0, 0.0,
                               30.0);
  sim::SensorNoiseConfig noise;  // default noisy profile
  sim::SensorSampler sampler(noise, {30.0, 1'000'000});
  util::Xoshiro256 rng(7);

  net::CloudServer server({}, retrieval_config());
  net::MobileClient client(11, model, {0.5});
  server.ingest(net::capture_session(client, sampler.sample(traj, rng)));

  retrieval::Query q;
  q.center = centre;
  q.radius_m = 30.0;
  q.t_start = 1'000'000;
  q.t_end = 1'000'000 + 30'000;
  const auto results = server.search(q);
  ASSERT_FALSE(results.empty());
  EXPECT_EQ(results[0].rep.video_id, 11u);
}

}  // namespace
