// End-to-end two-phase flow: record → descriptor upload → query → ranked
// results → clip fetch from the provider's device — the complete user
// story of the paper, including byte accounting at each phase.

#include <gtest/gtest.h>

#include <map>

#include "media/video_store.hpp"
#include "net/client.hpp"
#include "net/clip_fetch.hpp"
#include "net/server.hpp"
#include "sim/crowd.hpp"

namespace {

using namespace svg;
using geo::LatLng;

const LatLng kCenter{39.9042, 116.4074};
const core::CameraIntrinsics kCam{30.0, 100.0};

TEST(TwoPhaseIntegrationTest, QueryThenFetchDeliversTheRightClip) {
  const core::SimilarityModel model(kCam);

  // Provider: static bystander filming the spot for 60 s.
  sim::RotationTrajectory traj(geo::offset_m(kCenter, 0, -40), 0.0, 0.0,
                               60.0);
  sim::SensorSampler sampler(sim::SensorNoiseConfig::ideal(),
                             {30.0, 1'000'000});
  util::Xoshiro256 rng(1);
  const auto records = sampler.sample(traj, rng);

  // Phase 1: descriptors up.
  retrieval::RetrievalConfig rcfg;
  rcfg.camera = kCam;
  rcfg.orientation_slack_deg = 5.0;
  rcfg.top_n = 5;
  net::CloudServer server({}, rcfg);
  net::MobileClient client(77, model, {0.5});
  net::Link link;
  const auto upload =
      client.upload(net::capture_session(client, records), link);
  ASSERT_TRUE(server.handle_upload(upload));
  const auto phase1_bytes = link.stats().bytes_up;

  // The provider's device keeps the actual video.
  media::VideoStore store;
  store.add(media::RecordedVideo(77, records.front().t, records.back().t));
  net::FetchCoordinator coordinator;
  coordinator.register_provider(77, &store, &link);

  // Phase 2: query, then fetch the matched clip.
  retrieval::Query q;
  q.center = kCenter;
  q.radius_m = 30.0;
  q.t_start = 1'020'000;
  q.t_end = 1'030'000;
  const auto results = server.search(q);
  ASSERT_FALSE(results.empty());

  // Fetch clamped to the query window: the static camera's whole 60 s
  // recording is ONE segment, but the inquirer only needs the 10 s that
  // matched.
  const auto clips = coordinator.fetch_all(results, 1, q.t_start, q.t_end);
  ASSERT_EQ(clips.size(), 1u);
  const auto& clip = clips[0];
  EXPECT_EQ(clip.video_id, 77u);
  // The clip covers segment ∩ window (GOP-aligned outward).
  EXPECT_LE(clip.t_start, q.t_start);
  EXPECT_GE(clip.t_end, q.t_end);
  // Payload bytes are the provider's actual stored content.
  EXPECT_FALSE(clip.payload.empty());
  const auto direct = store.extract_clip(
      77, std::max(results[0].rep.t_start, q.t_start),
      std::min(results[0].rep.t_end, q.t_end));
  ASSERT_TRUE(direct.has_value());
  EXPECT_EQ(clip.payload, direct->payload);

  // Byte accounting: phase 1 is tiny; phase 2 carries the clip; nothing
  // else ever moved.
  const auto& fs = coordinator.stats();
  EXPECT_LT(phase1_bytes, 200u);
  EXPECT_EQ(fs.clips_fetched, 1u);
  EXPECT_GT(fs.clip_bytes, 0u);
  EXPECT_LT(fs.clip_bytes, store.stored_bytes());
}

TEST(TwoPhaseIntegrationTest, CrowdScaleFetchBudget) {
  const core::SimilarityModel model(kCam);
  sim::CityModel city;
  city.center = kCenter;
  city.extent_m = 800.0;
  sim::CrowdConfig cfg;
  cfg.providers = 15;
  cfg.min_duration_s = 20.0;
  cfg.max_duration_s = 40.0;
  cfg.fps = 10.0;
  cfg.window_length_ms = 600'000;
  util::Xoshiro256 rng(2);
  const auto sessions = sim::generate_crowd(city, cfg, rng);

  retrieval::RetrievalConfig rcfg;
  rcfg.camera = kCam;
  rcfg.orientation_slack_deg = 10.0;
  rcfg.top_n = 20;
  net::CloudServer server({}, rcfg);
  std::map<std::uint64_t, media::VideoStore> stores;
  std::map<std::uint64_t, net::Link> links;
  net::FetchCoordinator coordinator;
  for (const auto& s : sessions) {
    net::MobileClient client(s.video_id, model, {0.5});
    server.ingest(net::capture_session(client, s.records));
    stores[s.video_id].add(media::RecordedVideo(
        s.video_id, s.records.front().t, s.records.back().t));
    coordinator.register_provider(s.video_id, &stores[s.video_id],
                                  &links[s.video_id]);
  }

  // Query wherever a camera actually looked; fetch top 3 clips.
  const auto& s0 = sessions.front();
  const auto& frame = s0.ground_truth[s0.ground_truth.size() / 2];
  retrieval::Query q;
  q.center = geo::offset_m(
      frame.fov.p, 30.0 * std::sin(geo::deg_to_rad(frame.fov.theta_deg)),
      30.0 * std::cos(geo::deg_to_rad(frame.fov.theta_deg)));
  q.radius_m = 30.0;
  q.t_start = frame.t - 5'000;
  q.t_end = frame.t + 5'000;
  const auto results = server.search(q);
  ASSERT_FALSE(results.empty());
  const auto clips = coordinator.fetch_all(results, 3);
  EXPECT_EQ(clips.size(),
            std::min<std::size_t>(3, results.size()) -
                coordinator.stats().clips_missing);
  // Every fetched clip is a strict subset of its provider's storage.
  std::uint64_t total_store = 0;
  for (const auto& [vid, st] : stores) total_store += st.stored_bytes();
  EXPECT_LT(coordinator.stats().clip_bytes, total_store / 4);
}

}  // namespace
