#include "media/video_store.hpp"

#include <gtest/gtest.h>

namespace {

using namespace svg::media;

RecordedVideo one_minute(std::uint64_t id = 1,
                         svg::core::TimestampMs start = 1'000'000) {
  return RecordedVideo(id, start, start + 60'000);
}

TEST(EncodingProfileTest, GopBytesFollowBitrate) {
  EncodingProfile p;  // 2 Mbps, 2 s GOP
  EXPECT_EQ(p.bytes_per_gop(), 500'000u);
}

TEST(RecordedVideoTest, SizesFollowDuration) {
  const auto v = one_minute();
  EXPECT_DOUBLE_EQ(v.duration_s(), 60.0);
  EXPECT_EQ(v.gop_count(), 30u);  // 60 s / 2 s
  EXPECT_EQ(v.total_bytes(), 30u * 500'000u);  // 15 MB
}

TEST(RecordedVideoTest, PartialLastGopStoredWhole) {
  const RecordedVideo v(1, 0, 4'500);  // 4.5 s → 3 GOPs
  EXPECT_EQ(v.gop_count(), 3u);
}

TEST(RecordedVideoTest, ZeroLengthRecordingHasOneGop) {
  const RecordedVideo v(1, 1000, 1000);
  EXPECT_EQ(v.gop_count(), 1u);
}

TEST(RecordedVideoTest, GopOfClampsAndIndexes) {
  const auto v = one_minute();
  EXPECT_EQ(v.gop_of(999'000), 0u);        // before start
  EXPECT_EQ(v.gop_of(1'000'000), 0u);
  EXPECT_EQ(v.gop_of(1'001'999), 0u);
  EXPECT_EQ(v.gop_of(1'002'000), 1u);
  EXPECT_EQ(v.gop_of(1'059'999), 29u);
  EXPECT_EQ(v.gop_of(2'000'000), 29u);     // past end
}

TEST(RecordedVideoTest, InvalidConstructionThrows) {
  EXPECT_THROW(RecordedVideo(1, 100, 50), std::invalid_argument);
  EncodingProfile bad;
  bad.fps = 0.0;
  EXPECT_THROW(RecordedVideo(1, 0, 100, bad), std::invalid_argument);
}

TEST(VideoStoreTest, AddFindContains) {
  VideoStore store;
  EXPECT_FALSE(store.contains(1));
  store.add(one_minute(1));
  store.add(one_minute(2));
  EXPECT_TRUE(store.contains(1));
  EXPECT_EQ(store.size(), 2u);
  ASSERT_NE(store.find(2), nullptr);
  EXPECT_EQ(store.find(2)->id(), 2u);
  EXPECT_EQ(store.find(99), nullptr);
  EXPECT_EQ(store.stored_bytes(), 2u * 15'000'000u);
}

TEST(VideoStoreTest, ExtractClipAlignsToGops) {
  VideoStore store;
  store.add(one_minute());
  // Ask for [1:010.5, 1:013.2] — covers GOPs 5 and 6 (10–14 s).
  const auto clip = store.extract_clip(1, 1'010'500, 1'013'200);
  ASSERT_TRUE(clip.has_value());
  EXPECT_EQ(clip->t_start, 1'010'000);
  EXPECT_EQ(clip->t_end, 1'014'000);
  EXPECT_EQ(clip->size_bytes(), 2u * 500'000u);
}

TEST(VideoStoreTest, ClipClampsToRecordingExtent) {
  VideoStore store;
  store.add(one_minute());
  const auto clip = store.extract_clip(1, 0, 9'999'999'999);
  ASSERT_TRUE(clip.has_value());
  EXPECT_EQ(clip->t_start, 1'000'000);
  EXPECT_EQ(clip->t_end, 1'060'000);
  EXPECT_EQ(clip->size_bytes(), 15'000'000u);
}

TEST(VideoStoreTest, ClipOutsideRecordingIsNullopt) {
  VideoStore store;
  store.add(one_minute());
  EXPECT_FALSE(store.extract_clip(1, 0, 500'000).has_value());
  EXPECT_FALSE(store.extract_clip(1, 2'000'000, 3'000'000).has_value());
  EXPECT_FALSE(store.extract_clip(1, 1'020'000, 1'010'000).has_value());
  EXPECT_FALSE(store.extract_clip(42, 1'000'000, 1'010'000).has_value());
}

TEST(VideoStoreTest, PayloadIsDeterministicAndOffsetAddressed) {
  VideoStore store;
  store.add(one_minute());
  const auto a = store.extract_clip(1, 1'010'000, 1'011'000);
  const auto b = store.extract_clip(1, 1'010'000, 1'011'000);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->payload, b->payload);
  // A later clip has different content (different byte offsets).
  const auto c = store.extract_clip(1, 1'020'000, 1'021'000);
  ASSERT_TRUE(c.has_value());
  EXPECT_NE(a->payload, c->payload);
  // First byte of GOP 5 equals the generator at offset 5·gop_bytes.
  EXPECT_EQ(a->payload[0], payload_byte(1, 5u * 500'000u));
}

TEST(VideoStoreTest, DifferentVideosDifferentPayload) {
  VideoStore store;
  store.add(one_minute(1));
  store.add(one_minute(2));
  const auto a = store.extract_clip(1, 1'000'000, 1'001'000);
  const auto b = store.extract_clip(2, 1'000'000, 1'001'000);
  ASSERT_TRUE(a && b);
  EXPECT_NE(a->payload, b->payload);
}

TEST(VideoStoreTest, SegmentClipMuchSmallerThanFullVideo) {
  // The Section IV saving: a 6 s matched segment from a 60 s recording
  // moves ~1/10 of the bytes.
  VideoStore store;
  store.add(one_minute());
  const auto clip = store.extract_clip(1, 1'030'000, 1'036'000);
  ASSERT_TRUE(clip.has_value());
  const double ratio = static_cast<double>(clip->size_bytes()) /
                       static_cast<double>(store.find(1)->total_bytes());
  EXPECT_LT(ratio, 0.15);
  EXPECT_GT(ratio, 0.05);
}

}  // namespace
