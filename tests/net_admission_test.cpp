// Overload control (docs/ROBUSTNESS.md): the AdmissionController in front
// of CloudServer's ingest/query paths — per-client token buckets, bounded
// virtual admission queues with deadline-aware shedding, and the
// kRetryLater retry-after-ms wire hint the client's UploadQueue paces
// itself by. Every suite here starts with "Admission" so the sanitizer CI
// lanes (-R Admission...) pick them up.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "geo/geodesy.hpp"

#include "net/admission.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "net/upload_queue.hpp"
#include "net/wire.hpp"
#include "sim/crowd.hpp"
#include "store/crc32c.hpp"
#include "util/rng.hpp"

namespace {

using namespace svg::net;
using svg::core::RepresentativeFov;

const std::vector<RepresentativeFov>& all_reps() {
  static const auto reps = [] {
    svg::sim::CityModel city;
    svg::util::Xoshiro256 rng(23);
    return svg::sim::random_representative_fovs(64, city, 1'400'000'000'000,
                                                86'400'000, rng);
  }();
  return reps;
}

UploadMessage upload_of(std::uint64_t video_id, std::uint64_t upload_id) {
  UploadMessage msg;
  msg.upload_id = upload_id;
  msg.video_id = video_id;
  msg.segments = {all_reps()[(2 * video_id) % 64],
                  all_reps()[(2 * video_id + 1) % 64]};
  return msg;
}

/// Ingest-lane-only controller: rate-limit per client, no virtual queue.
AdmissionConfig bucket_only(double rate, double burst, SimClock* clock,
                            std::size_t buckets = 256) {
  AdmissionConfig cfg;
  cfg.enabled = true;
  cfg.per_client.rate_per_sec = rate;
  cfg.per_client.burst = burst;
  cfg.client_buckets = buckets;
  cfg.clock = clock;
  return cfg;
}

// --- token bucket edge cases ------------------------------------------------

TEST(AdmissionTokenBucketTest, BurstAvailableAfterIdle) {
  SimClock clock;
  AdmissionController ctl(bucket_only(10.0, 5.0, &clock));

  // A never-seen client starts with a full bucket: the whole burst admits.
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(ctl.admit_ingest(7).admitted) << "burst admit " << i;
  }
  const auto throttled = ctl.admit_ingest(7);
  EXPECT_FALSE(throttled.admitted);
  EXPECT_EQ(throttled.outcome, AdmissionOutcome::kThrottled);
  // Next token accrues in 1/rate seconds = 100 ms.
  EXPECT_NEAR(throttled.retry_after_ms, 100.0, 1e-9);

  // A long idle refills the bucket — but only to the burst cap, never
  // beyond: 10 seconds at 10/s would accrue 100 tokens, yet exactly 5
  // admit before the throttle returns.
  clock.advance(10'000.0);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(ctl.admit_ingest(7).admitted) << "post-idle admit " << i;
  }
  EXPECT_FALSE(ctl.admit_ingest(7).admitted);

  const auto s = ctl.stats();
  EXPECT_EQ(s.ingest.admitted, 10U);
  EXPECT_EQ(s.ingest.throttled, 2U);
}

TEST(AdmissionTokenBucketTest, ZeroCapacityBucketAdmitsNothing) {
  SimClock clock;
  // burst == 0 is the shut-this-uploader-out knob: a bucket that can
  // never hold a whole token.
  AdmissionController ctl(bucket_only(10.0, 0.0, &clock));
  for (int i = 0; i < 3; ++i) {
    const auto d = ctl.admit_ingest(42);
    EXPECT_FALSE(d.admitted);
    EXPECT_EQ(d.outcome, AdmissionOutcome::kThrottled);
    EXPECT_GT(d.retry_after_ms, 0.0);  // still hints, so probes stay paced
    clock.advance(10'000.0);           // refill time changes nothing
  }
  EXPECT_EQ(ctl.stats().ingest.admitted, 0U);
}

TEST(AdmissionTokenBucketTest, StandingClockNeverRefills) {
  SimClock clock;  // never advanced: sim time stands still
  AdmissionController ctl(bucket_only(1000.0, 3.0, &clock));
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(ctl.admit_ingest(1).admitted);
  }
  // With time frozen no token ever accrues, no matter how many attempts.
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(ctl.admit_ingest(1).admitted);
  }
  EXPECT_EQ(ctl.stats().ingest.throttled, 50U);
}

TEST(AdmissionTokenBucketTest, DistinctClientsDistinctBudgets) {
  SimClock clock;
  AdmissionController ctl(bucket_only(10.0, 2.0, &clock, 256));
  EXPECT_TRUE(ctl.admit_ingest(1).admitted);
  EXPECT_TRUE(ctl.admit_ingest(1).admitted);
  EXPECT_FALSE(ctl.admit_ingest(1).admitted);  // client 1 exhausted
  EXPECT_TRUE(ctl.admit_ingest(2).admitted);   // client 2 unaffected
  EXPECT_TRUE(ctl.admit_ingest(2).admitted);
  EXPECT_FALSE(ctl.admit_ingest(2).admitted);
}

TEST(AdmissionTokenBucketTest, ConcurrentSameBucketIsExactAndClean) {
  // client_buckets = 1: every key hashes to the one bucket, so 4 threads
  // with different ids contend on the same token budget. With the clock
  // standing still the admitted total is exactly the burst — the
  // deterministic invariant TSan runs this under.
  SimClock clock;
  AdmissionController ctl(bucket_only(100.0, 8.0, &clock, 1));
  constexpr int kThreads = 4;
  constexpr int kAttempts = 16;
  std::vector<std::uint64_t> admitted(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kAttempts; ++i) {
        if (ctl.admit_ingest(static_cast<std::uint64_t>(t) * 97 + 5)
                .admitted) {
          ++admitted[static_cast<std::size_t>(t)];
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  std::uint64_t total = 0;
  for (const auto a : admitted) total += a;
  EXPECT_EQ(total, 8U);  // min(burst, attempts) with no queue configured
  const auto s = ctl.stats();
  EXPECT_EQ(s.ingest.admitted, 8U);
  EXPECT_EQ(s.ingest.throttled, kThreads * kAttempts - 8U);
}

// --- virtual admission queue + deadlines ------------------------------------

AdmissionConfig queue_only(double capacity_rps, std::size_t depth,
                           double deadline_ms, SimClock* clock) {
  AdmissionConfig cfg;
  cfg.enabled = true;
  cfg.ingest.capacity_rps = capacity_rps;
  cfg.ingest.queue_depth = depth;
  cfg.ingest.default_deadline_ms = deadline_ms;
  cfg.clock = clock;
  return cfg;
}

TEST(AdmissionQueueTest, QueueFullShedsWithDrainHint) {
  SimClock clock;
  // 1000 rps → 1 ms service; depth 4 → at most 4 ms of wait admitted.
  AdmissionController ctl(queue_only(1000.0, 4, 0.0, &clock));
  for (int i = 0; i < 4; ++i) {
    const auto d = ctl.admit_ingest(1);
    EXPECT_TRUE(d.admitted);
    EXPECT_NEAR(d.wait_ms, static_cast<double>(i), 1e-9);
  }
  const auto shed = ctl.admit_ingest(1);
  EXPECT_FALSE(shed.admitted);
  EXPECT_EQ(shed.outcome, AdmissionOutcome::kShedQueueFull);
  // The backlog drains one request per service_ms: one service time from
  // now there is room again, and the hint says exactly that.
  EXPECT_NEAR(shed.retry_after_ms, 1.0, 1e-9);

  clock.advance(shed.retry_after_ms);
  EXPECT_TRUE(ctl.admit_ingest(1).admitted);  // the hint was honest
}

TEST(AdmissionQueueTest, DeadlineShedsBeforeQueueing) {
  SimClock clock;
  AdmissionController ctl(queue_only(1000.0, 64, 3.0, &clock));
  // Three requests fit under the 3 ms default deadline (finish at 1,2,3).
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(ctl.admit_ingest(1).admitted);
  }
  // The fourth would finish at 4 ms — 1 ms past its deadline. Shed now,
  // hint by how much it missed.
  const auto shed = ctl.admit_ingest(1);
  EXPECT_FALSE(shed.admitted);
  EXPECT_EQ(shed.outcome, AdmissionOutcome::kShedDeadline);
  EXPECT_NEAR(shed.retry_after_ms, 1.0, 1e-9);

  // A per-request deadline overrides the lane default: the same arrival
  // with a 10 ms budget is happy to wait.
  EXPECT_TRUE(ctl.admit_ingest(1, 10.0).admitted);
  EXPECT_EQ(ctl.stats().ingest.shed_deadline, 1U);
}

TEST(AdmissionQueueTest, QueryLaneIsImmuneToIngestFlood) {
  SimClock clock;
  AdmissionConfig cfg;
  cfg.enabled = true;
  cfg.ingest.capacity_rps = 1000.0;
  cfg.ingest.queue_depth = 2;
  cfg.query.capacity_rps = 1000.0;
  cfg.query.queue_depth = 8;
  cfg.clock = &clock;
  AdmissionController ctl(cfg);

  // Saturate ingest far past its depth...
  for (int i = 0; i < 32; ++i) (void)ctl.admit_ingest(1);
  const auto s1 = ctl.stats();
  EXPECT_EQ(s1.ingest.admitted, 2U);
  EXPECT_EQ(s1.ingest.shed_queue_full, 30U);
  EXPECT_TRUE(s1.ingest.shedding);

  // ...and the query lane still admits with zero queue wait: its
  // capacity is reserved, not shared.
  const auto q = ctl.admit_query();
  EXPECT_TRUE(q.admitted);
  EXPECT_NEAR(q.wait_ms, 0.0, 1e-9);
  EXPECT_FALSE(ctl.stats().query.shedding);
}

TEST(AdmissionQueueTest, BacklogDecaysAndShedEpisodeCloses) {
  SimClock clock;
  AdmissionController ctl(queue_only(1000.0, 4, 0.0, &clock));
  for (int i = 0; i < 8; ++i) (void)ctl.admit_ingest(1);
  auto s = ctl.stats();
  EXPECT_NEAR(s.ingest.backlog, 4.0, 1e-9);
  EXPECT_TRUE(s.ingest.shedding);

  clock.advance(10.0);  // queue fully drains
  s = ctl.stats();
  EXPECT_NEAR(s.ingest.backlog, 0.0, 1e-9);
  // The first post-drain admit closes the shed episode.
  EXPECT_TRUE(ctl.admit_ingest(1).admitted);
  EXPECT_FALSE(ctl.stats().ingest.shedding);
}

TEST(AdmissionQueueTest, UnconfiguredLanesAdmitEverything) {
  SimClock clock;
  AdmissionConfig cfg;
  cfg.enabled = true;  // enabled but all knobs at their zero defaults
  cfg.clock = &clock;
  AdmissionController ctl(cfg);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(ctl.admit_ingest(static_cast<std::uint64_t>(i)).admitted);
    EXPECT_TRUE(ctl.admit_query().admitted);
  }
  EXPECT_EQ(ctl.stats().ingest.admitted, 100U);
  EXPECT_EQ(ctl.stats().query.admitted, 100U);
}

// --- the retry-after wire hint ----------------------------------------------

TEST(AdmissionWireTest, AckHintRoundTrips) {
  UploadAck ack;
  ack.upload_id = 77;
  ack.status = UploadAckStatus::kRetryLater;
  ack.segments_indexed = 0;
  ack.retry_after_ms = 1234;
  const auto bytes = encode_upload_ack(ack);
  const auto decoded = decode_upload_ack(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->upload_id, 77U);
  EXPECT_EQ(decoded->status, UploadAckStatus::kRetryLater);
  EXPECT_EQ(decoded->retry_after_ms, 1234U);
}

TEST(AdmissionWireTest, HintlessAcksKeepLegacyShape) {
  UploadAck ack;
  ack.upload_id = 9;
  ack.status = UploadAckStatus::kAccepted;
  ack.segments_indexed = 3;
  const auto legacy = encode_upload_ack(ack);  // retry_after_ms == 0

  // The hint-less encoding carries exactly tag + status + two varints +
  // crc: no phantom zero field (that is what keeps it byte-identical to
  // pre-hint encoders).
  EXPECT_EQ(legacy.size(), 2U + 1U + 1U + 4U);
  const auto decoded = decode_upload_ack(legacy);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->retry_after_ms, 0U);

  ack.retry_after_ms = 5;
  EXPECT_GT(encode_upload_ack(ack).size(), legacy.size());
}

TEST(AdmissionWireTest, MalformedHintTrailersRejected) {
  using svg::util::ByteWriter;
  const auto with_trailer = [](std::vector<std::uint8_t> body) {
    ByteWriter w;
    for (const auto b : body) w.put_u8(b);
    w.put_u32(svg::store::crc32c(std::span(w.bytes())));
    return w.take();
  };

  ByteWriter base;
  base.put_u8(kMsgUploadAck);
  base.put_u8(static_cast<std::uint8_t>(UploadAckStatus::kRetryLater));
  base.put_varint(77);  // upload_id
  base.put_varint(0);   // segments_indexed

  // An explicit zero hint must not appear on the wire (zero means "omit
  // the field"); a decoder that sees one rejects the message.
  auto zero_hint = base.bytes();
  zero_hint.push_back(0);
  EXPECT_FALSE(decode_upload_ack(with_trailer(zero_hint)).has_value());

  // Two trailing varints is the upload trace-context shape, not the ack
  // hint shape — also rejected.
  auto two_fields = base.bytes();
  two_fields.push_back(5);
  two_fields.push_back(6);
  EXPECT_FALSE(decode_upload_ack(with_trailer(two_fields)).has_value());

  // And a valid single non-zero varint decodes.
  auto good = base.bytes();
  good.push_back(5);
  const auto decoded = decode_upload_ack(with_trailer(good));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->retry_after_ms, 5U);
}

TEST(AdmissionWireTest, CorruptedHintedAcksNeverMisdecode) {
  UploadAck ack;
  ack.upload_id = 0xDEADBEEF;
  ack.status = UploadAckStatus::kRetryLater;
  ack.retry_after_ms = 250;
  const auto bytes = encode_upload_ack(ack);
  // Flip every single byte position in turn: each corruption must be
  // rejected outright or decode to the identical message (a flip inside
  // the crc that still matches is astronomically unlikely, but the
  // contract is "never a different message").
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    auto mutated = bytes;
    mutated[i] ^= 0x41;
    const auto decoded = decode_upload_ack(mutated);
    if (decoded.has_value()) {
      EXPECT_EQ(decoded->upload_id, ack.upload_id);
      EXPECT_EQ(decoded->retry_after_ms, ack.retry_after_ms);
    }
  }
}

// --- server + client end to end ---------------------------------------------

TEST(AdmissionServerTest, OverloadedServerDefersWithHint) {
  SimClock clock;
  AdmissionConfig admission = queue_only(1000.0, 1, 0.0, &clock);
  CloudServer server({}, {}, {}, admission);

  const auto first = server.handle_upload_acked(encode_upload(upload_of(1, 101)));
  ASSERT_TRUE(first.has_value());
  const auto ack1 = decode_upload_ack(*first);
  ASSERT_TRUE(ack1.has_value());
  EXPECT_EQ(ack1->status, UploadAckStatus::kAccepted);

  // Same instant: the lane is busy and the queue depth is 1 → shed with
  // a hint, nothing indexed, dedup NOT consulted.
  const auto second =
      server.handle_upload_acked(encode_upload(upload_of(2, 202)));
  ASSERT_TRUE(second.has_value());
  const auto ack2 = decode_upload_ack(*second);
  ASSERT_TRUE(ack2.has_value());
  EXPECT_EQ(ack2->status, UploadAckStatus::kRetryLater);
  EXPECT_GE(ack2->retry_after_ms, 1U);
  EXPECT_EQ(ack2->segments_indexed, 0U);
  EXPECT_EQ(server.stats().uploads_shed, 1U);

  // The retry after the hinted wait is admitted as a plain new ingest —
  // kAccepted, not kDuplicate (the shed attempt never claimed the id).
  clock.advance(static_cast<double>(ack2->retry_after_ms));
  const auto third =
      server.handle_upload_acked(encode_upload(upload_of(2, 202)));
  ASSERT_TRUE(third.has_value());
  const auto ack3 = decode_upload_ack(*third);
  ASSERT_TRUE(ack3.has_value());
  EXPECT_EQ(ack3->status, UploadAckStatus::kAccepted);
}

TEST(AdmissionServerTest, UploadQueueHonorsRetryAfterHint) {
  SimClock clock;
  AdmissionConfig admission = queue_only(10.0, 1, 0.0, &clock);  // 100 ms svc
  CloudServer server({}, {}, {}, admission);

  RetryPolicy policy;
  policy.base_backoff_ms = 10'000.0;  // blind backoff would wait 10 s
  policy.jitter = 0.0;
  UploadQueue queue(policy, /*seed=*/3, &clock);
  ClientStats mirror;
  queue.attach_client_stats(&mirror);

  queue.enqueue(upload_of(1, 0));
  queue.enqueue(upload_of(2, 0));
  queue.enqueue(upload_of(3, 0));
  const bool all = queue.drain([&](const std::vector<std::uint8_t>& bytes) {
    const auto ack = server.handle_upload_acked(bytes);
    return ack ? decode_upload_ack(*ack) : std::nullopt;
  });
  EXPECT_TRUE(all);

  const auto& qs = queue.stats();
  EXPECT_EQ(qs.acked, 3U);
  EXPECT_GE(qs.retry_after_hints, 1U);
  EXPECT_GT(qs.hinted_wait_ms, 0.0);
  // Hints beat the 10 s blind backoff: the whole drain finishes in sim
  // time bounded by a few service times, not policy.base_backoff_ms.
  EXPECT_LT(clock.now_ms(), 1'000.0);
  // Mirrored into the attached client stats block.
  EXPECT_EQ(mirror.retry_after_hints, qs.retry_after_hints);
  EXPECT_NEAR(mirror.retry_after_wait_ms, qs.hinted_wait_ms, 1e-9);
}

TEST(AdmissionServerTest, QueryLaneShedsWireAndInProcess) {
  SimClock clock;
  AdmissionConfig admission;
  admission.enabled = true;
  admission.query.capacity_rps = 1000.0;
  admission.query.queue_depth = 1;
  admission.clock = &clock;
  CloudServer server({}, {}, {}, admission);
  ASSERT_TRUE(server.handle_upload(encode_upload(upload_of(1, 11))));

  // A small circle dead ahead of an uploaded camera — guaranteed
  // coverable (queries match FoV coverage, not proximity).
  const auto& rep = all_reps()[2];
  const double theta = rep.fov.theta_deg * 3.14159265358979323846 / 180.0;
  QueryMessage wire_q;
  wire_q.t_start = 1'400'000'000'000;
  wire_q.t_end = wire_q.t_start + 86'400'000;
  wire_q.center = svg::geo::offset_m(rep.fov.p, 20.0 * std::sin(theta),
                                     20.0 * std::cos(theta));
  wire_q.radius_m = 5.0;
  const auto encoded = encode_query(wire_q);

  EXPECT_TRUE(server.handle_query(encoded).has_value());
  // Lane busy, depth 1 → the second query this instant is shed: silence
  // on the wire (the querier's lossy-link retry covers it)...
  EXPECT_FALSE(server.handle_query(encoded).has_value());

  // ...and full decision detail in-process.
  svg::retrieval::Query q;
  q.t_start = wire_q.t_start;
  q.t_end = wire_q.t_end;
  q.center = wire_q.center;
  q.radius_m = wire_q.radius_m;
  const auto shed = server.search_admitted(q);
  EXPECT_FALSE(shed.decision.admitted);
  EXPECT_TRUE(shed.results.empty());
  EXPECT_GT(shed.decision.retry_after_ms, 0.0);

  clock.advance(10.0);
  const auto ok = server.search_admitted(q);
  EXPECT_TRUE(ok.decision.admitted);
  EXPECT_FALSE(ok.results.empty());
}

TEST(AdmissionServerTest, DisabledAdmissionChangesNothing) {
  CloudServer server;  // default config: admission off
  EXPECT_EQ(server.admission(), nullptr);
  for (std::uint64_t i = 0; i < 50; ++i) {
    const auto ack_bytes =
        server.handle_upload_acked(encode_upload(upload_of(i, 1000 + i)));
    ASSERT_TRUE(ack_bytes.has_value());
    const auto ack = decode_upload_ack(*ack_bytes);
    ASSERT_TRUE(ack.has_value());
    EXPECT_EQ(ack->status, UploadAckStatus::kAccepted);
    EXPECT_EQ(ack->retry_after_ms, 0U);
  }
  EXPECT_EQ(server.stats().uploads_shed, 0U);
  // In-process admitted entry points degrade to plain calls.
  const auto d = server.ingest_admitted(upload_of(60, 2000));
  EXPECT_TRUE(d.decision.admitted);
  EXPECT_EQ(d.status, IngestStatus::kAccepted);
}

}  // namespace
