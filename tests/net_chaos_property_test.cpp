// Chaos property test (the issue's acceptance bar): across hundreds of
// random seed-driven fault plans, the post-run index must equal the
// fault-free run bit-for-bit — on both index backends, and across a mid-run
// crash with WAL recovery. "Equal" is canonical: every server's contents
// are dumped, sorted, and re-encoded through the snapshot codec, so the
// comparison is independent of ingest order and backend internals.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "net/fault.hpp"
#include "net/server.hpp"
#include "net/upload_queue.hpp"
#include "net/wire.hpp"
#include "sim/crowd.hpp"
#include "store/snapshot.hpp"
#include "util/rng.hpp"

namespace {

using namespace svg;
using namespace svg::net;

struct ScopedDir {
  explicit ScopedDir(const std::string& tag) {
    path = (std::filesystem::temp_directory_path() /
            ("svg_chaos_test_" + tag + "_" + std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~ScopedDir() { std::filesystem::remove_all(path); }
  std::string path;
};

/// Order-independent fingerprint of everything a server has indexed.
std::vector<std::uint8_t> canonical_index(const CloudServer& server,
                                          const std::string& scratch) {
  EXPECT_TRUE(server.save_snapshot(scratch));
  const auto snap = store::load_snapshot_file_full(scratch);
  EXPECT_TRUE(snap.has_value());
  auto reps = snap->reps;
  std::sort(reps.begin(), reps.end(), [](const auto& a, const auto& b) {
    return std::tie(a.video_id, a.segment_id, a.t_start) <
           std::tie(b.video_id, b.segment_id, b.t_start);
  });
  return store::encode_snapshot(reps);
}

std::vector<UploadMessage> make_uploads(std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  sim::CityModel city;
  const std::size_t n_uploads = 3 + rng.bounded(4);  // 3..6
  std::vector<UploadMessage> uploads;
  for (std::size_t u = 0; u < n_uploads; ++u) {
    UploadMessage msg;
    msg.video_id = u + 1;
    msg.segments = sim::random_representative_fovs(
        6 + rng.bounded(7), city, 1'400'000'000'000, 3'600'000, rng);
    for (std::size_t i = 0; i < msg.segments.size(); ++i) {
      msg.segments[i].video_id = msg.video_id;
      msg.segments[i].segment_id = static_cast<std::uint32_t>(i);
    }
    uploads.push_back(std::move(msg));
  }
  return uploads;
}

FaultPlan make_plan(std::uint64_t seed) {
  util::Xoshiro256 rng(seed ^ 0xC0FFEE);
  FaultPlan plan;
  plan.seed = seed;
  plan.drop = rng.uniform() * 0.3;
  plan.duplicate = rng.uniform() * 0.2;
  plan.reorder = rng.uniform() * 0.2;
  plan.corrupt = rng.uniform() * 0.1;
  if (rng.chance(0.3)) {
    const double start = rng.uniform() * 2'000.0;
    plan.disconnects.push_back({start, start + rng.uniform() * 3'000.0});
  }
  return plan;
}

/// Drive `uploads` through a fresh faulty channel into `server`.
/// Returns true when every upload was acked.
bool run_faulty(CloudServer& server, const std::vector<UploadMessage>& uploads,
                const FaultPlan& plan, std::uint64_t queue_seed) {
  SimClock clock;
  Link link;
  FaultyLink faulty(link, plan, &clock);
  RetryPolicy policy;
  policy.max_attempts = 64;  // outlast even a 30% drop + disconnect plan
  UploadQueue queue(policy, queue_seed, &clock);
  for (const auto& m : uploads) queue.enqueue(m);
  return queue.drain(FaultyUploadChannel(faulty, server));
}

TEST(ChaosPropertyTest, FaultyRunsConvergeToFaultFreeIndexAcross200Seeds) {
  ScopedDir dir("seeds");
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const auto uploads = make_uploads(seed);
    const auto plan = make_plan(seed);
    const std::uint64_t queue_seed = seed * 31 + 7;

    // Fault-free baseline: same messages with the same ids, clean ingest.
    CloudServer baseline;
    ASSERT_TRUE(run_faulty(baseline, uploads, FaultPlan{}, queue_seed));
    const auto want = canonical_index(baseline, dir.path + "/baseline.snap");

    CloudServer plain;
    ASSERT_TRUE(run_faulty(plain, uploads, plan, queue_seed))
        << "seed " << seed;
    EXPECT_EQ(canonical_index(plain, dir.path + "/plain.snap"), want)
        << "plain backend diverged at seed " << seed;

    CloudServer sharded(
        ServerIndexConfig(ServerIndexConfig::Backend::kSharded, 4));
    ASSERT_TRUE(run_faulty(sharded, uploads, plan, queue_seed))
        << "seed " << seed;
    EXPECT_EQ(canonical_index(sharded, dir.path + "/sharded.snap"), want)
        << "sharded backend diverged at seed " << seed;

    EXPECT_EQ(plain.known_upload_ids(), uploads.size());
    EXPECT_EQ(plain.stats().uploads_accepted, uploads.size());
  }
}

TEST(ChaosPropertyTest, MidRunCrashAndWalRecoveryStaysExactlyOnce) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    ScopedDir dir("crash_" + std::to_string(seed));
    const auto uploads = make_uploads(seed);
    const auto plan = make_plan(seed);
    const std::uint64_t queue_seed = seed * 131 + 3;

    CloudServer baseline;
    ASSERT_TRUE(run_faulty(baseline, uploads, FaultPlan{}, queue_seed));
    const auto want = canonical_index(baseline, dir.path + "/baseline.snap");

    // Phase 1: deliver only a prefix, then crash (destructor = crash for
    // the index; the WAL survives).
    const std::size_t prefix = 1 + uploads.size() / 2;
    {
      ServerDurabilityConfig dcfg;
      dcfg.data_dir = dir.path;
      CloudServer server({}, {}, dcfg);
      SimClock clock;
      Link link;
      FaultyLink faulty(link, plan, &clock);
      RetryPolicy policy;
      policy.max_attempts = 64;
      UploadQueue queue(policy, queue_seed, &clock);
      for (std::size_t i = 0; i < prefix; ++i) queue.enqueue(uploads[i]);
      ASSERT_TRUE(queue.drain(FaultyUploadChannel(faulty, server)));
      if (seed % 3 == 0) {
        ASSERT_TRUE(server.checkpoint_now());
      }
      server.sync_wal();
    }

    // Phase 2: the recovered client re-enqueues EVERYTHING with the same
    // queue seed, so the prefix reproduces its original upload_ids. The
    // recovered server must absorb those as duplicates.
    {
      ServerDurabilityConfig dcfg;
      dcfg.data_dir = dir.path;
      CloudServer server({}, {}, dcfg);
      EXPECT_EQ(server.known_upload_ids(), prefix) << "seed " << seed;
      ASSERT_TRUE(run_faulty(server, uploads, plan, queue_seed));
      EXPECT_EQ(canonical_index(server, dir.path + "/recovered.snap"), want)
          << "recovered index diverged at seed " << seed;
      EXPECT_GE(server.stats().uploads_deduped, prefix) << "seed " << seed;
      EXPECT_EQ(server.known_upload_ids(), uploads.size());
    }
  }
}

TEST(ChaosPropertyTest, ConcurrentChaosClientsStayExactlyOnce) {
  // Many clients hammer one server through independent faulty links at
  // once — the dedup set, WAL-less ingest path and sharded index must stay
  // consistent under parallelism (this test runs under TSan in CI).
  const std::size_t kClients = 8;
  CloudServer server(
      ServerIndexConfig(ServerIndexConfig::Backend::kSharded, 4));

  std::vector<std::vector<UploadMessage>> per_client;
  std::size_t total_segments = 0;
  for (std::size_t c = 0; c < kClients; ++c) {
    auto uploads = make_uploads(c + 1);
    for (auto& m : uploads) {
      m.video_id += 1000 * (c + 1);  // distinct videos per client
      for (auto& s : m.segments) s.video_id = m.video_id;
      total_segments += m.segments.size();
    }
    per_client.push_back(std::move(uploads));
  }

  std::atomic<std::size_t> all_acked{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto plan = make_plan(c + 100);
      if (run_faulty(server, per_client[c], plan, 1000 + c)) {
        all_acked.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(all_acked.load(), kClients);
  EXPECT_EQ(server.indexed_segments(), total_segments);
  std::size_t total_uploads = 0;
  for (const auto& u : per_client) total_uploads += u.size();
  EXPECT_EQ(server.stats().uploads_accepted, total_uploads);
  EXPECT_EQ(server.known_upload_ids(), total_uploads);
}

}  // namespace
