// End-to-end protocol tests: client captures → uploads descriptors → server
// indexes → querier searches over the wire.

#include <gtest/gtest.h>

#include "net/client.hpp"
#include "net/server.hpp"
#include "sim/sensors.hpp"
#include "sim/trajectory.hpp"

namespace {

using namespace svg::net;
using svg::core::CameraIntrinsics;
using svg::core::FovRecord;
using svg::core::SimilarityModel;
using svg::geo::LatLng;
using svg::geo::offset_m;

const LatLng kCenter{39.9042, 116.4074};
const CameraIntrinsics kCam{30.0, 100.0};

std::vector<FovRecord> record_walk(double camera_offset_deg,
                                   double duration_s = 30.0) {
  svg::sim::StraightTrajectory traj(offset_m(kCenter, 0, -50), 0.0, 1.4,
                                    duration_s, camera_offset_deg);
  svg::sim::SensorSampler sampler(svg::sim::SensorNoiseConfig::ideal(),
                                  {30.0, 1'000'000});
  svg::util::Xoshiro256 rng(1);
  return sampler.sample(traj, rng);
}

TEST(TransportTest, LinkAccountsBytesAndLatency) {
  Link link({.bandwidth_up_mbps = 8.0,
             .bandwidth_down_mbps = 8.0,
             .one_way_latency_ms = 25.0});
  const double up_ms = link.send_up(1'000'000);  // 1 MB at 8 Mbps = 1 s
  EXPECT_NEAR(up_ms, 25.0 + 1000.0, 1.0);
  link.send_down(100);
  const auto s = link.stats();
  EXPECT_EQ(s.messages_up, 1u);
  EXPECT_EQ(s.bytes_up, 1'000'000u);
  EXPECT_EQ(s.messages_down, 1u);
  EXPECT_EQ(s.bytes_down, 100u);
}

TEST(VideoBytesTest, BitrateModel) {
  EXPECT_DOUBLE_EQ(video_upload_bytes(10.0, 2.0), 2.5e6);
}

TEST(MobileClientTest, UploadContainsAllSegments) {
  const SimilarityModel model(kCam);
  MobileClient client(42, model, {0.5});
  const auto records = record_walk(0.0);
  const auto msg = capture_session(client, records);
  EXPECT_EQ(msg.video_id, 42u);
  EXPECT_FALSE(msg.segments.empty());
  EXPECT_EQ(client.stats().frames_processed, records.size());
  // Segment intervals tile the recording.
  for (std::size_t i = 1; i < msg.segments.size(); ++i) {
    EXPECT_GT(msg.segments[i].t_start, msg.segments[i - 1].t_end - 40);
  }
  EXPECT_EQ(msg.segments.front().t_start, records.front().t);
  EXPECT_EQ(msg.segments.back().t_end, records.back().t);
}

TEST(MobileClientTest, DescriptorTrafficIsNegligible) {
  const SimilarityModel model(kCam);
  MobileClient client(1, model, {0.5});
  const auto records = record_walk(0.0, 60.0);
  const auto msg = capture_session(client, records);
  Link link;
  client.upload(msg, link);
  const auto& stats = client.stats();
  EXPECT_GT(stats.descriptor_bytes, 0u);
  EXPECT_GT(stats.video_bytes_avoided, 1e6);  // 60 s of video ≈ 15 MB
  // The paper's headline: descriptor bytes are ~1e-5 of the video bytes.
  EXPECT_LT(static_cast<double>(stats.descriptor_bytes),
            1e-3 * stats.video_bytes_avoided);
  EXPECT_EQ(link.stats().bytes_up, stats.descriptor_bytes);
}

TEST(CloudServerTest, IngestAndSearchInProcess) {
  CloudServer server({}, {.camera = kCam,
                          .orientation_slack_deg = 5.0,
                          .orientation_filter = true,
                          .top_n = 10,
                          .box_expansion = 0.0});
  const SimilarityModel model(kCam);
  MobileClient client(7, model, {0.5});
  server.ingest(capture_session(client, record_walk(0.0)));
  EXPECT_GT(server.indexed_segments(), 0u);

  svg::retrieval::Query q;
  q.center = kCenter;
  q.radius_m = 40.0;
  q.t_start = 1'000'000;
  q.t_end = 1'000'000 + 30'000;
  const auto results = server.search(q);
  ASSERT_FALSE(results.empty());
  EXPECT_EQ(results[0].rep.video_id, 7u);
}

TEST(CloudServerTest, WireProtocolEndToEnd) {
  CloudServer server({}, {.camera = kCam,
                          .orientation_slack_deg = 5.0,
                          .orientation_filter = true,
                          .top_n = 10,
                          .box_expansion = 0.0});
  const SimilarityModel model(kCam);

  // Provider uploads over the wire.
  MobileClient client(9, model, {0.5});
  Link uplink;
  const auto bytes =
      client.upload(capture_session(client, record_walk(0.0)), uplink);
  ASSERT_TRUE(server.handle_upload(bytes));

  // Querier asks over the wire.
  QueryMessage qm;
  qm.t_start = 1'000'000;
  qm.t_end = 1'000'000 + 30'000;
  qm.center = kCenter;
  qm.radius_m = 40.0;
  qm.top_n = 5;
  const auto reply = server.handle_query(encode_query(qm));
  ASSERT_TRUE(reply.has_value());
  const auto results = decode_results(*reply);
  ASSERT_TRUE(results.has_value());
  ASSERT_FALSE(results->entries.empty());
  EXPECT_LE(results->entries.size(), 5u);
  EXPECT_EQ(results->entries[0].video_id, 9u);

  const auto stats = server.stats();
  EXPECT_EQ(stats.uploads_accepted, 1u);
  EXPECT_EQ(stats.queries_served, 1u);
}

TEST(CloudServerTest, CameraFacingAwayNotReturned) {
  CloudServer server({}, {.camera = kCam,
                          .orientation_slack_deg = 5.0,
                          .orientation_filter = true,
                          .top_n = 10,
                          .box_expansion = 0.0});
  const SimilarityModel model(kCam);
  // Walking north but filming backwards (south) from north of the centre:
  // the query centre sits behind the camera's view for the whole walk? No —
  // start the walk north of centre heading away, filming forward (north).
  svg::sim::StraightTrajectory traj(offset_m(kCenter, 0, 30), 0.0, 1.4,
                                    30.0, 0.0);
  svg::sim::SensorSampler sampler(svg::sim::SensorNoiseConfig::ideal(),
                                  {30.0, 1'000'000});
  svg::util::Xoshiro256 rng(2);
  MobileClient client(3, model, {0.5});
  server.ingest(capture_session(client, sampler.sample(traj, rng)));

  svg::retrieval::Query q;
  q.center = kCenter;
  q.radius_m = 20.0;
  q.t_start = 1'000'000;
  q.t_end = 1'000'000 + 30'000;
  EXPECT_TRUE(server.search(q).empty());
}

TEST(CloudServerTest, MalformedUploadRejected) {
  CloudServer server;
  const std::vector<std::uint8_t> garbage{0xFF, 0x00, 0x12};
  EXPECT_FALSE(server.handle_upload(garbage));
  EXPECT_EQ(server.stats().uploads_rejected, 1u);
  EXPECT_EQ(server.indexed_segments(), 0u);
}

TEST(CloudServerTest, MalformedQueryRejected) {
  CloudServer server;
  EXPECT_FALSE(server.handle_query({}).has_value());
  const std::vector<std::uint8_t> garbage{0x00};
  EXPECT_FALSE(server.handle_query(garbage).has_value());
}

TEST(CloudServerTest, MultipleProvidersRanked) {
  CloudServer server({}, {.camera = kCam,
                          .orientation_slack_deg = 5.0,
                          .orientation_filter = true,
                          .top_n = 10,
                          .box_expansion = 0.0});
  const SimilarityModel model(kCam);
  // Two static observers at different distances, both facing the centre.
  for (const auto& [vid, dist] :
       std::vector<std::pair<std::uint64_t, double>>{{1, 60.0}, {2, 25.0}}) {
    svg::sim::RotationTrajectory traj(offset_m(kCenter, 0, -dist), 0.0, 0.0,
                                      10.0);
    svg::sim::SensorSampler sampler(svg::sim::SensorNoiseConfig::ideal(),
                                    {30.0, 1'000'000});
    svg::util::Xoshiro256 rng(vid);
    MobileClient client(vid, model, {0.5});
    server.ingest(capture_session(client, sampler.sample(traj, rng)));
  }
  svg::retrieval::Query q;
  q.center = kCenter;
  q.radius_m = 30.0;
  q.t_start = 1'000'000;
  q.t_end = 1'000'000 + 10'000;
  const auto results = server.search(q);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].rep.video_id, 2u);  // closer camera first
  EXPECT_EQ(results[1].rep.video_id, 1u);
}

}  // namespace
