#include "net/clip_fetch.hpp"

#include <gtest/gtest.h>

namespace {

using namespace svg::net;
using svg::media::RecordedVideo;
using svg::media::VideoStore;

VideoStore store_with(std::uint64_t id, svg::core::TimestampMs start,
                      svg::core::TimestampMs end) {
  VideoStore s;
  s.add(RecordedVideo(id, start, end));
  return s;
}

svg::retrieval::RankedResult result_for(std::uint64_t vid,
                                        svg::core::TimestampMs t0,
                                        svg::core::TimestampMs t1) {
  svg::retrieval::RankedResult r;
  r.rep.video_id = vid;
  r.rep.t_start = t0;
  r.rep.t_end = t1;
  return r;
}

TEST(ClipRequestCodecTest, RoundTrip) {
  const ClipRequest req{42, 1'000'000, 1'006'000};
  const auto back = decode_clip_request(encode_clip_request(req));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->video_id, 42u);
  EXPECT_EQ(back->t_start, 1'000'000);
  EXPECT_EQ(back->t_end, 1'006'000);
}

TEST(ClipRequestCodecTest, MalformedRejected) {
  EXPECT_FALSE(decode_clip_request({}).has_value());
  auto bytes = encode_clip_request({1, 0, 100});
  bytes[0] = kMsgQuery;
  EXPECT_FALSE(decode_clip_request(bytes).has_value());
}

TEST(ClipResponseCodecTest, RoundTripWithPayload) {
  ClipResponse resp;
  resp.found = true;
  resp.clip.video_id = 7;
  resp.clip.t_start = 500;
  resp.clip.t_end = 2500;
  resp.clip.payload = {1, 2, 3, 250, 0};
  const auto back = decode_clip_response(encode_clip_response(resp));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->found);
  EXPECT_EQ(back->clip.video_id, 7u);
  EXPECT_EQ(back->clip.t_start, 500);
  EXPECT_EQ(back->clip.t_end, 2500);
  EXPECT_EQ(back->clip.payload, resp.clip.payload);
}

TEST(ClipResponseCodecTest, NotFoundRoundTrip) {
  ClipResponse resp;
  resp.found = false;
  const auto back = decode_clip_response(encode_clip_response(resp));
  ASSERT_TRUE(back.has_value());
  EXPECT_FALSE(back->found);
}

TEST(ClipResponseCodecTest, TruncatedPayloadRejected) {
  ClipResponse resp;
  resp.found = true;
  resp.clip.payload.assign(100, 9);
  auto bytes = encode_clip_response(resp);
  bytes.resize(bytes.size() - 50);
  EXPECT_FALSE(decode_clip_response(bytes).has_value());
}

TEST(ServeClipRequestTest, ReturnsClipForKnownVideo) {
  const auto store = store_with(1, 1'000'000, 1'060'000);
  const auto resp_bytes = serve_clip_request(
      store, encode_clip_request({1, 1'010'000, 1'012'000}));
  const auto resp = decode_clip_response(resp_bytes);
  ASSERT_TRUE(resp.has_value());
  ASSERT_TRUE(resp->found);
  EXPECT_EQ(resp->clip.video_id, 1u);
  EXPECT_GT(resp->clip.size_bytes(), 0u);
}

TEST(ServeClipRequestTest, UnknownVideoNotFound) {
  const auto store = store_with(1, 1'000'000, 1'060'000);
  const auto resp = decode_clip_response(serve_clip_request(
      store, encode_clip_request({99, 1'010'000, 1'012'000})));
  ASSERT_TRUE(resp.has_value());
  EXPECT_FALSE(resp->found);
}

TEST(ServeClipRequestTest, GarbageRequestNotFound) {
  const auto store = store_with(1, 0, 1000);
  const std::vector<std::uint8_t> garbage{0xFF, 0x01};
  const auto resp = decode_clip_response(serve_clip_request(store, garbage));
  ASSERT_TRUE(resp.has_value());
  EXPECT_FALSE(resp->found);
}

TEST(FetchCoordinatorTest, FetchesMatchedSegmentOnly) {
  const auto store = store_with(5, 1'000'000, 1'120'000);  // 2 min video
  Link link;
  FetchCoordinator coord;
  coord.register_provider(5, &store, &link);

  const auto clip = coord.fetch(result_for(5, 1'030'000, 1'036'000));
  ASSERT_TRUE(clip.has_value());
  EXPECT_EQ(clip->video_id, 5u);

  const auto& stats = coord.stats();
  EXPECT_EQ(stats.clips_fetched, 1u);
  EXPECT_EQ(stats.clips_missing, 0u);
  EXPECT_GT(stats.clip_bytes, 0u);
  // The matched 6 s clip is a small fraction of the 2 min recording.
  EXPECT_LT(static_cast<double>(stats.clip_bytes),
            0.1 * static_cast<double>(stats.full_video_bytes));
  // Traffic crossed the registered link.
  EXPECT_GT(link.stats().bytes_up, stats.clip_bytes);  // payload + framing
  EXPECT_GT(stats.fetch_time_ms, 0.0);
}

TEST(FetchCoordinatorTest, UnknownProviderCountsMissing) {
  FetchCoordinator coord;
  EXPECT_FALSE(coord.fetch(result_for(1, 0, 1000)).has_value());
  EXPECT_EQ(coord.stats().clips_missing, 1u);
}

TEST(FetchCoordinatorTest, ProviderWithoutVideoCountsMissing) {
  const auto store = store_with(5, 1'000'000, 1'060'000);
  Link link;
  FetchCoordinator coord;
  coord.register_provider(6, &store, &link);  // store lacks video 6
  EXPECT_FALSE(coord.fetch(result_for(6, 1'000'000, 1'001'000)).has_value());
  EXPECT_EQ(coord.stats().clips_missing, 1u);
}

TEST(FetchCoordinatorTest, FetchAllHonoursLimit) {
  const auto s1 = store_with(1, 1'000'000, 1'060'000);
  const auto s2 = store_with(2, 1'000'000, 1'060'000);
  const auto s3 = store_with(3, 1'000'000, 1'060'000);
  Link link;
  FetchCoordinator coord;
  coord.register_provider(1, &s1, &link);
  coord.register_provider(2, &s2, &link);
  coord.register_provider(3, &s3, &link);

  const std::vector<svg::retrieval::RankedResult> results{
      result_for(1, 1'000'000, 1'002'000),
      result_for(2, 1'000'000, 1'002'000),
      result_for(3, 1'000'000, 1'002'000)};
  EXPECT_EQ(coord.fetch_all(results, 2).size(), 2u);
  EXPECT_EQ(coord.stats().clips_fetched, 2u);
  EXPECT_EQ(coord.fetch_all(results).size(), 3u);
}

}  // namespace
