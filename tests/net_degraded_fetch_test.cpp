// Degraded clip fetch: per-request deadlines and retries over faulty links,
// partial FetchReports with every unfetchable clip explicitly flagged.

#include <gtest/gtest.h>

#include <vector>

#include "net/clip_fetch.hpp"
#include "net/fault.hpp"

namespace {

using namespace svg::net;
using svg::media::RecordedVideo;
using svg::media::VideoStore;

VideoStore store_with(std::uint64_t id, svg::core::TimestampMs start,
                      svg::core::TimestampMs end) {
  VideoStore s;
  s.add(RecordedVideo(id, start, end));
  return s;
}

svg::retrieval::RankedResult result_for(std::uint64_t vid,
                                        svg::core::TimestampMs t0,
                                        svg::core::TimestampMs t1) {
  svg::retrieval::RankedResult r;
  r.rep.video_id = vid;
  r.rep.t_start = t0;
  r.rep.t_end = t1;
  return r;
}

TEST(DegradedFetchTest, CleanFaultyLinkBehavesLikeReliableFetch) {
  const auto store = store_with(1, 1'000'000, 1'060'000);
  Link link;
  FaultyLink faulty(link, FaultPlan{});
  FetchCoordinator coord;
  coord.register_provider(1, &store, &faulty);
  MissingClip miss;
  const auto clip =
      coord.fetch_degraded(result_for(1, 1'010'000, 1'016'000), {}, &miss);
  ASSERT_TRUE(clip.has_value());
  EXPECT_EQ(clip->video_id, 1u);
  EXPECT_EQ(coord.stats().attempts, 1u);
  EXPECT_EQ(coord.stats().retries, 0u);
}

TEST(DegradedFetchTest, RetrySucceedsUnderHeavyDrops) {
  const auto store = store_with(2, 1'000'000, 1'060'000);
  SimClock clock;
  FaultPlan plan;
  plan.seed = 77;
  plan.drop = 0.5;
  Link link;
  FaultyLink faulty(link, plan, &clock);
  FetchCoordinator coord;
  coord.register_provider(2, &store, &faulty);

  FetchPolicy policy;
  policy.max_attempts = 16;
  policy.deadline_ms = 0;  // attempts alone bound the work
  std::size_t fetched = 0;
  for (int i = 0; i < 10; ++i) {
    if (coord.fetch_degraded(result_for(2, 1'010'000, 1'012'000), policy)) {
      ++fetched;
    }
  }
  EXPECT_EQ(fetched, 10u);  // 16 tries at 50% loss: failure odds ~2^-16
  EXPECT_GT(coord.stats().retries, 0u);
  EXPECT_GT(coord.stats().timeouts, 0u);
}

TEST(DegradedFetchTest, UnknownProviderFlaggedWithoutLinkTraffic) {
  FetchCoordinator coord;
  MissingClip miss;
  EXPECT_FALSE(coord.fetch_degraded(result_for(9, 0, 1000), {}, &miss));
  EXPECT_EQ(miss.reason, FetchFailure::kUnknownProvider);
  EXPECT_EQ(miss.video_id, 9u);
  EXPECT_EQ(miss.attempts, 0u);
}

TEST(DegradedFetchTest, NotFoundIsTerminalNotRetried) {
  const auto store = store_with(3, 1'000'000, 1'060'000);
  SimClock clock;
  Link link;
  FaultyLink faulty(link, FaultPlan{}, &clock);
  FetchCoordinator coord;
  coord.register_provider(4, &store, &faulty);  // store lacks video 4
  MissingClip miss;
  FetchPolicy policy;
  policy.max_attempts = 5;
  EXPECT_FALSE(
      coord.fetch_degraded(result_for(4, 1'000'000, 1'001'000), policy, &miss));
  EXPECT_EQ(miss.reason, FetchFailure::kNotFound);
  // A definitive "I don't have it" must not burn the retry budget.
  EXPECT_EQ(miss.attempts, 1u);
}

TEST(DegradedFetchTest, DeadLinkTimesOutWithAttemptCount) {
  const auto store = store_with(5, 1'000'000, 1'060'000);
  SimClock clock;
  FaultPlan plan;
  plan.seed = 5;
  plan.drop = 1.0;
  Link link;
  FaultyLink faulty(link, plan, &clock);
  FetchCoordinator coord;
  coord.register_provider(5, &store, &faulty);
  MissingClip miss;
  FetchPolicy policy;
  policy.max_attempts = 4;
  policy.deadline_ms = 0;
  EXPECT_FALSE(
      coord.fetch_degraded(result_for(5, 1'000'000, 1'002'000), policy, &miss));
  EXPECT_EQ(miss.reason, FetchFailure::kTimedOut);
  EXPECT_EQ(miss.attempts, 4u);
  EXPECT_GT(clock.now_ms(), 3 * policy.attempt_timeout_ms);
}

TEST(DegradedFetchTest, DeadlineCutsRetriesShort) {
  const auto store = store_with(6, 1'000'000, 1'060'000);
  SimClock clock;
  FaultPlan plan;
  plan.seed = 6;
  plan.drop = 1.0;
  Link link;
  FaultyLink faulty(link, plan, &clock);
  FetchCoordinator coord;
  coord.register_provider(6, &store, &faulty);
  MissingClip miss;
  FetchPolicy policy;
  policy.max_attempts = 100;
  policy.attempt_timeout_ms = 1'000.0;
  policy.deadline_ms = 3'000.0;
  EXPECT_FALSE(
      coord.fetch_degraded(result_for(6, 1'000'000, 1'002'000), policy, &miss));
  EXPECT_EQ(miss.reason, FetchFailure::kTimedOut);
  EXPECT_LT(miss.attempts, 100u);  // deadline, not attempt budget, stopped it
}

TEST(DegradedFetchTest, PartialReportFlagsOnlyTheUnreachableClips) {
  const auto good_store = store_with(1, 1'000'000, 1'060'000);
  const auto gone_store = store_with(99, 1'000'000, 1'060'000);
  SimClock clock;
  Link good_link, dead_link, gone_link;
  FaultyLink good(good_link, FaultPlan{}, &clock);
  FaultPlan dead_plan;
  dead_plan.seed = 1;
  dead_plan.drop = 1.0;
  FaultyLink dead(dead_link, dead_plan, &clock);
  FaultyLink gone(gone_link, FaultPlan{}, &clock);

  const auto dead_store = store_with(2, 1'000'000, 1'060'000);
  FetchCoordinator coord;
  coord.register_provider(1, &good_store, &good);
  coord.register_provider(2, &dead_store, &dead);
  coord.register_provider(3, &gone_store, &gone);  // store lacks video 3
  // video 4 never registered at all

  const std::vector<svg::retrieval::RankedResult> results{
      result_for(1, 1'010'000, 1'012'000), result_for(2, 1'010'000, 1'012'000),
      result_for(3, 1'010'000, 1'012'000), result_for(4, 1'010'000, 1'012'000)};
  FetchPolicy policy;
  policy.max_attempts = 3;
  policy.deadline_ms = 0;
  const auto report = coord.fetch_all_degraded(results, policy);

  EXPECT_FALSE(report.complete());
  ASSERT_EQ(report.clips.size(), 1u);
  EXPECT_EQ(report.clips[0].video_id, 1u);
  ASSERT_EQ(report.missing.size(), 3u);
  for (const auto& miss : report.missing) {
    switch (miss.video_id) {
      case 2:
        EXPECT_EQ(miss.reason, FetchFailure::kTimedOut);
        break;
      case 3:
        EXPECT_EQ(miss.reason, FetchFailure::kNotFound);
        break;
      case 4:
        EXPECT_EQ(miss.reason, FetchFailure::kUnknownProvider);
        break;
      default:
        ADD_FAILURE() << "unexpected missing video " << miss.video_id;
    }
  }
}

TEST(DegradedFetchTest, CorruptedExchangeIsRetriedNotMistakenForNotFound) {
  // 100% corruption: requests arrive mangled (provider stays silent) or
  // responses arrive mangled (querier discards). Either way every attempt
  // must read as a timeout — never as an authoritative "not found".
  const auto store = store_with(7, 1'000'000, 1'060'000);
  SimClock clock;
  FaultPlan plan;
  plan.seed = 7;
  plan.corrupt = 1.0;
  Link link;
  FaultyLink faulty(link, plan, &clock);
  FetchCoordinator coord;
  coord.register_provider(7, &store, &faulty);
  MissingClip miss;
  FetchPolicy policy;
  policy.max_attempts = 3;
  policy.deadline_ms = 0;
  EXPECT_FALSE(
      coord.fetch_degraded(result_for(7, 1'000'000, 1'002'000), policy, &miss));
  EXPECT_EQ(miss.reason, FetchFailure::kTimedOut);
  EXPECT_EQ(miss.attempts, 3u);
}

}  // namespace
