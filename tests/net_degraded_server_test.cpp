// Degraded read-only mode (docs/ROBUSTNESS.md): when the durable log dies
// mid-flight the server stops accepting ingest — answering kRetryLater,
// never ack-then-lose — while queries keep serving from the in-memory
// index. The retrying client backs off on the deferral instead of burning
// its ack timeout, and try_recover_storage() brings the server back to
// accepting writes once the disk heals, preserving exactly-once across
// the whole outage.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "geo/geodesy.hpp"

#include "net/server.hpp"
#include "net/upload_queue.hpp"
#include "net/wire.hpp"
#include "sim/crowd.hpp"
#include "store/env.hpp"
#include "util/rng.hpp"

namespace {

using namespace svg::net;
using svg::core::RepresentativeFov;
using svg::store::Env;
using svg::store::FaultyEnv;
using svg::store::FsyncPolicy;
using svg::store::StoreFaultPlan;

struct ScopedDir {
  explicit ScopedDir(const std::string& tag) {
    path = (std::filesystem::temp_directory_path() /
            ("svg_degraded_test_" + tag + "_" + std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~ScopedDir() { std::filesystem::remove_all(path); }
  std::string path;
};

const std::vector<RepresentativeFov>& all_reps() {
  static const auto reps = [] {
    svg::sim::CityModel city;
    svg::util::Xoshiro256 rng(19);
    return svg::sim::random_representative_fovs(64, city, 1'400'000'000'000,
                                                86'400'000, rng);
  }();
  return reps;
}

UploadMessage upload_of(std::size_t i, std::uint64_t upload_id) {
  UploadMessage msg;
  msg.upload_id = upload_id;
  msg.video_id = i;
  msg.segments = {all_reps()[(2 * i) % 64], all_reps()[(2 * i + 1) % 64]};
  return msg;
}

ServerDurabilityConfig durable_cfg(const std::string& dir, Env* env) {
  ServerDurabilityConfig cfg;
  cfg.data_dir = dir;
  cfg.fsync = FsyncPolicy::kAlways;
  cfg.env = env;
  return cfg;
}

/// A small circle dead ahead of `rep`'s camera — guaranteed coverable.
svg::retrieval::Query query_at(const RepresentativeFov& rep) {
  const double theta = rep.fov.theta_deg * 3.14159265358979323846 / 180.0;
  svg::retrieval::Query q;
  q.center = svg::geo::offset_m(rep.fov.p, 20.0 * std::sin(theta),
                                20.0 * std::cos(theta));
  q.radius_m = 5.0;
  q.t_start = 1'400'000'000'000;
  q.t_end = q.t_start + 86'400'000;
  return q;
}

StoreFaultPlan dead_disk() {
  StoreFaultPlan plan;
  plan.write_error = 1.0;
  plan.fsync_error = 1.0;
  return plan;
}

TEST(DegradedServerTest, WriteFaultEntersDegradedQueriesKeepServing) {
  ScopedDir dir("enter");
  FaultyEnv env{StoreFaultPlan{}};
  CloudServer server({}, {}, durable_cfg(dir.path, &env));
  for (std::size_t i = 0; i < 5; ++i) {
    ASSERT_EQ(server.ingest_status(upload_of(i, 100 + i)),
              IngestStatus::kAccepted);
  }
  ASSERT_EQ(server.health(), ServerHealth::kOk);
  const auto q = query_at(all_reps()[0]);  // upload 0's first rep
  const auto served_before = server.search(q).size();
  ASSERT_GT(served_before, 0u);

  env.set_plan(dead_disk());
  EXPECT_EQ(server.ingest_status(upload_of(5, 105)),
            IngestStatus::kRetryLater);
  EXPECT_EQ(server.health(), ServerHealth::kDegraded);
  EXPECT_GE(server.stats().uploads_deferred, 1u);
  // Degraded is sticky until an explicit recovery, even for retries.
  EXPECT_EQ(server.ingest_status(upload_of(5, 105)),
            IngestStatus::kRetryLater);
  // Nothing was indexed or remembered for the refused upload…
  EXPECT_EQ(server.indexed_segments(), 10u);
  // …and the read path is untouched: same answers as before the fault.
  EXPECT_EQ(server.search(q).size(), served_before);
}

TEST(DegradedServerTest, DegradedServerAcksRetryLaterOnTheWire) {
  ScopedDir dir("wire");
  FaultyEnv env{StoreFaultPlan{}};
  CloudServer server({}, {}, durable_cfg(dir.path, &env));
  env.set_plan(dead_disk());

  const auto bytes = encode_upload(upload_of(0, 777));
  const auto ack_bytes = server.handle_upload_acked(bytes);
  ASSERT_TRUE(ack_bytes.has_value());
  const auto ack = decode_upload_ack(*ack_bytes);
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->upload_id, 777u);
  EXPECT_EQ(ack->status, UploadAckStatus::kRetryLater);
  EXPECT_EQ(ack->segments_indexed, 0u);  // a deferral indexes nothing
}

TEST(DegradedServerTest, WireCodecRoundTripsRetryLater) {
  UploadAck ack;
  ack.upload_id = 42;
  ack.status = UploadAckStatus::kRetryLater;
  ack.segments_indexed = 0;
  const auto back = decode_upload_ack(encode_upload_ack(ack));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->upload_id, 42u);
  EXPECT_EQ(back->status, UploadAckStatus::kRetryLater);
}

TEST(DegradedServerTest, TryRecoverStorageRestoresIngestAfterHeal) {
  ScopedDir dir("recover");
  FaultyEnv env{StoreFaultPlan{}};
  CloudServer server({}, {}, durable_cfg(dir.path, &env));
  ASSERT_EQ(server.ingest_status(upload_of(0, 500)), IngestStatus::kAccepted);

  env.set_plan(dead_disk());
  ASSERT_EQ(server.ingest_status(upload_of(1, 501)),
            IngestStatus::kRetryLater);
  ASSERT_EQ(server.health(), ServerHealth::kDegraded);

  // Still broken: recovery reports failure and the server stays degraded.
  StoreFaultPlan still_bad;
  still_bad.open_error = 1.0;
  env.set_plan(still_bad);
  EXPECT_FALSE(server.try_recover_storage());
  EXPECT_EQ(server.health(), ServerHealth::kDegraded);
  EXPECT_EQ(server.ingest_status(upload_of(1, 501)),
            IngestStatus::kRetryLater);

  // Disk healed: recovery succeeds and the deferred upload's retry is
  // accepted — its id was never claimed, so this is NOT a duplicate.
  env.set_plan(StoreFaultPlan{});
  EXPECT_TRUE(server.try_recover_storage());
  EXPECT_EQ(server.health(), ServerHealth::kOk);
  EXPECT_EQ(server.ingest_status(upload_of(1, 501)), IngestStatus::kAccepted);
  // …and a real retransmit is still absorbed.
  EXPECT_EQ(server.ingest_status(upload_of(1, 501)),
            IngestStatus::kDuplicate);

  // try_recover_storage on a healthy server is a no-op success.
  EXPECT_TRUE(server.try_recover_storage());
}

TEST(DegradedServerTest, FailedRecoveryAttemptDoesNotBrickAfterRetirement) {
  ScopedDir dir("rebrick");
  FaultyEnv env{StoreFaultPlan{}};
  ServerDurabilityConfig cfg = durable_cfg(dir.path, &env);
  cfg.segment_bytes = 1;  // rotate every append: one record per segment
  CloudServer server({}, {}, cfg);
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_EQ(server.ingest_status(upload_of(i, 600 + i)),
              IngestStatus::kAccepted);
  }
  // Checkpoint and retire: the chain no longer reaches back to seq 1.
  ASSERT_TRUE(server.checkpoint_now());
  ASSERT_EQ(server.ingest_status(upload_of(3, 603)), IngestStatus::kAccepted);

  env.set_plan(dead_disk());
  ASSERT_EQ(server.ingest_status(upload_of(4, 604)),
            IngestStatus::kRetryLater);
  ASSERT_EQ(server.health(), ServerHealth::kDegraded);

  // The expected operator pattern: the probe fires while the disk is
  // still bad. This failed attempt destroys the checkpointer — recovery
  // after the heal must still find the checkpoint watermark (a server
  // that re-derived it as 0 would demand a chain back to seq 1 and stay
  // bricked on "missing earlier segment" forever).
  StoreFaultPlan still_bad;
  still_bad.read_error = 1.0;
  env.set_plan(still_bad);
  ASSERT_FALSE(server.try_recover_storage());
  ASSERT_EQ(server.health(), ServerHealth::kDegraded);

  env.set_plan(StoreFaultPlan{});
  EXPECT_TRUE(server.try_recover_storage());
  EXPECT_EQ(server.health(), ServerHealth::kOk);
  EXPECT_EQ(server.ingest_status(upload_of(4, 604)), IngestStatus::kAccepted);
}

TEST(DegradedServerTest, RecoveryRefusesChainMissingAckedRecords) {
  ScopedDir dir("lost");
  FaultyEnv env{StoreFaultPlan{}};
  ServerDurabilityConfig cfg = durable_cfg(dir.path, &env);
  cfg.segment_bytes = 1;  // rotate every append: one record per segment
  CloudServer server({}, {}, cfg);
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_EQ(server.ingest_status(upload_of(i, 700 + i)),
              IngestStatus::kAccepted);
  }
  env.set_plan(dead_disk());
  ASSERT_EQ(server.ingest_status(upload_of(3, 703)),
            IngestStatus::kRetryLater);
  ASSERT_EQ(server.health(), ServerHealth::kDegraded);

  // The outage eats the tail of the log: the acked record at seq 3 is
  // gone (plus whatever partial segment the failed append left behind).
  ASSERT_TRUE(
      std::filesystem::remove(svg::store::wal_segment_path(dir.path, 3)));
  std::filesystem::remove(svg::store::wal_segment_path(dir.path, 4));

  // The disk "heals", but acked data is lost: recovery must refuse to
  // declare the log healthy rather than reopen over the hole (verifying
  // from the acked seq itself would make the check a tautology).
  env.set_plan(StoreFaultPlan{});
  EXPECT_FALSE(server.try_recover_storage());
  EXPECT_EQ(server.health(), ServerHealth::kDegraded);
}

TEST(DegradedServerTest, DegradedRetransmitOfAckedUploadIsDuplicate) {
  ScopedDir dir("dupdeg");
  FaultyEnv env{StoreFaultPlan{}};
  CloudServer server({}, {}, durable_cfg(dir.path, &env));
  ASSERT_EQ(server.ingest_status(upload_of(0, 800)), IngestStatus::kAccepted);

  env.set_plan(dead_disk());
  ASSERT_EQ(server.ingest_status(upload_of(1, 801)),
            IngestStatus::kRetryLater);
  ASSERT_EQ(server.health(), ServerHealth::kDegraded);

  // A retransmit of a durably acked id is absorbed as kDuplicate even
  // while degraded — the data is already indexed, and a deferral would
  // burn the client's bounded attempt budget on data the server holds.
  EXPECT_EQ(server.ingest_status(upload_of(0, 800)), IngestStatus::kDuplicate);
  EXPECT_EQ(server.indexed_segments(), 2u);
  // Genuinely new uploads keep deferring.
  EXPECT_EQ(server.ingest_status(upload_of(2, 802)),
            IngestStatus::kRetryLater);
}

TEST(DegradedServerTest, StandaloneSnapshotsGoThroughConfiguredEnv) {
  ScopedDir dir("snapenv");
  FaultyEnv env{StoreFaultPlan{}};
  CloudServer server({}, {}, durable_cfg(dir.path, &env));
  ASSERT_EQ(server.ingest_status(upload_of(0, 850)), IngestStatus::kAccepted);
  const std::string snap = dir.path + "/standalone.svgx";
  ASSERT_TRUE(server.save_snapshot(snap));

  // save/load must see the configured env like every other storage path.
  env.set_plan(dead_disk());
  EXPECT_FALSE(server.save_snapshot(snap));
  StoreFaultPlan unreadable;
  unreadable.read_error = 1.0;
  env.set_plan(unreadable);
  EXPECT_FALSE(server.load_snapshot(snap).has_value());
  env.set_plan(StoreFaultPlan{});
  EXPECT_TRUE(server.load_snapshot(snap).has_value());
}

TEST(DegradedServerTest, OutageIsExactlyOnceAcrossRestart) {
  ScopedDir dir("restart");
  FaultyEnv env{StoreFaultPlan{}};
  {
    CloudServer server({}, {}, durable_cfg(dir.path, &env));
    ASSERT_EQ(server.ingest_status(upload_of(0, 900)),
              IngestStatus::kAccepted);
    env.set_plan(dead_disk());
    ASSERT_EQ(server.ingest_status(upload_of(1, 901)),
              IngestStatus::kRetryLater);
    env.set_plan(StoreFaultPlan{});
    ASSERT_TRUE(server.try_recover_storage());
    ASSERT_EQ(server.ingest_status(upload_of(1, 901)),
              IngestStatus::kAccepted);
    ASSERT_EQ(server.ingest_status(upload_of(2, 902)),
              IngestStatus::kAccepted);
  }
  // Everything acked (and only that) survives the process restart.
  CloudServer restarted({}, {}, durable_cfg(dir.path, nullptr));
  ASSERT_TRUE(restarted.recovery().ok);
  EXPECT_EQ(restarted.indexed_segments(), 6u);  // uploads 0, 1, 2 × 2 reps
  EXPECT_EQ(restarted.known_upload_ids(), 3u);
  EXPECT_EQ(restarted.ingest_status(upload_of(1, 901)),
            IngestStatus::kDuplicate);
}

TEST(DegradedServerTest, UploadQueueBacksOffOnDeferralsAndConverges) {
  ScopedDir dir("queue");
  FaultyEnv env{StoreFaultPlan{}};
  CloudServer server({}, {}, durable_cfg(dir.path, &env));
  env.set_plan(dead_disk());  // degraded from the first attempted upload

  SimClock clock;
  RetryPolicy policy;
  policy.max_attempts = 8;
  UploadQueue queue(policy, /*seed=*/7, &clock);
  constexpr std::size_t kUploads = 6;
  for (std::size_t i = 0; i < kUploads; ++i) {
    UploadMessage msg;
    msg.video_id = i;
    msg.segments = {all_reps()[i]};
    queue.enqueue(msg);
  }

  // The disk heals (and an operator runs recovery) mid-drain.
  std::size_t attempts = 0;
  const auto attempt =
      [&](const std::vector<std::uint8_t>& bytes) -> std::optional<UploadAck> {
    if (++attempts == 10) {
      env.set_plan(StoreFaultPlan{});
      EXPECT_TRUE(server.try_recover_storage());
    }
    const auto ack_bytes = server.handle_upload_acked(bytes);
    if (!ack_bytes) return std::nullopt;
    return decode_upload_ack(*ack_bytes);
  };
  EXPECT_TRUE(queue.drain(attempt));

  const auto& qs = queue.stats();
  EXPECT_EQ(qs.acked, kUploads);
  EXPECT_EQ(qs.exhausted, 0u);
  EXPECT_EQ(qs.duplicate_acks, 0u);
  EXPECT_GE(qs.deferred, 9u);  // every pre-heal attempt was a deferral
  EXPECT_GT(qs.retries, 0u);
  // Deferrals charge backoff, not the 2s ack timeout: had the client
  // treated them as timeouts, 9 pre-heal attempts would cost ≥ 18s.
  EXPECT_GT(clock.now_ms(), 0.0);
  EXPECT_LT(clock.now_ms(), 9 * policy.attempt_timeout_ms);

  EXPECT_EQ(server.indexed_segments(), kUploads);
  EXPECT_EQ(server.stats().uploads_deferred, qs.deferred);
}

}  // namespace
