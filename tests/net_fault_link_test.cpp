// net::FaultyLink — deterministic seed-driven fault injection. The core
// contract: the same FaultPlan replays the same faults message-for-message,
// and every configured fault type actually fires with roughly its
// configured probability.

#include <gtest/gtest.h>

#include <vector>

#include "net/fault.hpp"
#include "net/wire.hpp"

namespace {

using namespace svg::net;

std::vector<std::uint8_t> payload(std::uint8_t fill, std::size_t n = 64) {
  return std::vector<std::uint8_t>(n, fill);
}

TEST(FaultLinkTest, CleanPlanDeliversEverythingUnchanged) {
  Link link;
  FaultyLink faulty(link, FaultPlan{});
  for (int i = 0; i < 50; ++i) {
    const auto msg = payload(static_cast<std::uint8_t>(i));
    const auto d = faulty.transfer_up(msg);
    ASSERT_EQ(d.copies.size(), 1u);
    EXPECT_EQ(d.copies[0], msg);
    EXPECT_FALSE(d.lost);
    EXPECT_GT(d.latency_ms, 0.0);
  }
  const auto s = faulty.stats();
  EXPECT_EQ(s.attempts, 50u);
  EXPECT_EQ(s.delivered, 50u);
  EXPECT_EQ(s.dropped + s.duplicated + s.reordered + s.corrupted +
                s.disconnect_drops,
            0u);
}

TEST(FaultLinkTest, SameSeedReplaysIdenticalFaultSequence) {
  FaultPlan plan;
  plan.seed = 42;
  plan.drop = 0.2;
  plan.duplicate = 0.15;
  plan.reorder = 0.1;
  plan.corrupt = 0.1;

  auto run = [&] {
    Link link;
    FaultyLink faulty(link, plan);
    std::vector<std::vector<std::vector<std::uint8_t>>> deliveries;
    for (int i = 0; i < 200; ++i) {
      deliveries.push_back(
          faulty.transfer_up(payload(static_cast<std::uint8_t>(i))).copies);
    }
    return deliveries;
  };
  EXPECT_EQ(run(), run());
}

TEST(FaultLinkTest, DifferentSeedsProduceDifferentFaults) {
  auto run = [](std::uint64_t seed) {
    FaultPlan plan;
    plan.seed = seed;
    plan.drop = 0.3;
    Link link;
    FaultyLink faulty(link, plan);
    std::vector<bool> lost;
    for (int i = 0; i < 100; ++i) {
      lost.push_back(faulty.transfer_up(payload(1)).lost);
    }
    return lost;
  };
  EXPECT_NE(run(1), run(2));
}

TEST(FaultLinkTest, DropRateIsRoughlyHonored) {
  FaultPlan plan;
  plan.seed = 7;
  plan.drop = 0.25;
  Link link;
  FaultyLink faulty(link, plan);
  for (int i = 0; i < 4000; ++i) (void)faulty.transfer_up(payload(1));
  const auto s = faulty.stats();
  const double rate = static_cast<double>(s.dropped) / s.attempts;
  EXPECT_NEAR(rate, 0.25, 0.03);
}

TEST(FaultLinkTest, DuplicateDeliversTwoIdenticalCopies) {
  FaultPlan plan;
  plan.seed = 9;
  plan.duplicate = 1.0;  // every delivery duplicated
  Link link;
  FaultyLink faulty(link, plan);
  const auto msg = payload(0xAB);
  const auto d = faulty.transfer_up(msg);
  ASSERT_EQ(d.copies.size(), 2u);
  EXPECT_EQ(d.copies[0], msg);
  EXPECT_EQ(d.copies[1], msg);
  EXPECT_EQ(faulty.stats().duplicated, 1u);
}

TEST(FaultLinkTest, ReorderHoldsMessageUntilNextDelivery) {
  FaultPlan plan;
  plan.seed = 11;
  plan.reorder = 1.0;  // first message held; the guard prevents re-holding
  Link link;
  FaultyLink faulty(link, plan);
  const auto first = payload(0x01);
  const auto second = payload(0x02);
  const auto d1 = faulty.transfer_up(first);
  EXPECT_TRUE(d1.copies.empty());
  EXPECT_TRUE(d1.lost);  // from the sender's view, for now
  const auto d2 = faulty.transfer_up(second);
  ASSERT_EQ(d2.copies.size(), 2u);
  EXPECT_EQ(d2.copies[0], second);  // arrives first…
  EXPECT_EQ(d2.copies[1], first);   // …then the held one
  EXPECT_EQ(faulty.stats().reordered, 1u);
}

TEST(FaultLinkTest, CorruptionFlipsBytesButKeepsLength) {
  FaultPlan plan;
  plan.seed = 13;
  plan.corrupt = 1.0;
  Link link;
  FaultyLink faulty(link, plan);
  const auto msg = payload(0x00, 256);
  const auto d = faulty.transfer_up(msg);
  ASSERT_EQ(d.copies.size(), 1u);
  EXPECT_EQ(d.copies[0].size(), msg.size());
  EXPECT_NE(d.copies[0], msg);
  EXPECT_GE(faulty.stats().corrupted, 1u);
}

TEST(FaultLinkTest, DisconnectWindowDropsEverythingInsideIt) {
  SimClock clock;
  FaultPlan plan;
  plan.seed = 17;
  plan.disconnects.push_back({0.0, 1e9});  // down for a long time
  Link link;
  FaultyLink faulty(link, plan, &clock);
  for (int i = 0; i < 10; ++i) {
    const auto d = faulty.transfer_up(payload(1));
    EXPECT_TRUE(d.lost);
    EXPECT_TRUE(d.copies.empty());
  }
  EXPECT_EQ(faulty.stats().disconnect_drops, 10u);
}

TEST(FaultLinkTest, TransfersAdvanceTheSimClock) {
  SimClock clock;
  Link link;
  FaultyLink faulty(link, FaultPlan{}, &clock);
  EXPECT_EQ(clock.now_ms(), 0.0);
  (void)faulty.transfer_up(payload(1, 1000));
  const double after_one = clock.now_ms();
  EXPECT_GT(after_one, 0.0);
  (void)faulty.transfer_down(payload(1, 1000));
  EXPECT_GT(clock.now_ms(), after_one);
}

TEST(FaultLinkTest, AirtimeIsChargedOnTheInnerLinkEvenForDrops) {
  FaultPlan plan;
  plan.seed = 19;
  plan.drop = 1.0;
  Link link;
  FaultyLink faulty(link, plan);
  for (int i = 0; i < 5; ++i) (void)faulty.transfer_up(payload(1));
  EXPECT_EQ(link.stats().messages_up, 5u);
  EXPECT_EQ(faulty.stats().delivered, 0u);
}

}  // namespace
