// Idempotent ingest: the server absorbs retransmits by upload_id, on both
// index backends, and the dedup set survives WAL replay and checkpointing —
// a crashed server that replays its log still indexes each upload exactly
// once.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "net/server.hpp"
#include "net/wire.hpp"
#include "sim/crowd.hpp"
#include "util/rng.hpp"

namespace {

using namespace svg::net;
using svg::core::RepresentativeFov;

struct ScopedDir {
  explicit ScopedDir(const std::string& tag) {
    path = (std::filesystem::temp_directory_path() /
            ("svg_idem_test_" + tag + "_" + std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~ScopedDir() { std::filesystem::remove_all(path); }
  std::string path;
};

UploadMessage sample_upload(std::uint64_t upload_id, std::uint64_t video_id,
                            std::size_t n, std::uint64_t seed) {
  svg::sim::CityModel city;
  svg::util::Xoshiro256 rng(seed);
  UploadMessage msg;
  msg.upload_id = upload_id;
  msg.video_id = video_id;
  msg.segments = svg::sim::random_representative_fovs(
      n, city, 1'400'000'000'000, 3'600'000, rng);
  return msg;
}

ServerIndexConfig backend_config(ServerIndexConfig::Backend b) {
  return b == ServerIndexConfig::Backend::kConcurrent
             ? ServerIndexConfig{}
             : ServerIndexConfig(ServerIndexConfig::Backend::kSharded, 4);
}

class IdempotentIngestTest
    : public ::testing::TestWithParam<ServerIndexConfig::Backend> {};

TEST_P(IdempotentIngestTest, SameEncodedUploadNTimesIndexesOnce) {
  CloudServer server(backend_config(GetParam()));
  const auto msg = sample_upload(777, 1, 10, 3);
  const auto bytes = encode_upload(msg);
  for (int i = 0; i < 25; ++i) {
    EXPECT_TRUE(server.handle_upload(bytes));  // dedup is success, not error
  }
  EXPECT_EQ(server.indexed_segments(), 10u);
  const auto s = server.stats();
  EXPECT_EQ(s.uploads_accepted, 1u);
  EXPECT_EQ(s.uploads_deduped, 24u);
  EXPECT_EQ(s.uploads_rejected, 0u);
  EXPECT_EQ(server.known_upload_ids(), 1u);
}

TEST_P(IdempotentIngestTest, AckedPathReportsDuplicateStatus) {
  CloudServer server(backend_config(GetParam()));
  const auto bytes = encode_upload(sample_upload(42, 2, 6, 5));

  const auto first = server.handle_upload_acked(bytes);
  ASSERT_TRUE(first.has_value());
  const auto ack1 = decode_upload_ack(*first);
  ASSERT_TRUE(ack1.has_value());
  EXPECT_EQ(ack1->upload_id, 42u);
  EXPECT_EQ(ack1->status, UploadAckStatus::kAccepted);
  EXPECT_EQ(ack1->segments_indexed, 6u);

  const auto second = server.handle_upload_acked(bytes);
  ASSERT_TRUE(second.has_value());
  const auto ack2 = decode_upload_ack(*second);
  ASSERT_TRUE(ack2.has_value());
  EXPECT_EQ(ack2->status, UploadAckStatus::kDuplicate);
  EXPECT_EQ(server.indexed_segments(), 6u);
}

TEST_P(IdempotentIngestTest, LegacyIdlessUploadsBypassDedup) {
  CloudServer server(backend_config(GetParam()));
  const auto msg = sample_upload(0, 3, 4, 7);  // upload_id 0 = legacy v1
  const auto bytes = encode_upload(msg);
  EXPECT_TRUE(server.handle_upload(bytes));
  EXPECT_TRUE(server.handle_upload(bytes));
  // No id, no dedup: indexed twice, exactly the pre-upload_id behaviour.
  EXPECT_EQ(server.indexed_segments(), 8u);
  EXPECT_EQ(server.stats().uploads_deduped, 0u);
  EXPECT_EQ(server.known_upload_ids(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    BothBackends, IdempotentIngestTest,
    ::testing::Values(ServerIndexConfig::Backend::kConcurrent,
                      ServerIndexConfig::Backend::kSharded),
    [](const auto& info) {
      return info.param == ServerIndexConfig::Backend::kConcurrent
                 ? "Concurrent"
                 : "Sharded";
    });

TEST(IdempotentIngestDurabilityTest, DedupSurvivesWalReplay) {
  ScopedDir dir("wal");
  const auto bytes = encode_upload(sample_upload(1001, 1, 8, 11));
  {
    ServerDurabilityConfig dcfg;
    dcfg.data_dir = dir.path;
    CloudServer server({}, {}, dcfg);
    EXPECT_TRUE(server.handle_upload(bytes));
    EXPECT_TRUE(server.handle_upload(bytes));
    EXPECT_EQ(server.indexed_segments(), 8u);
    server.sync_wal();
  }
  {
    ServerDurabilityConfig dcfg;
    dcfg.data_dir = dir.path;
    CloudServer server({}, {}, dcfg);
    EXPECT_EQ(server.indexed_segments(), 8u);
    EXPECT_EQ(server.known_upload_ids(), 1u);
    // A late retransmit after the crash is still absorbed.
    EXPECT_TRUE(server.handle_upload(bytes));
    EXPECT_EQ(server.indexed_segments(), 8u);
    EXPECT_EQ(server.stats().uploads_deduped, 1u);
  }
}

TEST(IdempotentIngestDurabilityTest, DedupSurvivesCheckpointAndRestart) {
  ScopedDir dir("ckpt");
  std::vector<std::vector<std::uint8_t>> uploads;
  for (std::uint64_t i = 0; i < 6; ++i) {
    uploads.push_back(
        encode_upload(sample_upload(2000 + i, i + 1, 5, 20 + i)));
  }
  {
    ServerDurabilityConfig dcfg;
    dcfg.data_dir = dir.path;
    CloudServer server({}, {}, dcfg);
    // First half before the checkpoint…
    for (std::size_t i = 0; i < 3; ++i)
      EXPECT_TRUE(server.handle_upload(uploads[i]));
    ASSERT_TRUE(server.checkpoint_now());
    // …second half after it, so recovery merges snapshot ids + WAL ids.
    for (std::size_t i = 3; i < uploads.size(); ++i)
      EXPECT_TRUE(server.handle_upload(uploads[i]));
    server.sync_wal();
    EXPECT_EQ(server.known_upload_ids(), 6u);
  }
  {
    ServerDurabilityConfig dcfg;
    dcfg.data_dir = dir.path;
    CloudServer server({}, {}, dcfg);
    EXPECT_EQ(server.indexed_segments(), 30u);
    EXPECT_EQ(server.known_upload_ids(), 6u);
    // Every original upload replayed post-restart dedups — exactly once.
    for (const auto& u : uploads) EXPECT_TRUE(server.handle_upload(u));
    EXPECT_EQ(server.indexed_segments(), 30u);
    EXPECT_EQ(server.stats().uploads_deduped, 6u);
  }
}

TEST(IdempotentIngestDurabilityTest, ShardedBackendRecoversDedupSet) {
  ScopedDir dir("sharded");
  const auto bytes = encode_upload(sample_upload(4242, 7, 9, 31));
  {
    ServerDurabilityConfig dcfg;
    dcfg.data_dir = dir.path;
    CloudServer server(
        ServerIndexConfig(ServerIndexConfig::Backend::kSharded, 4), {}, dcfg);
    EXPECT_TRUE(server.handle_upload(bytes));
    ASSERT_TRUE(server.checkpoint_now());
  }
  {
    ServerDurabilityConfig dcfg;
    dcfg.data_dir = dir.path;
    CloudServer server(
        ServerIndexConfig(ServerIndexConfig::Backend::kSharded, 4), {}, dcfg);
    EXPECT_EQ(server.indexed_segments(), 9u);
    EXPECT_TRUE(server.handle_upload(bytes));
    EXPECT_EQ(server.indexed_segments(), 9u);
    EXPECT_EQ(server.stats().uploads_deduped, 1u);
  }
}

}  // namespace
