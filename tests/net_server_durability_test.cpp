#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "net/server.hpp"
#include "obs/families.hpp"
#include "sim/crowd.hpp"
#include "store/recovery.hpp"
#include "store/wal.hpp"
#include "util/rng.hpp"

namespace {

using namespace svg::net;
using svg::core::RepresentativeFov;

struct ScopedDir {
  explicit ScopedDir(const std::string& tag) {
    path = (std::filesystem::temp_directory_path() /
            ("svg_durab_test_" + tag + "_" + std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~ScopedDir() { std::filesystem::remove_all(path); }
  std::string path;
};

std::vector<RepresentativeFov> sample_reps(std::size_t n,
                                           std::uint64_t seed = 1) {
  svg::sim::CityModel city;
  svg::util::Xoshiro256 rng(seed);
  return svg::sim::random_representative_fovs(n, city, 1'400'000'000'000,
                                              86'400'000, rng);
}

void ingest_in_batches(CloudServer& server,
                       const std::vector<RepresentativeFov>& reps,
                       std::size_t batch) {
  for (std::size_t i = 0; i < reps.size(); i += batch) {
    UploadMessage msg;
    msg.video_id = i;
    const auto end = std::min(i + batch, reps.size());
    msg.segments.assign(reps.begin() + static_cast<std::ptrdiff_t>(i),
                        reps.begin() + static_cast<std::ptrdiff_t>(end));
    server.ingest(msg);
  }
}

TEST(ServerDurabilityTest, NonDurableByDefault) {
  CloudServer server;
  EXPECT_FALSE(server.durable());
  EXPECT_FALSE(server.recovery().ok);
  EXPECT_FALSE(server.checkpoint_now());
  EXPECT_EQ(server.last_wal_seq(), 0u);
  EXPECT_EQ(server.durable_wal_seq(), 0u);
}

TEST(ServerDurabilityTest, RestartRestoresEveryIngestedSegment) {
  ScopedDir dir("restart");
  const auto reps = sample_reps(300, 7);

  svg::retrieval::Query q;
  q.center = svg::sim::CityModel{}.center;
  q.radius_m = 500.0;
  q.t_start = 1'400'000'000'000;
  q.t_end = q.t_start + 86'400'000;

  std::size_t expected_hits = 0;
  {
    ServerDurabilityConfig dcfg;
    dcfg.data_dir = dir.path;
    CloudServer server({}, {}, dcfg);
    ASSERT_TRUE(server.durable());
    EXPECT_TRUE(server.recovery().ok);
    ingest_in_batches(server, reps, 25);
    EXPECT_EQ(server.last_wal_seq(), 12u);  // 300/25 uploads
    expected_hits = server.search(q).size();
    server.sync_wal();
    EXPECT_EQ(server.durable_wal_seq(), 12u);
  }  // no snapshot taken: restart replays purely from the WAL
  {
    ServerDurabilityConfig dcfg;
    dcfg.data_dir = dir.path;
    CloudServer server({}, {}, dcfg);
    EXPECT_TRUE(server.recovery().ok);
    EXPECT_EQ(server.recovery().wal_records_replayed, 12u);
    EXPECT_EQ(server.indexed_segments(), reps.size());
    EXPECT_EQ(server.search(q).size(), expected_hits);
    EXPECT_EQ(server.last_wal_seq(), 12u);
  }
}

TEST(ServerDurabilityTest, CheckpointRetiresCoveredSegments) {
  ScopedDir dir("checkpoint");
  const auto reps = sample_reps(400, 9);
  {
    ServerDurabilityConfig dcfg;
    dcfg.data_dir = dir.path;
    dcfg.segment_bytes = 1024;  // force a multi-segment chain
    CloudServer server({}, {}, dcfg);
    ingest_in_batches(server, reps, 10);
    const auto before = svg::store::wal_dump(dir.path);
    ASSERT_GT(before.segments.size(), 2u);

    ASSERT_TRUE(server.checkpoint_now());
    // Dump relative to the checkpoint watermark — the chain no longer
    // reaches back to seq 1, and that is correct.
    const auto after =
        svg::store::wal_dump(dir.path, server.last_wal_seq());
    EXPECT_TRUE(after.error.empty()) << after.error;
    EXPECT_LT(after.segments.size(), before.segments.size());
    EXPECT_EQ(after.segments.size(), 1u);  // only the active segment left
    // Exactly one checkpoint file.
    EXPECT_EQ(svg::store::list_checkpoints(dir.path).size(), 1u);

    // Re-checkpointing with nothing new is a no-op success.
    ASSERT_TRUE(server.checkpoint_now());
  }
  // Restart: snapshot + (empty) WAL tail restores everything.
  {
    ServerDurabilityConfig dcfg;
    dcfg.data_dir = dir.path;
    CloudServer server({}, {}, dcfg);
    EXPECT_TRUE(server.recovery().ok);
    EXPECT_EQ(server.recovery().snapshot_records, reps.size());
    EXPECT_EQ(server.recovery().wal_records_replayed, 0u);
    EXPECT_EQ(server.indexed_segments(), reps.size());
  }
}

TEST(ServerDurabilityTest, MissingMiddleSegmentThrowsOnConstruction) {
  ScopedDir dir("missing");
  {
    ServerDurabilityConfig dcfg;
    dcfg.data_dir = dir.path;
    dcfg.segment_bytes = 1024;
    CloudServer server({}, {}, dcfg);
    ingest_in_batches(server, sample_reps(400, 11), 10);
    ASSERT_GT(svg::store::wal_dump(dir.path).segments.size(), 2u);
  }
  const auto dump = svg::store::wal_dump(dir.path);
  std::filesystem::remove(dump.segments[1].path);

  ServerDurabilityConfig dcfg;
  dcfg.data_dir = dir.path;
  EXPECT_THROW(CloudServer({}, {}, dcfg), std::runtime_error);
}

TEST(ServerDurabilityTest, WalMetricsAccountForIngest) {
  ScopedDir dir("metrics");
  auto& m = svg::obs::wal_metrics();
  const auto appends_before = m.appends.value();
  const auto bytes_before = m.bytes.value();
  const auto fsyncs_before = m.fsyncs.value();
  const auto checkpoints_before = m.checkpoints.value();
  {
    ServerDurabilityConfig dcfg;
    dcfg.data_dir = dir.path;
    dcfg.fsync = svg::store::FsyncPolicy::kAlways;
    CloudServer server({}, {}, dcfg);
    ingest_in_batches(server, sample_reps(100, 13), 10);
    ASSERT_TRUE(server.checkpoint_now());
  }
  EXPECT_EQ(m.appends.value(), appends_before + 10);
  EXPECT_GT(m.bytes.value(), bytes_before);
  EXPECT_GT(m.fsyncs.value(), fsyncs_before);
  EXPECT_EQ(m.checkpoints.value(), checkpoints_before + 1);
}

TEST(ServerDurabilityTest, BackgroundCheckpointerRunsWithoutManualCalls) {
  ScopedDir dir("background");
  {
    ServerDurabilityConfig dcfg;
    dcfg.data_dir = dir.path;
    dcfg.checkpoint_interval_ms = 5;
    CloudServer server({}, {}, dcfg);
    ingest_in_batches(server, sample_reps(200, 15), 10);
    // Wait (bounded) for the background thread to capture a checkpoint.
    for (int i = 0; i < 200; ++i) {
      if (!svg::store::list_checkpoints(dir.path).empty()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  EXPECT_FALSE(svg::store::list_checkpoints(dir.path).empty());
  ServerDurabilityConfig dcfg;
  dcfg.data_dir = dir.path;
  CloudServer server({}, {}, dcfg);
  EXPECT_EQ(server.indexed_segments(), 200u);
}

}  // namespace
