// CloudServer stats semantics pinned: the single consistent read path in
// stats(), reset_stats(), and exact counting under a multi-threaded
// upload/query hammer — both the per-instance ServerStats and the
// process-wide svg_server_* metric family must sum exactly (no lost
// increments). Run with -DSVG_SANITIZE=thread to race-check the whole path.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"
#include "obs/families.hpp"
#include "sim/sensors.hpp"
#include "sim/trajectory.hpp"

namespace {

using namespace svg::net;
using svg::core::CameraIntrinsics;
using svg::core::SimilarityModel;
using svg::geo::LatLng;
using svg::geo::offset_m;

const LatLng kCenter{39.9042, 116.4074};
const CameraIntrinsics kCam{30.0, 100.0};

/// One wire-encoded upload captured from a short walk towards the centre.
std::vector<std::uint8_t> make_upload(std::uint64_t video_id,
                                      std::size_t* segments_out = nullptr) {
  svg::sim::StraightTrajectory traj(offset_m(kCenter, 0, -50), 0.0, 1.4,
                                    30.0, 0.0);
  svg::sim::SensorSampler sampler(svg::sim::SensorNoiseConfig::ideal(),
                                  {30.0, 1'000'000});
  svg::util::Xoshiro256 rng(video_id);
  const SimilarityModel model(kCam);
  MobileClient client(video_id, model, {0.5});
  const auto msg =
      capture_session(client, sampler.sample(traj, rng));
  if (segments_out != nullptr) *segments_out = msg.segments.size();
  return encode_upload(msg);
}

std::vector<std::uint8_t> make_query_bytes() {
  QueryMessage qm;
  qm.t_start = 1'000'000;
  qm.t_end = 1'000'000 + 30'000;
  qm.center = kCenter;
  qm.radius_m = 40.0;
  qm.top_n = 5;
  return encode_query(qm);
}

TEST(ServerStatsTest, SnapshotReflectsAllFourCounters) {
  CloudServer server({}, {.camera = kCam});
  std::size_t segments = 0;
  const auto upload = make_upload(1, &segments);
  ASSERT_TRUE(server.handle_upload(upload));
  EXPECT_FALSE(
      server.handle_upload(std::vector<std::uint8_t>{0xFF, 0x00, 0x12}));
  ASSERT_TRUE(server.handle_query(make_query_bytes()).has_value());

  const ServerStats s = server.stats();
  EXPECT_EQ(s.uploads_accepted, 1u);
  EXPECT_EQ(s.uploads_rejected, 1u);
  EXPECT_EQ(s.segments_indexed, segments);
  EXPECT_EQ(s.queries_served, 1u);
}

TEST(ServerStatsTest, ResetZeroesTheSnapshot) {
  CloudServer server({}, {.camera = kCam});
  ASSERT_TRUE(server.handle_upload(make_upload(2)));
  ASSERT_TRUE(server.handle_query(make_query_bytes()).has_value());
  server.reset_stats();
  const ServerStats s = server.stats();
  EXPECT_EQ(s.uploads_accepted, 0u);
  EXPECT_EQ(s.uploads_rejected, 0u);
  EXPECT_EQ(s.segments_indexed, 0u);
  EXPECT_EQ(s.queries_served, 0u);
  // The index itself is untouched — reset_stats is counters only.
  EXPECT_GT(server.indexed_segments(), 0u);
}

// N threads × M iterations of accept + reject + query; every counter must
// sum exactly, in ServerStats and in the process-wide metric family alike.
TEST(ServerStatsTest, ConcurrentHammerLosesNoIncrements) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kIters = 200;

  CloudServer server({}, {.camera = kCam});
  std::size_t segments_per_upload = 0;
  const auto upload = make_upload(3, &segments_per_upload);
  ASSERT_GT(segments_per_upload, 0u);
  const auto query = make_query_bytes();
  const std::vector<std::uint8_t> garbage{0xDE, 0xAD, 0xBE, 0xEF};

  // Process-wide counters are shared across tests in this binary, so assert
  // on deltas.
  auto& m = svg::obs::server_metrics();
  const auto accepted0 = m.uploads_accepted.value();
  const auto rejected0 = m.uploads_rejected.value();
  const auto indexed0 = m.segments_indexed.value();
  const auto queries0 = m.queries.value();
  const auto upload_obs0 = m.upload_ns.count();
  const auto query_obs0 = m.query_ns.count();

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::size_t i = 0; i < kIters; ++i) {
        EXPECT_TRUE(server.handle_upload(upload));
        EXPECT_FALSE(server.handle_upload(garbage));
        EXPECT_TRUE(server.handle_query(query).has_value());
      }
    });
  }
  // A concurrent reader pins the stats() ordering invariant: any accepted
  // upload it observes must have all of its segments already visible.
  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      const ServerStats s = server.stats();
      EXPECT_GE(s.segments_indexed, s.uploads_accepted * segments_per_upload);
    }
  });
  for (auto& t : threads) t.join();
  done.store(true, std::memory_order_release);
  reader.join();

  constexpr std::uint64_t kOps = kThreads * kIters;
  const ServerStats s = server.stats();
  EXPECT_EQ(s.uploads_accepted, kOps);
  EXPECT_EQ(s.uploads_rejected, kOps);
  EXPECT_EQ(s.segments_indexed, kOps * segments_per_upload);
  EXPECT_EQ(s.queries_served, kOps);
  EXPECT_EQ(server.indexed_segments(), kOps * segments_per_upload);

  EXPECT_EQ(m.uploads_accepted.value() - accepted0, kOps);
  EXPECT_EQ(m.uploads_rejected.value() - rejected0, kOps);
  EXPECT_EQ(m.segments_indexed.value() - indexed0, kOps * segments_per_upload);
  EXPECT_EQ(m.queries.value() - queries0, kOps);
  // Histogram observation counts line up with the op counts: one upload_ns
  // sample per handle_upload (accepted or rejected), one query_ns per query.
  EXPECT_EQ(m.upload_ns.count() - upload_obs0, 2 * kOps);
  EXPECT_EQ(m.query_ns.count() - query_obs0, kOps);
}

}  // namespace
