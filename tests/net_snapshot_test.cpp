#include "net/snapshot.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "index/fov_index.hpp"
#include "store/crc32c.hpp"
#include "store/env.hpp"
#include "net/server.hpp"
#include "sim/crowd.hpp"
#include "util/rng.hpp"

namespace {

using namespace svg::net;
using svg::core::RepresentativeFov;

std::vector<RepresentativeFov> sample_reps(std::size_t n,
                                           std::uint64_t seed = 1) {
  svg::sim::CityModel city;
  svg::util::Xoshiro256 rng(seed);
  return svg::sim::random_representative_fovs(n, city, 1'400'000'000'000,
                                              86'400'000, rng);
}

TEST(SnapshotCodecTest, RoundTripPreservesRecords) {
  const auto reps = sample_reps(500);
  const auto back = decode_snapshot(encode_snapshot(reps));
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), reps.size());
  for (std::size_t i = 0; i < reps.size(); ++i) {
    EXPECT_EQ((*back)[i].video_id, reps[i].video_id);
    EXPECT_EQ((*back)[i].segment_id, reps[i].segment_id);
    EXPECT_NEAR((*back)[i].fov.p.lat, reps[i].fov.p.lat, 1e-6);
    EXPECT_NEAR((*back)[i].fov.p.lng, reps[i].fov.p.lng, 1e-6);
    EXPECT_NEAR((*back)[i].fov.theta_deg, reps[i].fov.theta_deg, 0.011);
    EXPECT_EQ((*back)[i].t_start, reps[i].t_start);
    EXPECT_EQ((*back)[i].t_end, reps[i].t_end);
  }
}

TEST(SnapshotCodecTest, EmptySnapshot) {
  const auto back = decode_snapshot(encode_snapshot({}));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->empty());
}

TEST(SnapshotCodecTest, CompactSize) {
  const auto reps = sample_reps(10'000);
  const auto bytes = encode_snapshot(reps);
  // Delta coding should keep this around 20-25 B/record even for randomly
  // ordered records.
  EXPECT_LT(bytes.size(), 30u * reps.size());
}

TEST(SnapshotCodecTest, RejectsBadMagicVersionAndTruncation) {
  const auto reps = sample_reps(10);
  auto bytes = encode_snapshot(reps);
  {
    auto bad = bytes;
    bad[0] = 'x';
    EXPECT_FALSE(decode_snapshot(bad).has_value());
  }
  {
    auto bad = bytes;
    bad[4] = 0xFF;  // version
    EXPECT_FALSE(decode_snapshot(bad).has_value());
  }
  {
    auto bad = bytes;
    bad.resize(bad.size() / 2);
    EXPECT_FALSE(decode_snapshot(bad).has_value());
  }
  EXPECT_FALSE(decode_snapshot({}).has_value());
}

TEST(SnapshotCodecTest, CrcTrailerDetectsBitFlipAnywhere) {
  const auto reps = sample_reps(50, 6);
  const auto bytes = encode_snapshot(reps);
  ASSERT_TRUE(decode_snapshot(bytes).has_value());
  // Flip one bit in a sampling of positions across header, body, and the
  // CRC trailer itself — every flip must turn into a clean decode failure.
  for (std::size_t i = 6; i < bytes.size(); i += 7) {
    auto bad = bytes;
    bad[i] ^= 0x10;
    EXPECT_FALSE(decode_snapshot(bad).has_value()) << "flip at byte " << i;
  }
}

TEST(SnapshotCodecTest, CrcTrailerDetectsTruncation) {
  const auto reps = sample_reps(50, 7);
  const auto bytes = encode_snapshot(reps);
  // Any shortened prefix long enough to carry magic+version must fail on
  // the CRC, including cuts inside the trailer itself.
  for (std::size_t keep = 6; keep < bytes.size(); ++keep) {
    EXPECT_FALSE(
        decode_snapshot({bytes.data(), keep}).has_value())
        << "truncated to " << keep;
  }
}

TEST(SnapshotCodecTest, LastSeqRoundTripsThroughV2) {
  const auto reps = sample_reps(20, 8);
  const auto full = decode_snapshot_full(encode_snapshot(reps, 12345));
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(full->last_seq, 12345u);
  EXPECT_EQ(full->version, kSnapshotVersion);
  EXPECT_EQ(full->reps.size(), reps.size());
}

TEST(SnapshotCodecTest, V1FilesRemainReadable) {
  const auto reps = sample_reps(30, 9);
  // Hand-build the v1 layout: magic | u16 version=1 | varint count |
  // records — no last_seq, no CRC trailer.
  svg::util::ByteWriter w;
  const std::uint8_t magic[4] = {'S', 'V', 'G', 'X'};
  w.put_bytes(magic);
  w.put_u16(1);
  w.put_varint(reps.size());
  svg::store::put_rep_records(w, reps);
  const auto bytes = w.take();

  const auto full = decode_snapshot_full(bytes);
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(full->version, 1u);
  EXPECT_EQ(full->last_seq, 0u);
  ASSERT_EQ(full->reps.size(), reps.size());
  for (std::size_t i = 0; i < reps.size(); ++i) {
    EXPECT_EQ(full->reps[i].video_id, reps[i].video_id);
    EXPECT_EQ(full->reps[i].t_start, reps[i].t_start);
  }
}

TEST(SnapshotCodecTest, UploadIdsRoundTripThroughV3) {
  const auto reps = sample_reps(20, 10);
  const std::vector<std::uint64_t> ids{
      0xDEADBEEFULL, 3, 0xFFFFFFFFFFFFFFFFULL, 42, 7'000'000'000ULL};
  const auto full =
      svg::store::decode_snapshot_full(encode_snapshot(reps, 99, ids));
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(full->version, kSnapshotVersion);
  EXPECT_EQ(full->last_seq, 99u);
  EXPECT_EQ(full->reps.size(), reps.size());
  auto want = ids;
  std::sort(want.begin(), want.end());
  EXPECT_EQ(full->upload_ids, want);  // stored sorted (delta-encoded)
}

TEST(SnapshotCodecTest, V2FilesWithoutUploadIdsRemainReadable) {
  const auto reps = sample_reps(15, 11);
  // Hand-build the v2 layout: magic | u16 version=2 | u64 last_seq |
  // varint count | records | crc32c trailer — no upload_ids section.
  svg::util::ByteWriter w;
  const std::uint8_t magic[4] = {'S', 'V', 'G', 'X'};
  w.put_bytes(magic);
  w.put_u16(2);
  w.put_u64(777);
  w.put_varint(reps.size());
  svg::store::put_rep_records(w, reps);
  w.put_u32(svg::store::crc32c(w.bytes()));
  const auto full = svg::store::decode_snapshot_full(w.take());
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(full->version, 2u);
  EXPECT_EQ(full->last_seq, 777u);
  EXPECT_EQ(full->reps.size(), reps.size());
  EXPECT_TRUE(full->upload_ids.empty());
}

TEST(SnapshotCodecTest, AbsurdUploadIdCountRejectedBeforeAllocation) {
  // A corrupted id_count must fail the remaining-bytes guard, not reserve
  // gigabytes. Build a v3 buffer with no reps and a huge claimed count.
  svg::util::ByteWriter w;
  const std::uint8_t magic[4] = {'S', 'V', 'G', 'X'};
  w.put_bytes(magic);
  w.put_u16(3);
  w.put_u64(0);
  w.put_varint(0);            // no reps
  w.put_varint(1ULL << 40);   // claimed: a trillion upload ids
  w.put_varint(1);            // ...one byte of them present
  w.put_u32(svg::store::crc32c(w.bytes()));
  EXPECT_FALSE(svg::store::decode_snapshot_full(w.take()).has_value());
}

// --- version compat matrix under injected I/O faults -------------------------
//
// Snapshot files of every on-disk generation (v1: no seq/CRC, v2: seq+CRC,
// v3: seq+dedup ids+CRC) must keep loading through the pluggable Env — and
// must fail CLEANLY (nullopt, no crash, no partial data) when the read is
// injected to fail or the file comes back short.

/// Serialize `reps` in the given historical snapshot layout.
std::vector<std::uint8_t> snapshot_bytes_v(std::uint16_t version,
                                           const std::vector<RepresentativeFov>& reps) {
  if (version >= 3) {
    return encode_snapshot(reps, 99, {5, 7, 11});
  }
  svg::util::ByteWriter w;
  const std::uint8_t magic[4] = {'S', 'V', 'G', 'X'};
  w.put_bytes(magic);
  w.put_u16(version);
  if (version == 2) w.put_u64(777);
  w.put_varint(reps.size());
  svg::store::put_rep_records(w, reps);
  if (version == 2) w.put_u32(svg::store::crc32c(w.bytes()));
  return w.take();
}

std::string write_snapshot_file(const std::string& tag,
                                const std::vector<std::uint8_t>& bytes) {
  const std::string path =
      (std::filesystem::temp_directory_path() / ("svg_snap_compat_" + tag))
          .string();
  auto f = svg::store::Env::posix().open(path,
                                         svg::store::OpenMode::kTruncate);
  EXPECT_TRUE(f != nullptr);
  EXPECT_TRUE(f->write(bytes));
  return path;
}

TEST(SnapshotFileTest, CompatMatrixEveryVersionLoadsThroughEnv) {
  const auto reps = sample_reps(25, 12);
  svg::store::FaultyEnv env{svg::store::StoreFaultPlan{}};
  for (std::uint16_t v = 1; v <= 3; ++v) {
    const auto path = write_snapshot_file("v" + std::to_string(v),
                                          snapshot_bytes_v(v, reps));
    const auto full = svg::store::load_snapshot_file_full(path, &env);
    ASSERT_TRUE(full.has_value()) << "version " << v;
    EXPECT_EQ(full->version, v);
    EXPECT_EQ(full->reps.size(), reps.size()) << "version " << v;
    EXPECT_EQ(full->last_seq, v == 1 ? 0u : (v == 2 ? 777u : 99u));
    EXPECT_EQ(full->upload_ids.size(), v == 3 ? 3u : 0u);
    std::remove(path.c_str());
  }
  EXPECT_EQ(env.stats().injected, 0u);
}

TEST(SnapshotFileTest, CompatMatrixInjectedReadFailureIsClean) {
  const auto reps = sample_reps(25, 13);
  svg::store::StoreFaultPlan plan;
  plan.read_error = 1.0;
  svg::store::FaultyEnv env{plan};
  for (std::uint16_t v = 1; v <= 3; ++v) {
    const auto path = write_snapshot_file("rf_v" + std::to_string(v),
                                          snapshot_bytes_v(v, reps));
    EXPECT_FALSE(
        svg::store::load_snapshot_file_full(path, &env).has_value())
        << "version " << v;
    // The file itself is untouched — a later healthy read still works.
    EXPECT_TRUE(svg::store::load_snapshot_file_full(path).has_value())
        << "version " << v;
    std::remove(path.c_str());
  }
  EXPECT_GE(env.stats().injected, 3u);
}

TEST(SnapshotFileTest, CompatMatrixTruncatedFilesRejectedAtEveryCut) {
  const auto reps = sample_reps(12, 14);
  svg::store::FaultyEnv env{svg::store::StoreFaultPlan{}};
  for (std::uint16_t v = 1; v <= 3; ++v) {
    const auto bytes = snapshot_bytes_v(v, reps);
    for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
      const auto path = write_snapshot_file(
          "tr_v" + std::to_string(v),
          {bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(keep)});
      EXPECT_FALSE(
          svg::store::load_snapshot_file_full(path, &env).has_value())
          << "version " << v << " truncated to " << keep;
      std::remove(path.c_str());
    }
  }
}

TEST(SnapshotFileTest, SaveLoadRoundTrip) {
  const auto reps = sample_reps(200, 2);
  const std::string path =
      (std::filesystem::temp_directory_path() / "svg_snapshot_test.bin")
          .string();
  ASSERT_TRUE(save_snapshot_file(reps, path));
  const auto back = load_snapshot_file(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->size(), reps.size());
  std::remove(path.c_str());
}

TEST(SnapshotFileTest, MissingFileReturnsNullopt) {
  EXPECT_FALSE(load_snapshot_file("/nonexistent/dir/snap.bin").has_value());
}

TEST(SnapshotFileTest, RebuildIndexFromSnapshot) {
  const auto reps = sample_reps(1000, 3);
  svg::index::FovIndex original;
  for (const auto& r : reps) original.insert(r);

  const auto snap = original.snapshot();
  EXPECT_EQ(snap.size(), 1000u);
  const auto bytes = encode_snapshot(snap);
  const auto restored_reps = decode_snapshot(bytes);
  ASSERT_TRUE(restored_reps.has_value());
  const auto rebuilt = svg::index::FovIndex::bulk_load(*restored_reps);
  EXPECT_EQ(rebuilt.size(), original.size());
  rebuilt.check_invariants();

  // Queries agree (within quantization) between original and rebuilt.
  svg::sim::CityModel city;
  svg::util::Xoshiro256 rng(4);
  for (int q = 0; q < 20; ++q) {
    const auto c = city.random_point(rng);
    // Pad the box by more than the 1e-7 deg quantization so boundary
    // entries cannot flip sides.
    const svg::index::GeoTimeRange range{
        c.lng - 0.01, c.lng + 0.01, c.lat - 0.01, c.lat + 0.01,
        1'400'000'000'000, 1'400'000'000'000 + 86'400'000};
    EXPECT_EQ(original.query_collect(range).size(),
              rebuilt.query_collect(range).size());
  }
}

TEST(SnapshotFileTest, ServerRestartRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "svg_server_snap.bin")
          .string();
  const auto reps = sample_reps(300, 9);

  svg::retrieval::Query q;
  q.center = svg::sim::CityModel{}.center;
  q.radius_m = 500.0;
  q.t_start = 1'400'000'000'000;
  q.t_end = q.t_start + 86'400'000;

  std::size_t expected_hits = 0;
  {
    svg::net::CloudServer server;
    UploadMessage msg;
    msg.video_id = 1;
    msg.segments = reps;
    server.ingest(msg);
    expected_hits = server.search(q).size();
    ASSERT_TRUE(server.save_snapshot(path));
  }
  {
    svg::net::CloudServer restarted;
    const auto loaded = restarted.load_snapshot(path);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(*loaded, reps.size());
    EXPECT_EQ(restarted.indexed_segments(), reps.size());
    EXPECT_EQ(restarted.search(q).size(), expected_hits);
  }
  std::remove(path.c_str());
}

TEST(SnapshotFileTest, ServerLoadMissingSnapshotFails) {
  svg::net::CloudServer server;
  EXPECT_FALSE(server.load_snapshot("/nonexistent/snap.bin").has_value());
  EXPECT_EQ(server.indexed_segments(), 0u);
}

TEST(SnapshotFileTest, SnapshotExcludesErasedEntries) {
  const auto reps = sample_reps(10, 5);
  svg::index::FovIndex idx;
  std::vector<svg::index::FovHandle> handles;
  for (const auto& r : reps) handles.push_back(idx.insert(r));
  idx.erase(handles[3]);
  idx.erase(handles[7]);
  const auto snap = idx.snapshot();
  EXPECT_EQ(snap.size(), 8u);
  for (const auto& r : snap) {
    EXPECT_NE(r.video_id, reps[3].video_id);
    EXPECT_NE(r.video_id, reps[7].video_id);
  }
}

}  // namespace
