// Restart tests for the tiered backend: WAL replay must rebuild not just
// the same indexed set but the SAME runs. Sealing is purely size-triggered
// (no wall clock), so replaying the upload stream in order reproduces every
// run boundary — rows, ts_min, ts_max — exactly. Compaction timing is the
// one nondeterministic input, so these servers run with compaction off
// (compact_interval_ms = 0 and no checkpointer cadence to inherit).

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "net/server.hpp"
#include "sim/crowd.hpp"
#include "util/rng.hpp"

namespace {

using namespace svg::net;
using svg::core::RepresentativeFov;

struct ScopedDir {
  explicit ScopedDir(const std::string& tag) {
    path = (std::filesystem::temp_directory_path() /
            ("svg_tiered_restart_" + tag + "_" + std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~ScopedDir() { std::filesystem::remove_all(path); }
  std::string path;
};

ServerIndexConfig tiered_config(std::size_t memtable) {
  ServerIndexConfig icfg;
  icfg.backend = ServerIndexConfig::Backend::kTiered;
  icfg.memtable = memtable;
  return icfg;
}

std::vector<RepresentativeFov> sample_reps(std::size_t n, std::uint64_t seed) {
  svg::sim::CityModel city;
  // Dense enough that some cameras stand within radius-of-view of the
  // centre — the orientation filter rejects everything farther out, and a
  // restart test whose queries all return empty proves nothing.
  city.extent_m = 600.0;
  svg::util::Xoshiro256 rng(seed);
  return svg::sim::random_representative_fovs(n, city, 1'400'000'000'000,
                                              86'400'000, rng);
}

void ingest_in_batches(CloudServer& server,
                       const std::vector<RepresentativeFov>& reps,
                       std::size_t batch) {
  for (std::size_t i = 0; i < reps.size(); i += batch) {
    UploadMessage msg;
    msg.video_id = i;
    const auto end = std::min(i + batch, reps.size());
    msg.segments.assign(reps.begin() + static_cast<std::ptrdiff_t>(i),
                        reps.begin() + static_cast<std::ptrdiff_t>(end));
    server.ingest(msg);
  }
}

svg::retrieval::Query wide_query() {
  svg::retrieval::Query q;
  q.center = svg::sim::CityModel{}.center;
  q.radius_m = 800.0;
  q.t_start = 1'400'000'000'000;
  q.t_end = q.t_start + 86'400'000;
  return q;
}

// Canonical view of a result set: sorted (video_id, segment_id) pairs, so
// equality is insensitive to backend-internal visit order.
std::vector<std::pair<std::uint64_t, std::uint32_t>> canonical_hits(
    const CloudServer& server, const svg::retrieval::Query& q) {
  std::vector<std::pair<std::uint64_t, std::uint32_t>> out;
  for (const auto& r : server.search(q)) {
    out.emplace_back(r.rep.video_id, r.rep.segment_id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(TieredRestartTest, WalReplayRebuildsIdenticalRuns) {
  ScopedDir dir("wal");
  const auto reps = sample_reps(500, 21);
  const auto q = wide_query();

  svg::index::TieredStats before{};
  std::vector<std::pair<std::uint64_t, std::uint32_t>> hits_before;
  {
    ServerDurabilityConfig dcfg;
    dcfg.data_dir = dir.path;
    // Small memtable → many sealed runs from 500 rows.
    CloudServer server(tiered_config(64), {}, dcfg);
    ASSERT_EQ(server.backend(), ServerIndexConfig::Backend::kTiered);
    ingest_in_batches(server, reps, 23);  // batch != memtable: straddling seals
    const auto stats = server.tiered_run_stats();
    ASSERT_TRUE(stats.has_value());
    before = *stats;
    ASSERT_GT(before.runs.size(), 2u);  // the test is vacuous otherwise
    ASSERT_GT(before.memtable_rows, 0u);
    hits_before = canonical_hits(server, q);
    ASSERT_FALSE(hits_before.empty());
    server.sync_wal();
  }  // no checkpoint: reopen replays the WAL from scratch
  {
    ServerDurabilityConfig dcfg;
    dcfg.data_dir = dir.path;
    CloudServer server(tiered_config(64), {}, dcfg);
    EXPECT_TRUE(server.recovery().ok);
    EXPECT_GT(server.recovery().wal_records_replayed, 0u);
    EXPECT_EQ(server.indexed_segments(), reps.size());

    const auto stats = server.tiered_run_stats();
    ASSERT_TRUE(stats.has_value());
    // Size-triggered sealing is deterministic: replay reproduces every run
    // boundary and its time tags, not merely the same row multiset.
    ASSERT_EQ(stats->runs.size(), before.runs.size());
    for (std::size_t i = 0; i < before.runs.size(); ++i) {
      EXPECT_EQ(stats->runs[i].rows, before.runs[i].rows) << "run " << i;
      EXPECT_EQ(stats->runs[i].ts_min, before.runs[i].ts_min) << "run " << i;
      EXPECT_EQ(stats->runs[i].ts_max, before.runs[i].ts_max) << "run " << i;
    }
    EXPECT_EQ(stats->memtable_rows, before.memtable_rows);
    EXPECT_EQ(canonical_hits(server, q), hits_before);
  }
}

TEST(TieredRestartTest, CheckpointRestartPreservesTheIndexedSet) {
  ScopedDir dir("checkpoint");
  const auto reps = sample_reps(400, 33);
  const auto q = wide_query();

  std::vector<std::pair<std::uint64_t, std::uint32_t>> hits_before;
  {
    ServerDurabilityConfig dcfg;
    dcfg.data_dir = dir.path;
    CloudServer server(tiered_config(64), {}, dcfg);
    ingest_in_batches(server, reps, 25);
    hits_before = canonical_hits(server, q);
    ASSERT_FALSE(hits_before.empty());
    ASSERT_TRUE(server.checkpoint_now());
  }
  // Restart restores from the snapshot (zero WAL records to replay); the
  // indexed set — and therefore every query answer — is unchanged even
  // though run boundaries may legitimately differ from the live ordering.
  {
    ServerDurabilityConfig dcfg;
    dcfg.data_dir = dir.path;
    CloudServer server(tiered_config(64), {}, dcfg);
    EXPECT_TRUE(server.recovery().ok);
    EXPECT_EQ(server.recovery().wal_records_replayed, 0u);
    EXPECT_EQ(server.indexed_segments(), reps.size());
    EXPECT_EQ(canonical_hits(server, q), hits_before);

    // Maintenance entry points still work on the recovered index, and a
    // full merge leaves answers untouched.
    EXPECT_TRUE(server.seal_index_now() || true);  // memtable may be empty
    while (server.compact_index_now(/*full=*/true) > 0) {
    }
    const auto stats = server.tiered_run_stats();
    ASSERT_TRUE(stats.has_value());
    EXPECT_LE(stats->runs.size(), 1u);
    EXPECT_EQ(canonical_hits(server, q), hits_before);
  }
}

TEST(TieredRestartTest, NonTieredServersReportNoRunStats) {
  CloudServer single;
  EXPECT_FALSE(single.tiered_run_stats().has_value());
  EXPECT_FALSE(single.seal_index_now());
  EXPECT_EQ(single.compact_index_now(), 0u);
}

}  // namespace
