// Wire-format tests for trace-context propagation (wire v2's trailing
// optional field): untraced encodings stay byte-identical to pre-trace
// builds, traced encodings round-trip, and malformed/corrupted trailing
// fields are rejected — including under randomized fuzzing.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "net/wire.hpp"
#include "store/crc32c.hpp"
#include "util/rng.hpp"

namespace {

using namespace svg::net;
using svg::core::RepresentativeFov;

RepresentativeFov sample_rep(std::uint32_t seg, double lat, double lng,
                             double theta, std::int64_t t0, std::int64_t t1) {
  RepresentativeFov rep;
  rep.segment_id = seg;
  rep.fov.p = {lat, lng};
  rep.fov.theta_deg = theta;
  rep.t_start = t0;
  rep.t_end = t1;
  return rep;
}

UploadMessage sample_message(std::uint64_t upload_id) {
  UploadMessage m;
  m.upload_id = upload_id;
  m.video_id = 42;
  m.segments.push_back(
      sample_rep(0, 39.9042, 116.4074, 123.45, 1'400'000'000'000,
                 1'400'000'030'000));
  m.segments.push_back(
      sample_rep(1, 39.9050, 116.4100, 250.0, 1'400'000'030'000,
                 1'400'000'042'000));
  return m;
}

std::size_t varint_len(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

/// Re-checksum a hand-edited v2 body the way put_crc_trailer does
/// (crc32c of everything so far, appended little-endian).
void append_crc(std::vector<std::uint8_t>& body) {
  const std::uint32_t crc = svg::store::crc32c(std::span(body));
  for (int i = 0; i < 4; ++i) {
    body.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  }
}

TEST(TraceWireTest, UntracedV2IsByteIdenticalToPreTraceEncoding) {
  // trace_id == 0 must not change the bytes at all: an encoder that
  // appended empty trace fields would break pre-trace decoders and the
  // dedup-by-bytes tests alike.
  UploadMessage untraced = sample_message(7);
  const auto baseline = encode_upload(untraced);
  UploadMessage traced = sample_message(7);
  traced.trace_id = 0xFEED;
  traced.parent_span_id = 0x1234;
  const auto traced_bytes = encode_upload(traced);
  ASSERT_NE(baseline, traced_bytes);
  // Untraced == traced minus exactly the two trailing varints.
  EXPECT_EQ(traced_bytes.size(),
            baseline.size() + varint_len(0xFEED) + varint_len(0x1234));
  // Same payload prefix before the trace field / crc trailer.
  for (std::size_t i = 0; i + 4 < baseline.size(); ++i) {
    ASSERT_EQ(baseline[i], traced_bytes[i]) << "prefix diverged at " << i;
  }
  const auto back = decode_upload(baseline);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->trace_id, 0u);
  EXPECT_EQ(back->parent_span_id, 0u);
}

TEST(TraceWireTest, LegacyV1NeverCarriesTraceContext) {
  UploadMessage m = sample_message(0);  // upload_id 0 = v1 format
  const auto plain = encode_upload(m);
  m.trace_id = 0xABCDEF;
  m.parent_span_id = 0x99;
  const auto traced = encode_upload(m);
  EXPECT_EQ(plain, traced);  // byte-identical: v1 drops the context
  const auto back = decode_upload(traced);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->trace_id, 0u);
}

TEST(TraceWireTest, TracedV2RoundTripsBothIds) {
  UploadMessage m = sample_message(9);
  m.trace_id = 0xDEADBEEFCAFEULL;
  m.parent_span_id = 0xF00DULL;
  const auto back = decode_upload(encode_upload(m));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->upload_id, 9u);
  EXPECT_EQ(back->trace_id, m.trace_id);
  EXPECT_EQ(back->parent_span_id, m.parent_span_id);
  ASSERT_EQ(back->segments.size(), 2u);
  EXPECT_EQ(back->segments[1].segment_id, 1u);
}

TEST(TraceWireTest, ParentSpanZeroStillRoundTrips) {
  // A traced root with no upstream caller: trace_id set, parent 0.
  UploadMessage m = sample_message(3);
  m.trace_id = 0x77;
  m.parent_span_id = 0;
  const auto back = decode_upload(encode_upload(m));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->trace_id, 0x77u);
  EXPECT_EQ(back->parent_span_id, 0u);
}

TEST(TraceWireTest, SingleTrailingVarintIsAnEpochStamp) {
  // Strip the parent varint and re-checksum: one trailing varint is no
  // longer a truncated trace pair — it parses as a routing-epoch fence
  // stamp (stored as epoch + 1), with no trace attached.
  UploadMessage m = sample_message(5);
  m.trace_id = 0xBEEF;
  m.parent_span_id = 0x1234;
  auto bytes = encode_upload(m);
  bytes.resize(bytes.size() - 4);  // drop crc
  bytes.resize(bytes.size() - varint_len(m.parent_span_id));
  append_crc(bytes);
  const auto back = decode_upload(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->trace_id, 0u);
  EXPECT_TRUE(back->has_route_epoch);
  EXPECT_EQ(back->route_epoch, 0xBEEFu - 1);
}

TEST(TraceWireTest, ThirdTrailingVarintIsAnEpochStamp) {
  // trace pair + one more varint = traced AND epoch-stamped.
  UploadMessage m = sample_message(5);
  m.trace_id = 0xBEEF;
  m.parent_span_id = 0x1234;
  auto bytes = encode_upload(m);
  bytes.resize(bytes.size() - 4);
  bytes.push_back(0x01);  // stamp varint: epoch 0 stored as 1
  append_crc(bytes);
  const auto back = decode_upload(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->trace_id, 0xBEEFu);
  EXPECT_EQ(back->parent_span_id, 0x1234u);
  EXPECT_TRUE(back->has_route_epoch);
  EXPECT_EQ(back->route_epoch, 0u);
}

TEST(TraceWireTest, FourthTrailingVarintIsRejected) {
  UploadMessage m = sample_message(5);
  m.trace_id = 0xBEEF;
  m.parent_span_id = 0x1234;
  m.route_epoch = 7;
  m.has_route_epoch = true;
  auto bytes = encode_upload(m);
  bytes.resize(bytes.size() - 4);
  bytes.push_back(0x01);  // a fourth trailing varint fits no field
  append_crc(bytes);
  EXPECT_FALSE(decode_upload(bytes).has_value());
}

TEST(TraceWireTest, ZeroEpochStampIsRejected) {
  // The stamp is stored as epoch + 1; a literal 0 stamp is malformed.
  UploadMessage m = sample_message(5);
  auto bytes = encode_upload(m);
  bytes.resize(bytes.size() - 4);
  bytes.push_back(0x00);
  append_crc(bytes);
  EXPECT_FALSE(decode_upload(bytes).has_value());
}

TEST(TraceWireTest, EpochStampRoundTripsAndIsAbsentByDefault) {
  UploadMessage m = sample_message(6);
  const auto plain = encode_upload(m);
  m.route_epoch = 0;
  m.has_route_epoch = true;
  const auto stamped = encode_upload(m);
  EXPECT_GT(stamped.size(), plain.size());
  const auto back = decode_upload(stamped);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->has_route_epoch);
  EXPECT_EQ(back->route_epoch, 0u);
  const auto unstamped = decode_upload(plain);
  ASSERT_TRUE(unstamped.has_value());
  EXPECT_FALSE(unstamped->has_route_epoch);
}

TEST(TraceWireTest, ZeroTraceIdInTrailingFieldIsRejected) {
  // trace_id 0 on the wire is reserved as "absent"; a message that spells
  // it out is malformed, not untraced.
  UploadMessage m = sample_message(5);
  m.trace_id = 0xBEEF;  // encodes as 3 varint bytes: BE EF -> 0xBEEF
  m.parent_span_id = 1;
  auto bytes = encode_upload(m);
  bytes.resize(bytes.size() - 4);
  // Replace both trailing varints with {0, 1}.
  bytes.resize(bytes.size() - varint_len(m.parent_span_id) -
               varint_len(m.trace_id));
  bytes.push_back(0x00);
  bytes.push_back(0x01);
  append_crc(bytes);
  EXPECT_FALSE(decode_upload(bytes).has_value());
}

TEST(TraceWireTest, CorruptedTraceFieldFailsTheChecksum) {
  UploadMessage m = sample_message(11);
  m.trace_id = 0xAABBCCDD;
  m.parent_span_id = 0x42;
  auto bytes = encode_upload(m);
  // Flip a bit inside the trailing trace field (just before the crc).
  bytes[bytes.size() - 6] ^= 0x40;
  EXPECT_FALSE(decode_upload(bytes).has_value());
}

TEST(TraceWireTest, FuzzRoundTripRandomTraceContexts) {
  svg::util::Xoshiro256 rng(2026);
  for (int trial = 0; trial < 200; ++trial) {
    UploadMessage m;
    m.upload_id = 1 + rng.bounded(1'000'000);
    m.video_id = rng.next();
    const std::size_t n = rng.bounded(8);
    std::int64_t t = 1'400'000'000'000;
    for (std::size_t i = 0; i < n; ++i) {
      const auto dur = static_cast<std::int64_t>(rng.bounded(60'000));
      m.segments.push_back(sample_rep(
          static_cast<std::uint32_t>(i), rng.uniform(-89.0, 89.0),
          rng.uniform(-179.0, 179.0), rng.uniform(0.0, 360.0), t, t + dur));
      t += dur;
    }
    // Half the trials traced (any 64-bit ids), half untraced.
    if (trial % 2 == 0) {
      m.trace_id = rng.next() | 1;  // never 0
      m.parent_span_id = rng.next();
    }
    const auto back = decode_upload(encode_upload(m));
    ASSERT_TRUE(back.has_value()) << trial;
    EXPECT_EQ(back->upload_id, m.upload_id);
    EXPECT_EQ(back->trace_id, m.trace_id);
    EXPECT_EQ(back->parent_span_id, m.parent_span_id);
    EXPECT_EQ(back->segments.size(), m.segments.size());
  }
}

TEST(TraceWireTest, FuzzBitFlipsNeverYieldWrongTraceIds) {
  // Any single bit flip in a traced v2 message must be rejected outright
  // (crc) — never decoded into a message with different ids.
  svg::util::Xoshiro256 rng(7);
  UploadMessage m = sample_message(77);
  m.trace_id = 0x123456789ABCULL;
  m.parent_span_id = 0xDEF0ULL;
  const auto bytes = encode_upload(m);
  for (int trial = 0; trial < 500; ++trial) {
    auto mutated = bytes;
    const std::size_t pos = rng.bounded(mutated.size());
    mutated[pos] ^= static_cast<std::uint8_t>(1U << rng.bounded(8));
    const auto back = decode_upload(mutated);
    if (back.has_value()) {
      // Only possible if the flip produced a self-consistent message —
      // with crc32c over the whole body this must never happen here.
      ADD_FAILURE() << "bit flip at " << pos << " decoded";
    }
  }
}

}  // namespace
