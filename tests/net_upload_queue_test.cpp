// net::UploadQueue — at-least-once delivery over a faulty link against the
// idempotent server. Includes the issue's acceptance scenario: 10% drop +
// 5% duplicate, every upload eventually acked, no duplicate segments in the
// index, and svg_net_retry_* accounting for every attempt.

#include <gtest/gtest.h>

#include <set>
#include <utility>
#include <vector>

#include "net/fault.hpp"
#include "net/server.hpp"
#include "net/upload_queue.hpp"
#include "net/wire.hpp"
#include "obs/families.hpp"
#include "sim/crowd.hpp"
#include "util/rng.hpp"

namespace {

using namespace svg;
using namespace svg::net;

std::vector<core::RepresentativeFov> make_reps(std::uint64_t video_id,
                                               std::size_t n,
                                               std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  sim::CityModel city;
  auto reps = sim::random_representative_fovs(n, city, 1'400'000'000'000,
                                              3'600'000, rng);
  for (std::size_t i = 0; i < reps.size(); ++i) {
    reps[i].video_id = video_id;
    reps[i].segment_id = static_cast<std::uint32_t>(i);
  }
  return reps;
}

TEST(UploadQueueTest, AssignsDeterministicNonZeroIds) {
  auto ids_for_seed = [](std::uint64_t seed) {
    UploadQueue q({}, seed);
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 4; ++i) {
      UploadMessage m;
      m.video_id = 100 + static_cast<std::uint64_t>(i);
      m.segments = make_reps(m.video_id, 2, 7);
      ids.push_back(q.enqueue(m));
    }
    return ids;
  };
  const auto a = ids_for_seed(5);
  const auto b = ids_for_seed(5);
  EXPECT_EQ(a, b);  // same seed → same ids (crash-replay contract)
  for (auto id : a) EXPECT_NE(id, 0u);
  EXPECT_NE(a, ids_for_seed(6));
}

TEST(UploadQueueTest, DrainOverPerfectChannelAcksFirstTry) {
  CloudServer server;
  Link link;
  FaultyLink faulty(link, FaultPlan{});
  UploadQueue q;
  for (int i = 0; i < 3; ++i) {
    UploadMessage m;
    m.video_id = static_cast<std::uint64_t>(i) + 1;
    m.segments = make_reps(m.video_id, 4, static_cast<std::uint64_t>(i));
    q.enqueue(m);
  }
  EXPECT_TRUE(q.drain(FaultyUploadChannel(faulty, server)));
  const auto s = q.stats();
  EXPECT_EQ(s.enqueued, 3u);
  EXPECT_EQ(s.acked, 3u);
  EXPECT_EQ(s.attempts, 3u);
  EXPECT_EQ(s.retries, 0u);
  EXPECT_EQ(server.indexed_segments(), 12u);
}

TEST(UploadQueueTest, AcceptanceTenPctDropFivePctDupAllAckedNoDuplicates) {
  const auto& m = obs::net_retry_metrics();
  const std::uint64_t attempts_before = m.upload_attempts.value();
  const std::uint64_t retries_before = m.upload_retries.value();
  const std::uint64_t acks_before = m.upload_acks.value();

  SimClock clock;
  FaultPlan plan;
  plan.seed = 2026;
  plan.drop = 0.10;
  plan.duplicate = 0.05;
  CloudServer server;
  Link link;
  FaultyLink faulty(link, plan, &clock);
  RetryPolicy policy;
  policy.max_attempts = 32;
  UploadQueue q(policy, 99, &clock);

  const std::size_t kUploads = 12;
  std::size_t total_segments = 0;
  for (std::size_t i = 0; i < kUploads; ++i) {
    UploadMessage msg;
    msg.video_id = i + 1;
    msg.segments = make_reps(msg.video_id, 8, i);
    total_segments += msg.segments.size();
    q.enqueue(msg);
  }
  ASSERT_TRUE(q.drain(FaultyUploadChannel(faulty, server)));

  const auto qs = q.stats();
  EXPECT_EQ(qs.acked, kUploads);
  EXPECT_EQ(qs.exhausted, 0u);
  EXPECT_EQ(qs.rejected, 0u);
  EXPECT_EQ(qs.attempts, kUploads + qs.retries);

  // Exactly-once effect: every segment indexed exactly once despite the
  // link duplicating messages and the queue retransmitting.
  EXPECT_EQ(server.indexed_segments(), total_segments);
  const auto ss = server.stats();
  EXPECT_EQ(ss.uploads_accepted, kUploads);
  EXPECT_EQ(ss.segments_indexed, total_segments);
  EXPECT_EQ(server.known_upload_ids(), kUploads);

  // Query the whole world and confirm no (video, segment) pair comes back
  // twice.
  retrieval::Query query;
  query.t_start = 0;
  query.t_end = 2'000'000'000'000;
  query.center = {39.9042, 116.4074};
  query.radius_m = 1e7;
  const auto results = server.search(query);
  std::set<std::pair<std::uint64_t, std::uint32_t>> seen;
  for (const auto& r : results) {
    EXPECT_TRUE(seen.emplace(r.rep.video_id, r.rep.segment_id).second)
        << "duplicate segment in results: video " << r.rep.video_id
        << " segment " << r.rep.segment_id;
  }

  // svg_net_retry_* accounts every attempt this queue made.
  EXPECT_EQ(m.upload_attempts.value() - attempts_before, qs.attempts);
  EXPECT_EQ(m.upload_retries.value() - retries_before, qs.retries);
  EXPECT_EQ(m.upload_acks.value() - acks_before, qs.acked);
}

TEST(UploadQueueTest, ExhaustsAfterMaxAttemptsOnDeadLink) {
  SimClock clock;
  FaultPlan plan;
  plan.seed = 3;
  plan.drop = 1.0;
  CloudServer server;
  Link link;
  FaultyLink faulty(link, plan, &clock);
  RetryPolicy policy;
  policy.max_attempts = 4;
  UploadQueue q(policy, 1, &clock);
  UploadMessage msg;
  msg.video_id = 1;
  msg.segments = make_reps(1, 3, 1);
  q.enqueue(msg);
  EXPECT_FALSE(q.drain(FaultyUploadChannel(faulty, server)));
  const auto s = q.stats();
  EXPECT_EQ(s.exhausted, 1u);
  EXPECT_EQ(s.acked, 0u);
  EXPECT_EQ(s.attempts, 4u);
  EXPECT_EQ(s.retries, 3u);
  EXPECT_EQ(server.indexed_segments(), 0u);
}

TEST(UploadQueueTest, BackoffAdvancesSimulatedTimeOnly) {
  SimClock clock;
  FaultPlan plan;
  plan.seed = 5;
  plan.drop = 1.0;
  CloudServer server;
  Link link;
  FaultyLink faulty(link, plan, &clock);
  RetryPolicy policy;
  policy.max_attempts = 6;
  UploadQueue q(policy, 1, &clock);
  UploadMessage msg;
  msg.video_id = 1;
  msg.segments = make_reps(1, 2, 2);
  q.enqueue(msg);
  (void)q.drain(FaultyUploadChannel(faulty, server));
  // 5 backoff sleeps + 6 attempt timeouts all land on the sim clock.
  EXPECT_GT(clock.now_ms(), 6 * policy.attempt_timeout_ms);
}

TEST(UploadQueueTest, DisabledBackoffStillDeliversUnderDrops) {
  SimClock clock;
  FaultPlan plan;
  plan.seed = 8;
  plan.drop = 0.3;
  CloudServer server;
  Link link;
  FaultyLink faulty(link, plan, &clock);
  RetryPolicy policy;
  policy.max_attempts = 64;
  policy.backoff_enabled = false;
  UploadQueue q(policy, 17, &clock);
  for (int i = 0; i < 6; ++i) {
    UploadMessage msg;
    msg.video_id = static_cast<std::uint64_t>(i) + 1;
    msg.segments = make_reps(msg.video_id, 5, static_cast<std::uint64_t>(i));
    q.enqueue(msg);
  }
  EXPECT_TRUE(q.drain(FaultyUploadChannel(faulty, server)));
  EXPECT_EQ(server.indexed_segments(), 30u);
}

TEST(UploadQueueTest, DuplicateAcksCountedWhenServerDedups) {
  // Force every message to be duplicated: the server sees each upload
  // twice, acks the second copy as kDuplicate, but the queue already got
  // its accept — so resend-level dedup shows up in server stats instead.
  SimClock clock;
  FaultPlan plan;
  plan.seed = 21;
  plan.duplicate = 1.0;
  CloudServer server;
  Link link;
  FaultyLink faulty(link, plan, &clock);
  UploadQueue q({}, 4, &clock);
  UploadMessage msg;
  msg.video_id = 9;
  msg.segments = make_reps(9, 4, 9);
  q.enqueue(msg);
  ASSERT_TRUE(q.drain(FaultyUploadChannel(faulty, server)));
  EXPECT_EQ(server.indexed_segments(), 4u);
  EXPECT_EQ(server.stats().uploads_deduped, 1u);  // the duplicated copy
}

TEST(UploadQueueTest, CompletionLatencyRecordedPerAck) {
  SimClock clock;
  CloudServer server;
  Link link;
  FaultyLink faulty(link, FaultPlan{}, &clock);
  UploadQueue q({}, 2, &clock);
  for (int i = 0; i < 3; ++i) {
    UploadMessage msg;
    msg.video_id = static_cast<std::uint64_t>(i) + 1;
    msg.segments = make_reps(msg.video_id, 2, static_cast<std::uint64_t>(i));
    q.enqueue(msg);
  }
  ASSERT_TRUE(q.drain(FaultyUploadChannel(faulty, server)));
  ASSERT_EQ(q.completion_ms().size(), 3u);
  for (double ms : q.completion_ms()) EXPECT_GE(ms, 0.0);
}

}  // namespace
