// Robustness fuzzing: the server decodes attacker-controlled bytes, so no
// corruption, truncation, or random garbage may crash, hang, or allocate
// absurdly — decoders return nullopt (or a valid message) and nothing else.

#include <gtest/gtest.h>

#include "net/clip_fetch.hpp"
#include "net/server.hpp"
#include "net/snapshot.hpp"
#include "net/wire.hpp"
#include "sim/crowd.hpp"
#include "util/rng.hpp"

namespace {

using namespace svg::net;

std::vector<std::uint8_t> valid_upload_bytes(std::uint64_t seed) {
  svg::sim::CityModel city;
  svg::util::Xoshiro256 rng(seed);
  UploadMessage msg;
  msg.video_id = seed;
  for (const auto& r : svg::sim::random_representative_fovs(
           16, city, 1'400'000'000'000, 3'600'000, rng)) {
    msg.segments.push_back(r);
  }
  return encode_upload(msg);
}

TEST(WireFuzzTest, UploadDecoderSurvivesTruncationAtEveryOffset) {
  const auto bytes = valid_upload_bytes(1);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(bytes.data(), cut);
    // Must not crash; result is nullopt or (for prefixes that happen to
    // be self-consistent) a valid message.
    (void)decode_upload(prefix);
  }
  SUCCEED();
}

TEST(WireFuzzTest, UploadDecoderSurvivesSingleByteCorruption) {
  const auto original = valid_upload_bytes(2);
  svg::util::Xoshiro256 rng(3);
  for (int trial = 0; trial < 2000; ++trial) {
    auto bytes = original;
    const std::size_t pos = rng.bounded(bytes.size());
    bytes[pos] ^= static_cast<std::uint8_t>(1 + rng.bounded(255));
    const auto out = decode_upload(bytes);
    if (out) {
      // If it still decodes, the structure must be sane.
      ASSERT_LE(out->segments.size(), 1'000'000u);
      for (const auto& s : out->segments) {
        ASSERT_LE(s.t_start, s.t_end);
      }
    }
  }
}

TEST(WireFuzzTest, AllDecodersSurviveRandomGarbage) {
  svg::util::Xoshiro256 rng(4);
  for (int trial = 0; trial < 3000; ++trial) {
    std::vector<std::uint8_t> garbage(rng.bounded(200));
    for (auto& b : garbage) {
      b = static_cast<std::uint8_t>(rng.bounded(256));
    }
    (void)decode_upload(garbage);
    (void)decode_query(garbage);
    (void)decode_results(garbage);
    (void)decode_clip_request(garbage);
    (void)decode_clip_response(garbage);
    (void)decode_snapshot(garbage);
  }
  SUCCEED();
}

TEST(WireFuzzTest, SnapshotSurvivesCorruption) {
  svg::sim::CityModel city;
  svg::util::Xoshiro256 rng(5);
  const auto reps = svg::sim::random_representative_fovs(
      64, city, 1'400'000'000'000, 3'600'000, rng);
  const auto original = encode_snapshot(reps);
  for (int trial = 0; trial < 1000; ++trial) {
    auto bytes = original;
    const std::size_t pos = rng.bounded(bytes.size());
    bytes[pos] ^= static_cast<std::uint8_t>(1 + rng.bounded(255));
    const auto out = decode_snapshot(bytes);
    if (out) {
      for (const auto& r : *out) {
        ASSERT_LE(r.t_start, r.t_end);
      }
    }
  }
}

TEST(WireFuzzTest, ClipResponseLengthFieldCannotOverallocate) {
  // A response claiming a multi-GB payload with a short body must be
  // rejected before any allocation of that size.
  ByteWriter w;
  w.put_u8(kMsgClipResponse);
  w.put_u8(1);                       // found
  w.put_varint(1);                   // video id
  w.put_svarint(0);                  // t_start
  w.put_varint(1000);                // duration
  w.put_varint(1ULL << 40);          // claimed payload: 1 TB
  w.put_u8(0);                       // ...but only one byte follows
  const auto out = decode_clip_response(w.bytes());
  EXPECT_FALSE(out.has_value());
}

std::vector<std::uint8_t> valid_upload_v2_bytes(std::uint64_t seed,
                                                std::uint64_t upload_id) {
  svg::sim::CityModel city;
  svg::util::Xoshiro256 rng(seed);
  UploadMessage msg;
  msg.upload_id = upload_id;
  msg.video_id = seed;
  for (const auto& r : svg::sim::random_representative_fovs(
           16, city, 1'400'000'000'000, 3'600'000, rng)) {
    msg.segments.push_back(r);
  }
  return encode_upload(msg);
}

TEST(WireFuzzTest, LegacyIdlessUploadKeepsV1WireFormat) {
  // upload_id == 0 must emit the original kMsgUpload layout, so pre-retry
  // clients and archived captures stay decodable — and decode back with
  // upload_id == 0.
  const auto v1 = valid_upload_bytes(11);
  ASSERT_FALSE(v1.empty());
  EXPECT_EQ(v1[0], kMsgUpload);
  const auto back = decode_upload(v1);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->upload_id, 0u);
  EXPECT_EQ(back->segments.size(), 16u);

  const auto v2 = valid_upload_v2_bytes(11, 99);
  EXPECT_EQ(v2[0], kMsgUploadV2);
  const auto back2 = decode_upload(v2);
  ASSERT_TRUE(back2.has_value());
  EXPECT_EQ(back2->upload_id, 99u);
}

TEST(WireFuzzTest, UploadV2DecoderSurvivesTruncationAtEveryOffset) {
  const auto bytes = valid_upload_v2_bytes(12, 0xDEADBEEF);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    // The CRC trailer means no strict prefix can decode.
    EXPECT_FALSE(
        decode_upload(std::span<const std::uint8_t>(bytes.data(), cut))
            .has_value());
  }
}

TEST(WireFuzzTest, UploadV2CrcRejectsEveryBitFlip) {
  // v2 is the retry path: a retransmitted-and-corrupted upload that still
  // decoded would poison the index *and* be deduped against its honest
  // twin. The CRC trailer must reject all of these.
  const auto original = valid_upload_v2_bytes(13, 7777);
  svg::util::Xoshiro256 rng(14);
  for (int trial = 0; trial < 2000; ++trial) {
    auto bytes = original;
    const std::size_t flips = 1 + rng.bounded(3);
    for (std::size_t f = 0; f < flips; ++f) {
      bytes[rng.bounded(bytes.size())] ^=
          static_cast<std::uint8_t>(1u << rng.bounded(8));
    }
    if (bytes == original) continue;  // flips may cancel out
    EXPECT_FALSE(decode_upload(bytes).has_value()) << "trial " << trial;
  }
}

TEST(WireFuzzTest, UploadAckSurvivesTruncationCorruptionAndGarbage) {
  UploadAck ack;
  ack.upload_id = 123456789;
  ack.status = UploadAckStatus::kAccepted;
  ack.segments_indexed = 42;
  const auto original = encode_upload_ack(ack);

  const auto back = decode_upload_ack(original);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->upload_id, ack.upload_id);
  EXPECT_EQ(back->status, ack.status);
  EXPECT_EQ(back->segments_indexed, ack.segments_indexed);

  for (std::size_t cut = 0; cut < original.size(); ++cut) {
    EXPECT_FALSE(
        decode_upload_ack(
            std::span<const std::uint8_t>(original.data(), cut))
            .has_value());
  }
  svg::util::Xoshiro256 rng(15);
  for (int trial = 0; trial < 2000; ++trial) {
    auto bytes = original;
    bytes[rng.bounded(bytes.size())] ^=
        static_cast<std::uint8_t>(1 + rng.bounded(255));
    EXPECT_FALSE(decode_upload_ack(bytes).has_value());
  }
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> garbage(rng.bounded(64));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.bounded(256));
    (void)decode_upload_ack(garbage);
  }
}

TEST(WireFuzzTest, AckedIngestPathSurvivesFuzzedUploads) {
  CloudServer server;
  const auto good = valid_upload_v2_bytes(16, 555);
  svg::util::Xoshiro256 rng(17);
  for (int trial = 0; trial < 500; ++trial) {
    auto bytes = good;
    const std::size_t flips = 1 + rng.bounded(4);
    for (std::size_t f = 0; f < flips; ++f) {
      bytes[rng.bounded(bytes.size())] ^=
          static_cast<std::uint8_t>(1 + rng.bounded(255));
    }
    if (const auto ack_bytes = server.handle_upload_acked(bytes)) {
      const auto ack = decode_upload_ack(*ack_bytes);
      ASSERT_TRUE(ack.has_value());  // whatever we emit must decode
    }
  }
  // The genuine upload still lands exactly once afterwards.
  const auto ack_bytes = server.handle_upload_acked(good);
  ASSERT_TRUE(ack_bytes.has_value());
  const auto ack = decode_upload_ack(*ack_bytes);
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->status, UploadAckStatus::kAccepted);
  EXPECT_EQ(server.indexed_segments(), 16u);
}

TEST(WireFuzzTest, ServerHandlesFuzzedUploadsWithoutStateCorruption) {
  CloudServer server;
  const auto good = valid_upload_bytes(6);
  svg::util::Xoshiro256 rng(7);
  std::size_t accepted = 0;
  for (int trial = 0; trial < 500; ++trial) {
    auto bytes = good;
    const std::size_t flips = 1 + rng.bounded(4);
    for (std::size_t f = 0; f < flips; ++f) {
      bytes[rng.bounded(bytes.size())] ^=
          static_cast<std::uint8_t>(1 + rng.bounded(255));
    }
    if (server.handle_upload(bytes)) ++accepted;
  }
  // Regardless of what was accepted, the server still works.
  ASSERT_TRUE(server.handle_upload(good));
  const auto stats = server.stats();
  EXPECT_EQ(stats.uploads_accepted, accepted + 1);
  EXPECT_EQ(stats.uploads_rejected, 500 - accepted);
}

}  // namespace
