#include "net/wire.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace {

using namespace svg::net;
using svg::core::RepresentativeFov;

TEST(VarintTest, RoundTripBoundaries) {
  ByteWriter w;
  const std::vector<std::uint64_t> values{
      0, 1, 127, 128, 16'383, 16'384, 0xFFFFFFFFULL,
      0xFFFFFFFFFFFFFFFFULL};
  for (auto v : values) w.put_varint(v);
  ByteReader r(w.bytes());
  for (auto v : values) {
    const auto got = r.get_varint();
    ASSERT_TRUE(got.has_value());
    ASSERT_EQ(*got, v);
  }
  EXPECT_TRUE(r.exhausted());
}

TEST(VarintTest, SignedZigzagRoundTrip) {
  ByteWriter w;
  const std::vector<std::int64_t> values{0,  -1, 1,  -2, 2,
                                         -1'000'000, 1'000'000,
                                         INT64_MIN,  INT64_MAX};
  for (auto v : values) w.put_svarint(v);
  ByteReader r(w.bytes());
  for (auto v : values) {
    ASSERT_EQ(r.get_svarint().value(), v);
  }
}

TEST(VarintTest, SmallValuesAreOneByte) {
  ByteWriter w;
  w.put_varint(100);
  EXPECT_EQ(w.size(), 1u);
  w.put_varint(200);
  EXPECT_EQ(w.size(), 3u);  // 200 needs two bytes
}

TEST(FixedWidthTest, RoundTrip) {
  ByteWriter w;
  w.put_u8(0xAB);
  w.put_u16(0xBEEF);
  w.put_u32(0xDEADBEEF);
  w.put_u64(0x0123456789ABCDEFULL);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_u8().value(), 0xAB);
  EXPECT_EQ(r.get_u16().value(), 0xBEEF);
  EXPECT_EQ(r.get_u32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.get_u64().value(), 0x0123456789ABCDEFULL);
}

TEST(ByteReaderTest, TruncationYieldsNullopt) {
  ByteWriter w;
  w.put_u32(1234);
  const auto bytes = w.bytes();
  const std::span<const std::uint8_t> cut(bytes.data(), 2);
  ByteReader r(cut);
  EXPECT_FALSE(r.get_u32().has_value());
}

TEST(ByteReaderTest, UnterminatedVarintYieldsNullopt) {
  const std::vector<std::uint8_t> bad{0x80, 0x80, 0x80};  // never ends
  ByteReader r(bad);
  EXPECT_FALSE(r.get_varint().has_value());
}

RepresentativeFov sample_rep(std::uint32_t seg, double lat, double lng,
                             double theta, std::int64_t t0, std::int64_t t1) {
  RepresentativeFov rep;
  rep.segment_id = seg;
  rep.fov.p = {lat, lng};
  rep.fov.theta_deg = theta;
  rep.t_start = t0;
  rep.t_end = t1;
  return rep;
}

TEST(UploadCodecTest, RoundTripPreservesFields) {
  UploadMessage m;
  m.video_id = 777;
  m.segments.push_back(
      sample_rep(0, 39.9042, 116.4074, 123.45, 1'400'000'000'000,
                 1'400'000'030'000));
  m.segments.push_back(
      sample_rep(1, 39.9050, 116.4100, 359.99, 1'400'000'030'000,
                 1'400'000'042'000));
  const auto bytes = encode_upload(m);
  const auto back = decode_upload(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->video_id, 777u);
  ASSERT_EQ(back->segments.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(back->segments[i].segment_id, m.segments[i].segment_id);
    EXPECT_EQ(back->segments[i].video_id, 777u);
    EXPECT_NEAR(back->segments[i].fov.p.lat, m.segments[i].fov.p.lat, 1e-7);
    EXPECT_NEAR(back->segments[i].fov.p.lng, m.segments[i].fov.p.lng, 1e-7);
    EXPECT_NEAR(back->segments[i].fov.theta_deg,
                m.segments[i].fov.theta_deg, 0.01);
    EXPECT_EQ(back->segments[i].t_start, m.segments[i].t_start);
    EXPECT_EQ(back->segments[i].t_end, m.segments[i].t_end);
  }
}

TEST(UploadCodecTest, RandomizedRoundTrips) {
  svg::util::Xoshiro256 rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    UploadMessage m;
    m.video_id = rng.next();
    const std::size_t n = rng.bounded(20);
    std::int64_t t = 1'400'000'000'000 +
                     static_cast<std::int64_t>(rng.bounded(1'000'000'000));
    for (std::size_t i = 0; i < n; ++i) {
      const double lat = rng.uniform(-89.0, 89.0);
      const double lng = rng.uniform(-179.0, 179.0);
      const double theta = rng.uniform(0.0, 360.0);
      const auto dur = static_cast<std::int64_t>(rng.bounded(120'000));
      m.segments.push_back(sample_rep(static_cast<std::uint32_t>(i), lat,
                                      lng, theta, t, t + dur));
      t += dur + static_cast<std::int64_t>(rng.bounded(10'000));
    }
    const auto back = decode_upload(encode_upload(m));
    ASSERT_TRUE(back.has_value()) << trial;
    ASSERT_EQ(back->segments.size(), m.segments.size());
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_NEAR(back->segments[i].fov.p.lat, m.segments[i].fov.p.lat,
                  1e-6);
      ASSERT_NEAR(back->segments[i].fov.p.lng, m.segments[i].fov.p.lng,
                  1e-6);
      ASSERT_NEAR(back->segments[i].fov.theta_deg,
                  m.segments[i].fov.theta_deg, 0.011);
      ASSERT_EQ(back->segments[i].t_start, m.segments[i].t_start);
      ASSERT_EQ(back->segments[i].t_end, m.segments[i].t_end);
    }
  }
}

TEST(UploadCodecTest, CompactEncoding) {
  // The traffic claim: tens of bytes per segment, not kilobytes.
  UploadMessage m;
  m.video_id = 1;
  std::int64_t t = 1'400'000'000'000;
  for (std::uint32_t i = 0; i < 100; ++i) {
    m.segments.push_back(sample_rep(i, 39.9042 + i * 1e-4,
                                    116.4074 + i * 1e-4, i * 3.6, t,
                                    t + 20'000));
    t += 20'000;
  }
  const auto bytes = encode_upload(m);
  const double per_segment =
      static_cast<double>(bytes.size()) / 100.0;
  EXPECT_LT(per_segment, 25.0);
  EXPECT_GT(per_segment, 5.0);
}

TEST(UploadCodecTest, MalformedInputRejected) {
  EXPECT_FALSE(decode_upload({}).has_value());
  const std::vector<std::uint8_t> wrong_tag{kMsgQuery, 0, 0};
  EXPECT_FALSE(decode_upload(wrong_tag).has_value());
  // Truncated after the header.
  UploadMessage m;
  m.video_id = 5;
  m.segments.push_back(sample_rep(0, 10, 20, 30, 1000, 2000));
  auto bytes = encode_upload(m);
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(decode_upload(bytes).has_value());
}

TEST(QueryCodecTest, RoundTrip) {
  QueryMessage q;
  q.t_start = 1'400'000'000'000;
  q.t_end = 1'400'000'600'000;
  q.center = {39.9042, 116.4074};
  q.radius_m = 75.0;
  q.top_n = 25;
  const auto back = decode_query(encode_query(q));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->t_start, q.t_start);
  EXPECT_EQ(back->t_end, q.t_end);
  EXPECT_NEAR(back->center.lat, q.center.lat, 1e-7);
  EXPECT_NEAR(back->center.lng, q.center.lng, 1e-7);
  EXPECT_DOUBLE_EQ(back->radius_m, 75.0);
  EXPECT_EQ(back->top_n, 25u);
}

TEST(QueryCodecTest, TinyOnTheWire) {
  QueryMessage q;
  q.t_start = 1'400'000'000'000;
  q.t_end = 1'400'000'600'000;
  q.center = {39.9042, 116.4074};
  q.radius_m = 75.0;
  EXPECT_LT(encode_query(q).size(), 32u);
}

TEST(ResultsCodecTest, RoundTrip) {
  ResultsMessage m;
  for (std::uint64_t i = 0; i < 10; ++i) {
    ResultEntry e;
    e.video_id = i * 100;
    e.segment_id = static_cast<std::uint32_t>(i);
    e.t_start = 1'400'000'000'000 + static_cast<std::int64_t>(i) * 1000;
    e.t_end = e.t_start + 5000;
    e.distance_m = static_cast<float>(i) * 7.5F;
    m.entries.push_back(e);
  }
  const auto back = decode_results(encode_results(m));
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->entries.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(back->entries[i].video_id, m.entries[i].video_id);
    EXPECT_EQ(back->entries[i].segment_id, m.entries[i].segment_id);
    EXPECT_EQ(back->entries[i].t_start, m.entries[i].t_start);
    EXPECT_EQ(back->entries[i].t_end, m.entries[i].t_end);
    EXPECT_NEAR(back->entries[i].distance_m, m.entries[i].distance_m, 0.1);
  }
}

TEST(ResultsCodecTest, MalformedRejected) {
  EXPECT_FALSE(decode_results({}).has_value());
  ResultsMessage m;
  m.entries.push_back({1, 2, 1000, 2000, 3.0F});
  auto bytes = encode_results(m);
  bytes.resize(3);
  EXPECT_FALSE(decode_results(bytes).has_value());
}

}  // namespace
