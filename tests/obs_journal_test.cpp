// Unit tests for the structured event journal (obs/journal.hpp): append
// ordering, ring wrap, rendering, and thread safety of concurrent appends.

#include "obs/journal.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <sstream>
#include <thread>
#include <vector>

namespace {

using namespace svg::obs;

TEST(JournalTest, AppendAssignsMonotonicSeqs) {
  Journal j(16);
  EXPECT_EQ(j.append(JournalEvent::kServerDegraded), 1u);
  EXPECT_EQ(j.append(JournalEvent::kRecoveryAttempt, 1), 2u);
  EXPECT_EQ(j.append(JournalEvent::kServerRecovered, 42), 3u);
  EXPECT_EQ(j.appended(), 3u);
  const auto tail = j.tail();
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0].event, JournalEvent::kServerDegraded);
  EXPECT_EQ(tail[1].args[0], 1u);
  EXPECT_EQ(tail[2].event, JournalEvent::kServerRecovered);
  EXPECT_EQ(tail[2].args[0], 42u);
  // Timestamps are monotone in append order.
  EXPECT_LE(tail[0].ts_ns, tail[1].ts_ns);
  EXPECT_LE(tail[1].ts_ns, tail[2].ts_ns);
}

TEST(JournalTest, RingOverwritesOldestWhenFull) {
  Journal j(4);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    j.append(JournalEvent::kWalRotation, i);
  }
  EXPECT_EQ(j.appended(), 10u);
  const auto tail = j.tail();
  ASSERT_EQ(tail.size(), 4u);  // only the newest capacity records survive
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(tail[i].seq, 7 + i);
    EXPECT_EQ(tail[i].args[0], 7 + i);
  }
}

TEST(JournalTest, TailMaxRecordsReturnsNewestOldestFirst) {
  Journal j(16);
  for (std::uint64_t i = 1; i <= 6; ++i) {
    j.append(JournalEvent::kCheckpointBegin, i);
  }
  const auto tail = j.tail(2);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].seq, 5u);
  EXPECT_EQ(tail[1].seq, 6u);
  // max beyond the live count returns everything.
  EXPECT_EQ(j.tail(100).size(), 6u);
}

TEST(JournalTest, EventNamesAreStable) {
  EXPECT_STREQ(journal_event_name(JournalEvent::kServerDegraded),
               "server_degraded");
  EXPECT_STREQ(journal_event_name(JournalEvent::kServerRecovered),
               "server_recovered");
  EXPECT_STREQ(journal_event_name(JournalEvent::kWalFailstop),
               "wal_failstop");
  EXPECT_STREQ(journal_event_name(JournalEvent::kCheckpointEnd),
               "checkpoint_end");
  // Unknown values render without crashing.
  const char* unknown =
      journal_event_name(static_cast<JournalEvent>(9999));
  EXPECT_NE(unknown, nullptr);
}

TEST(JournalTest, ToStringCarriesEventAndArgs) {
  Journal j(4);
  j.append(JournalEvent::kWalRetirement, 3, 120);
  const auto tail = j.tail();
  ASSERT_EQ(tail.size(), 1u);
  const std::string line = to_string(tail[0]);
  EXPECT_NE(line.find("wal_retirement"), std::string::npos) << line;
  EXPECT_NE(line.find("a0=3"), std::string::npos) << line;
  EXPECT_NE(line.find("a1=120"), std::string::npos) << line;
}

TEST(JournalTest, WriteJournalTextOneLinePerRecord) {
  Journal j(8);
  j.append(JournalEvent::kCheckpointBegin, 10);
  j.append(JournalEvent::kCheckpointEnd, 10, 2);
  std::ostringstream os;
  write_journal_text(os, j.tail());
  const std::string out = os.str();
  EXPECT_NE(out.find("checkpoint_begin"), std::string::npos);
  EXPECT_NE(out.find("checkpoint_end"), std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
}

TEST(JournalTest, ClearEmptiesTheRing) {
  Journal j(8);
  j.append(JournalEvent::kServerDegraded);
  j.clear();
  EXPECT_TRUE(j.tail().empty());
  // The journal restarts from seq 1 after a clear.
  EXPECT_EQ(j.append(JournalEvent::kServerRecovered), 1u);
  EXPECT_EQ(j.tail().size(), 1u);
}

TEST(JournalTest, ConcurrentAppendsNeverLoseOrDuplicateSeqs) {
  Journal j(64);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1'000;
  std::vector<std::thread> threads;
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&j, w] {
      for (int i = 0; i < kPerThread; ++i) {
        j.append(JournalEvent::kStorageFaultInjected,
                 static_cast<std::uint64_t>(w),
                 static_cast<std::uint64_t>(i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(j.appended(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  const auto tail = j.tail();
  ASSERT_EQ(tail.size(), 64u);
  // The surviving window is exactly the newest 64 seqs, strictly ordered.
  for (std::size_t i = 0; i < tail.size(); ++i) {
    EXPECT_EQ(tail[i].seq, kThreads * kPerThread - 64 + 1 + i);
  }
}

TEST(JournalTest, GlobalShorthandAppendsToTheSharedJournal) {
  const auto before = Journal::global().appended();
  journal_event(JournalEvent::kUploadDeferred, 7, 1);
  EXPECT_EQ(Journal::global().appended(), before + 1);
  const auto tail = Journal::global().tail(1);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].event, JournalEvent::kUploadDeferred);
  EXPECT_EQ(tail[0].args[0], 7u);
}

}  // namespace
