// Unit tests for the observability primitives: histogram bucket layout and
// percentile extraction, registry semantics, exposition formats — plus the
// multi-threaded hammer that TSan runs against the lock-free hot path
// (configure with -DSVG_SANITIZE=thread).

#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "obs/families.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "util/table.hpp"

namespace {

using namespace svg::obs;

TEST(CounterTest, IncAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, SetAddSub) {
  Gauge g;
  g.set(10);
  g.add(5);
  g.sub(20);
  EXPECT_EQ(g.value(), -5);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(HistogramTest, BucketBoundariesAreGeometric) {
  Histogram h({1'000, 2.0, 4});
  const std::vector<std::uint64_t> expected{1'000, 2'000, 4'000, 8'000};
  EXPECT_EQ(h.boundaries(), expected);
}

TEST(HistogramTest, DegenerateGrowthKeepsBoundsStrictlyIncreasing) {
  // growth barely above 1: rounding would repeat bounds without the +1 fix.
  Histogram h({1, 1.0001, 8});
  const auto& b = h.boundaries();
  for (std::size_t i = 1; i < b.size(); ++i) {
    EXPECT_GT(b[i], b[i - 1]) << "at " << i;
  }
}

TEST(HistogramTest, RejectsBadLayout) {
  EXPECT_THROW(Histogram({0, 2.0, 4}), std::invalid_argument);
  EXPECT_THROW(Histogram({1'000, 1.0, 4}), std::invalid_argument);
  EXPECT_THROW(Histogram({1'000, 2.0, 0}), std::invalid_argument);
}

TEST(HistogramTest, ObserveRoutesToCorrectBucket) {
  Histogram h({1'000, 2.0, 4});  // bounds 1000 2000 4000 8000 (+Inf)
  h.observe(0);       // bucket 0 (le 1000)
  h.observe(1'000);   // bucket 0 — bounds are inclusive upper limits
  h.observe(1'001);   // bucket 1 (le 2000)
  h.observe(8'000);   // bucket 3
  h.observe(8'001);   // +Inf
  const auto cum = h.cumulative();
  ASSERT_EQ(cum.size(), 5u);
  EXPECT_EQ(cum[0], 2u);
  EXPECT_EQ(cum[1], 3u);
  EXPECT_EQ(cum[2], 3u);
  EXPECT_EQ(cum[3], 4u);
  EXPECT_EQ(cum[4], 5u);  // +Inf cumulative == total
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 0u + 1'000 + 1'001 + 8'000 + 8'001);
}

TEST(HistogramTest, QuantileInterpolatesWithinBucket) {
  Histogram h({1'000, 2.0, 4});
  for (int i = 0; i < 100; ++i) h.observe(500);  // all in bucket [0, 1000]
  // Linear interpolation across the winning bucket: q maps to q * width.
  EXPECT_DOUBLE_EQ(h.quantile(0.50), 500.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 990.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.00), 1'000.0);
}

TEST(HistogramTest, QuantileAcrossBuckets) {
  Histogram h({1'000, 2.0, 4});
  // 50 observations in bucket 0, 50 in bucket 1.
  for (int i = 0; i < 50; ++i) h.observe(400);
  for (int i = 0; i < 50; ++i) h.observe(1'500);
  // p25 → middle of bucket 0; p75 → middle of bucket 1 ([1000, 2000]).
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 500.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.75), 1'500.0);
}

TEST(HistogramTest, QuantileClampsToLastFiniteBound) {
  Histogram h({1'000, 2.0, 4});
  h.observe(1'000'000);  // +Inf bucket
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 8'000.0);
}

TEST(HistogramTest, EmptyAndMeanAndReset) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  h.observe(10);
  h.observe(30);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(RegistryTest, RegistrationIsIdempotent) {
  Registry r;
  Counter& a = r.counter("x_total");
  Counter& b = r.counter("x_total");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
}

TEST(RegistryTest, KindMismatchThrows) {
  Registry r;
  r.counter("metric");
  EXPECT_THROW(r.gauge("metric"), std::logic_error);
  EXPECT_THROW(r.histogram("metric"), std::logic_error);
}

TEST(RegistryTest, ResetZeroesEverythingButKeepsReferences) {
  Registry r;
  Counter& c = r.counter("c_total");
  Gauge& g = r.gauge("g");
  Histogram& h = r.histogram("h_ns");
  c.inc(7);
  g.set(3);
  h.observe(100);
  r.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(RegistryTest, PrometheusExposition) {
  Registry r;
  r.counter("svg_test_events_total", "events").inc(3);
  r.gauge("svg_test_depth", "depth").set(-2);
  Histogram& h = r.histogram("svg_test_lat_ns", "latency", {1'000, 2.0, 2});
  h.observe(500);
  h.observe(3'000);

  std::ostringstream os;
  r.write_prometheus(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("# HELP svg_test_events_total events\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE svg_test_events_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("svg_test_events_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE svg_test_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("svg_test_depth -2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE svg_test_lat_ns histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("svg_test_lat_ns_bucket{le=\"1000\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("svg_test_lat_ns_bucket{le=\"2000\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("svg_test_lat_ns_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("svg_test_lat_ns_sum 3500\n"), std::string::npos);
  EXPECT_NE(text.find("svg_test_lat_ns_count 2\n"), std::string::npos);
}

TEST(RegistryTest, JsonExposition) {
  Registry r;
  r.counter("c_total").inc(5);
  r.gauge("g").set(9);
  r.histogram("h_ns").observe(1'000);
  std::ostringstream os;
  r.write_json(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("\"counters\":{\"c_total\":5}"), std::string::npos);
  EXPECT_NE(text.find("\"gauges\":{\"g\":9}"), std::string::npos);
  EXPECT_NE(text.find("\"h_ns\":{\"count\":1,\"sum\":1000"),
            std::string::npos);
}

TEST(RegistryTest, TableHasOneRowPerInstrument) {
  Registry r;
  r.counter("a_total");
  r.gauge("b");
  r.histogram("c_ns");
  EXPECT_EQ(r.to_table().rows(), 3u);
}

TEST(ScopedTimerTest, RecordsOnDestructionAndStop) {
  Histogram h;
  {
    ScopedTimer t(h);
  }
  EXPECT_EQ(h.count(), 1u);
  ScopedTimer t2(h);
  t2.stop();
  t2.stop();  // disarmed: second stop must not double-record
  EXPECT_EQ(h.count(), 2u);
}

TEST(FamiliesTest, TouchAllRegistersEverySubsystem) {
  touch_all_families();
  std::ostringstream os;
  global().write_prometheus(os);
  const std::string text = os.str();
  for (const char* name :
       {"svg_server_uploads_accepted_total", "svg_index_inserts_total",
        "svg_retrieval_range_search_ns", "svg_link_bytes_up_total",
        "svg_segmentation_frames_total", "svg_threadpool_queue_depth"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
}

// The TSan target: every thread hammers the same instruments through the
// registry (registration races included) and the totals must come out
// exact — the relaxed-atomic hot path may not lose increments.
TEST(RegistryConcurrencyTest, NoLostIncrementsUnderContention) {
  Registry r;
  constexpr int kThreads = 8;
  constexpr int kIters = 50'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&r] {
      Counter& c = r.counter("hammer_total");
      Gauge& g = r.gauge("hammer_depth");
      Histogram& h = r.histogram("hammer_ns", "", {1'000, 2.0, 8});
      for (int i = 0; i < kIters; ++i) {
        c.inc();
        g.add(1);
        h.observe(static_cast<std::uint64_t>(i % 3'000));
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(r.counter("hammer_total").value(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(r.gauge("hammer_depth").value(),
            static_cast<std::int64_t>(kThreads) * kIters);
  Histogram& h = r.histogram("hammer_ns");
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(h.cumulative().back(),
            static_cast<std::uint64_t>(kThreads) * kIters);
}

// Scrapes running concurrently with writers must be race-free (TSan) and
// monotone per counter.
TEST(RegistryConcurrencyTest, ScrapeDuringWritesIsConsistent) {
  Registry r;
  Counter& c = r.counter("scrape_total");
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (int i = 0; i < 100'000; ++i) c.inc();
    done.store(true);
  });
  std::uint64_t prev = 0;
  while (!done.load()) {
    std::ostringstream os;
    r.write_prometheus(os);
    const std::uint64_t now = c.value();
    EXPECT_GE(now, prev);
    prev = now;
  }
  writer.join();
  EXPECT_EQ(c.value(), 100'000u);
}

}  // namespace
