// End-to-end acceptance tests for request tracing (docs/TRACING.md): real
// uploads pushed through a FaultyLink into a durable server must leave
// complete stored traces (link → server → WAL → index, properly nested); a
// slow query must land in the slow-request log with its per-stage spans;
// query-latency histogram exemplars must resolve to stored traces; and the
// Chrome trace_event export must be valid JSON with a complete event set.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cctype>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "net/fault.hpp"
#include "net/server.hpp"
#include "net/upload_queue.hpp"
#include "obs/families.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "store/env.hpp"

namespace {

using namespace svg;
using namespace svg::net;
using svg::core::RepresentativeFov;

struct ScopedDir {
  explicit ScopedDir(const std::string& tag) {
    path = (std::filesystem::temp_directory_path() /
            ("svg_trace_e2e_" + tag + "_" + std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~ScopedDir() { std::filesystem::remove_all(path); }
  std::string path;
};

UploadMessage make_upload(std::uint64_t video_id, std::size_t segments) {
  UploadMessage m;
  m.video_id = video_id;
  std::int64_t t = 1'400'000'000'000;
  for (std::size_t i = 0; i < segments; ++i) {
    RepresentativeFov rep;
    rep.video_id = video_id;
    rep.segment_id = static_cast<std::uint32_t>(i);
    rep.fov.p = {39.90 + 1e-4 * static_cast<double>(i),
                 116.40 + 1e-4 * static_cast<double>(video_id % 10)};
    rep.fov.theta_deg = 10.0 * static_cast<double>(i);
    rep.t_start = t;
    rep.t_end = t + 20'000;
    t += 20'000;
    m.segments.push_back(rep);
  }
  return m;
}

retrieval::Query wide_query() {
  retrieval::Query q;
  q.center = {39.9042, 116.4074};
  q.radius_m = 500.0;
  q.t_start = 0;
  q.t_end = 9'999'999'999'999;
  return q;
}

// --- a minimal JSON reader for the export schema check ----------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : s_(text) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }
  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool parse_value(JsonValue& out) {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': out.kind = JsonValue::Kind::kString;
                return parse_string(out.str);
      case 't': out.kind = JsonValue::Kind::kBool;
                out.boolean = true;
                return literal("true");
      case 'f': out.kind = JsonValue::Kind::kBool;
                out.boolean = false;
                return literal("false");
      case 'n': out.kind = JsonValue::Kind::kNull;
                return literal("null");
      default: return parse_number(out);
    }
  }
  bool literal(const char* word) {
    const std::size_t len = std::strlen(word);
    if (s_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }
  bool parse_object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (consume(',')) continue;
      return consume('}');
    }
  }
  bool parse_array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return false;
      out.array.push_back(std::move(value));
      skip_ws();
      if (consume(',')) continue;
      return consume(']');
    }
  }
  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        const char esc = s_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return false;
            for (int i = 0; i < 4; ++i) {
              if (std::isxdigit(static_cast<unsigned char>(s_[pos_ + static_cast<std::size_t>(i)])) == 0) {
                return false;
              }
            }
            pos_ += 4;
            out.push_back('?');  // good enough for a schema check
            break;
          }
          default: return false;
        }
      } else {
        out.push_back(c);
      }
    }
    return false;
  }
  bool parse_number(JsonValue& out) {
    out.kind = JsonValue::Kind::kNumber;
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    try {
      out.number = std::stod(s_.substr(start, pos_ - start));
    } catch (...) {
      return false;
    }
    return true;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

class TraceE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::TracerConfig cfg;
    cfg.enabled = true;
    cfg.sample_every = 1;
    obs::tracer().configure(cfg);
    obs::Journal::global().clear();
    obs::global().reset();  // clear exemplars left by earlier tests
  }
  void TearDown() override {
    obs::tracer().configure({});  // back to disabled
  }
};

// Acceptance: every upload the queue delivered through the faulty link has
// a complete stored trace — link.up, server.upload, server.ingest,
// wal.append (+ commit wait), index.insert — with correct parent nesting.
TEST_F(TraceE2eTest, AckedUploadsStoreCompleteIngestTraces) {
  ScopedDir dir("ingest");
  ServerDurabilityConfig dcfg;
  dcfg.data_dir = dir.path;
  dcfg.fsync = store::FsyncPolicy::kAlways;
  CloudServer server({}, {}, dcfg);

  SimClock clock;
  FaultPlan plan;
  plan.seed = 5;
  plan.drop = 0.25;
  plan.duplicate = 0.10;
  Link link;
  FaultyLink faulty(link, plan, &clock);
  RetryPolicy policy;
  policy.max_attempts = 64;
  UploadQueue queue(policy, 5, &clock);

  constexpr std::size_t kUploads = 6;
  std::vector<std::uint64_t> ids;
  for (std::size_t i = 0; i < kUploads; ++i) {
    ids.push_back(queue.enqueue(make_upload(100 + i, 4)));
  }
  ASSERT_TRUE(queue.drain(FaultyUploadChannel(faulty, server)));
  EXPECT_EQ(server.known_upload_ids(), kUploads);

  const auto traces = obs::tracer().ring().snapshot();
  ASSERT_GE(traces.size(), kUploads);
  std::set<std::uint64_t> ingested_ids;
  for (const auto& tp : traces) {
    const obs::Trace& tr = *tp;
    ASSERT_FALSE(tr.spans.empty());
    EXPECT_STREQ(tr.root().name, "upload.attempt");
    EXPECT_EQ(tr.root().parent_span_id, 0u);
    // Complete nesting: every non-root span's parent is in the trace.
    std::set<std::uint64_t> span_ids;
    for (const auto& s : tr.spans) span_ids.insert(s.span_id);
    for (const auto& s : tr.spans) {
      EXPECT_EQ(s.trace_id, tr.trace_id);
      if (s.span_id != tr.root().span_id) {
        EXPECT_TRUE(span_ids.count(s.parent_span_id))
            << "span " << s.name << " has a dangling parent";
      }
    }
    const obs::SpanRecord* wal = tr.find("wal.append");
    if (wal == nullptr) continue;  // dropped on the uplink, or a dedup
    // This attempt carried the actual ingest: the full chain must be
    // present and correctly parented.
    const obs::SpanRecord* up = tr.find("link.up");
    const obs::SpanRecord* upload = tr.find("server.upload");
    const obs::SpanRecord* ingest = tr.find("server.ingest");
    const obs::SpanRecord* claim = tr.find("server.dedup_claim");
    const obs::SpanRecord* insert = tr.find("index.insert");
    const obs::SpanRecord* commit = tr.find("wal.commit_wait");
    ASSERT_NE(up, nullptr);
    ASSERT_NE(upload, nullptr);
    ASSERT_NE(ingest, nullptr);
    ASSERT_NE(claim, nullptr);
    ASSERT_NE(insert, nullptr);
    ASSERT_NE(commit, nullptr);
    EXPECT_EQ(up->parent_span_id, tr.root().span_id);
    EXPECT_EQ(upload->parent_span_id, tr.root().span_id);
    EXPECT_EQ(ingest->parent_span_id, upload->span_id);
    EXPECT_EQ(claim->parent_span_id, ingest->span_id);
    EXPECT_EQ(wal->parent_span_id, ingest->span_id);
    EXPECT_EQ(insert->parent_span_id, ingest->span_id);
    EXPECT_EQ(commit->parent_span_id, wal->span_id);
    // The spans cover real time in the right order.
    EXPECT_LE(ingest->start_ns, wal->start_ns);
    EXPECT_LE(wal->end_ns, insert->end_ns);
    std::uint64_t uid = 0;
    ASSERT_TRUE(upload->tag("upload_id", uid));
    ingested_ids.insert(uid);
  }
  // Every acked upload's ingest was traced (the trace may belong to an
  // attempt whose ack was later lost — it still exists exactly once).
  for (const std::uint64_t id : ids) {
    EXPECT_TRUE(ingested_ids.count(id)) << "upload " << id << " untraced";
  }
}

// Acceptance: a query slower than the slow threshold appears in the
// slow-request log with its per-stage retrieval spans.
TEST_F(TraceE2eTest, SlowQueryLandsInSlowRequestLogWithStageSpans) {
  auto cfg = obs::tracer().config();
  cfg.slow_ns = 1'000;  // 1 us: any real query qualifies
  obs::tracer().configure(cfg);

  CloudServer server;
  for (std::uint64_t v = 1; v <= 4; ++v) {
    ASSERT_TRUE(server.ingest(make_upload(v, 16)));
  }
  const auto results = server.search(wide_query());
  (void)results;

  const auto slow = obs::tracer().slow_ring().snapshot();
  ASSERT_FALSE(slow.empty()) << "query missing from the slow-request log";
  const obs::Trace& tr = *slow.back();
  EXPECT_STREQ(tr.root().name, "server.query");
  EXPECT_GE(tr.root().duration_ns(), cfg.slow_ns);
  const obs::SpanRecord* pipeline = tr.find("retrieval.search");
  const obs::SpanRecord* range = tr.find("retrieval.range_search");
  const obs::SpanRecord* filter = tr.find("retrieval.filter");
  const obs::SpanRecord* rank = tr.find("retrieval.rank");
  const obs::SpanRecord* index = tr.find("index.query");
  ASSERT_NE(pipeline, nullptr);
  ASSERT_NE(range, nullptr);
  ASSERT_NE(filter, nullptr);
  ASSERT_NE(rank, nullptr);
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(pipeline->parent_span_id, tr.root().span_id);
  EXPECT_EQ(range->parent_span_id, pipeline->span_id);
  EXPECT_EQ(filter->parent_span_id, pipeline->span_id);
  EXPECT_EQ(rank->parent_span_id, pipeline->span_id);
  EXPECT_EQ(index->parent_span_id, pipeline->span_id);
  // The stage spans carry the funnel counts as tags.
  std::uint64_t candidates = 0;
  EXPECT_TRUE(range->tag("candidates", candidates));
  EXPECT_GT(candidates, 0u);
}

// Acceptance: the exemplar trace_ids on the query-latency histogram
// resolve to stored traces.
TEST_F(TraceE2eTest, QueryLatencyExemplarResolvesToStoredTrace) {
  CloudServer server;
  ASSERT_TRUE(server.ingest(make_upload(1, 8)));
  for (int i = 0; i < 4; ++i) {
    (void)server.search(wide_query());
  }
  std::uint64_t exemplar_id = 0;
  for (const auto& e : obs::server_metrics().query_ns.exemplars()) {
    if (e.trace_id != 0) {
      exemplar_id = e.trace_id;
      break;
    }
  }
  ASSERT_NE(exemplar_id, 0u) << "no exemplar recorded on svg_server_query_ns";
  const auto stored = obs::tracer().find_trace(exemplar_id);
  ASSERT_FALSE(stored.empty()) << "exemplar points at an evicted trace";
  EXPECT_STREQ(stored[0]->root().name, "server.query");
}

// Acceptance: the Chrome trace_event export is valid JSON and carries one
// complete "X" event per stored span.
TEST_F(TraceE2eTest, ChromeExportIsValidJsonWithCompleteEvents) {
  CloudServer server;
  ASSERT_TRUE(server.ingest(make_upload(1, 8)));
  (void)server.search(wide_query());

  const auto traces = obs::tracer().ring().snapshot();
  ASSERT_FALSE(traces.empty());
  std::size_t total_spans = 0;
  for (const auto& t : traces) total_spans += t->spans.size();

  std::ostringstream os;
  obs::write_chrome_trace(os, traces);
  const std::string json = os.str();

  JsonValue doc;
  ASSERT_TRUE(JsonReader(json).parse(doc)) << json;
  ASSERT_EQ(doc.kind, JsonValue::Kind::kObject);
  const JsonValue* unit = doc.find("displayTimeUnit");
  ASSERT_NE(unit, nullptr);
  EXPECT_EQ(unit->str, "ms");
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::Kind::kArray);
  ASSERT_EQ(events->array.size(), total_spans);
  for (const JsonValue& ev : events->array) {
    ASSERT_EQ(ev.kind, JsonValue::Kind::kObject);
    const JsonValue* ph = ev.find("ph");
    ASSERT_NE(ph, nullptr);
    EXPECT_EQ(ph->str, "X");
    const JsonValue* name = ev.find("name");
    ASSERT_NE(name, nullptr);
    EXPECT_FALSE(name->str.empty());
    for (const char* key : {"ts", "dur", "pid", "tid"}) {
      const JsonValue* field = ev.find(key);
      ASSERT_NE(field, nullptr) << key;
      EXPECT_EQ(field->kind, JsonValue::Kind::kNumber) << key;
      EXPECT_GE(field->number, 0.0) << key;
    }
    const JsonValue* args = ev.find("args");
    ASSERT_NE(args, nullptr);
    ASSERT_EQ(args->kind, JsonValue::Kind::kObject);
    const JsonValue* trace_id = args->find("trace_id");
    ASSERT_NE(trace_id, nullptr);
    EXPECT_EQ(trace_id->kind, JsonValue::Kind::kString);
    EXPECT_EQ(trace_id->str.rfind("0x", 0), 0u);
  }
}

// The journal side of the story: a WAL failure followed by recovery leaves
// the fail-stop → degraded → attempt → recovered sequence in order.
TEST_F(TraceE2eTest, JournalRecordsDegradeAndRecoverySequence) {
  ScopedDir dir("journal");
  store::FaultyEnv env{store::StoreFaultPlan{}};
  ServerDurabilityConfig dcfg;
  dcfg.data_dir = dir.path;
  dcfg.fsync = store::FsyncPolicy::kAlways;
  dcfg.env = &env;
  CloudServer server({}, {}, dcfg);

  store::StoreFaultPlan plan;
  plan.fsync_error = 1.0;
  plan.seed = 3;
  env.set_plan(plan);
  UploadMessage msg = make_upload(1, 4);
  msg.upload_id = 11;
  EXPECT_EQ(server.ingest_status(msg), IngestStatus::kRetryLater);
  EXPECT_EQ(server.health(), ServerHealth::kDegraded);

  env.set_plan({});
  EXPECT_TRUE(server.try_recover_storage());
  EXPECT_EQ(server.health(), ServerHealth::kOk);

  const auto tail = obs::Journal::global().tail();
  auto first_index = [&tail](obs::JournalEvent event) -> int {
    for (std::size_t i = 0; i < tail.size(); ++i) {
      if (tail[i].event == event) return static_cast<int>(i);
    }
    return -1;
  };
  const int failstop = first_index(obs::JournalEvent::kWalFailstop);
  const int degraded = first_index(obs::JournalEvent::kServerDegraded);
  const int attempt = first_index(obs::JournalEvent::kRecoveryAttempt);
  const int recovered = first_index(obs::JournalEvent::kServerRecovered);
  ASSERT_NE(failstop, -1);
  ASSERT_NE(degraded, -1);
  ASSERT_NE(attempt, -1);
  ASSERT_NE(recovered, -1);
  EXPECT_LT(failstop, degraded);
  EXPECT_LT(degraded, attempt);
  EXPECT_LT(attempt, recovered);
  // The injected fsync fault itself is journaled too.
  EXPECT_NE(first_index(obs::JournalEvent::kStorageFaultInjected), -1);
}

}  // namespace
