// Unit tests for the request tracer (obs/trace.hpp): span nesting, head
// sampling, adopted wire contexts, truncation, the completed-trace rings
// (including overwrite under concurrent emission — run under TSan in CI),
// and histogram exemplars.

#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace {

using namespace svg::obs;

TracerConfig base_config() {
  TracerConfig cfg;
  cfg.enabled = true;
  cfg.sample_every = 1;
  cfg.ring_slots = 64;
  cfg.slow_ring_slots = 8;
  cfg.slow_ns = 50'000'000;
  return cfg;
}

TEST(TraceTest, DisabledTracerYieldsInactiveSpans) {
  Tracer t;  // default config: disabled
  Span root = t.root_span("root");
  EXPECT_FALSE(root.active());
  EXPECT_EQ(root.trace_id(), 0u);
  Span child = t.span("child");
  EXPECT_FALSE(child.active());
  root.end();
  EXPECT_TRUE(t.ring().snapshot().empty());
  EXPECT_FALSE(t.active());
  EXPECT_EQ(t.current_trace_id(), 0u);
}

TEST(TraceTest, RootAndChildrenFormOneNestedTrace) {
  Tracer t;
  t.configure(base_config());
  std::uint64_t root_id = 0, child_a = 0, child_b = 0, grand = 0;
  {
    Span root = t.root_span("request");
    ASSERT_TRUE(root.active());
    root_id = root.span_id();
    EXPECT_EQ(t.current_trace_id(), root.trace_id());
    {
      Span a = t.span("stage_a");
      ASSERT_TRUE(a.active());
      child_a = a.span_id();
      {
        Span g = t.span("inner");
        grand = g.span_id();
        g.tag("items", 7);
      }
    }
    {
      Span b = t.span("stage_b");
      child_b = b.span_id();
    }
    root.tag("ok", 1);
  }
  const auto traces = t.ring().snapshot();
  ASSERT_EQ(traces.size(), 1u);
  const Trace& tr = *traces[0];
  ASSERT_EQ(tr.spans.size(), 4u);
  EXPECT_FALSE(tr.truncated);
  // Children complete before the root; the root is always last.
  EXPECT_EQ(tr.root().span_id, root_id);
  EXPECT_STREQ(tr.root().name, "request");
  EXPECT_EQ(tr.root().parent_span_id, 0u);
  const SpanRecord* a = tr.find("stage_a");
  const SpanRecord* b = tr.find("stage_b");
  const SpanRecord* g = tr.find("inner");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(a->span_id, child_a);
  EXPECT_EQ(a->parent_span_id, root_id);
  EXPECT_EQ(b->span_id, child_b);
  EXPECT_EQ(b->parent_span_id, root_id);
  EXPECT_EQ(g->parent_span_id, child_a);
  EXPECT_EQ(g->span_id, grand);
  std::uint64_t items = 0;
  EXPECT_TRUE(g->tag("items", items));
  EXPECT_EQ(items, 7u);
  // Every span carries the trace id and start <= end.
  for (const auto& s : tr.spans) {
    EXPECT_EQ(s.trace_id, tr.trace_id);
    EXPECT_LE(s.start_ns, s.end_ns);
  }
}

TEST(TraceTest, ChildSpanWithoutActiveTraceIsInactive) {
  Tracer t;
  t.configure(base_config());
  Span orphan = t.span("orphan");
  EXPECT_FALSE(orphan.active());
  orphan.end();
  EXPECT_TRUE(t.ring().snapshot().empty());
}

TEST(TraceTest, NestedRootDegradesToChild) {
  Tracer t;
  t.configure(base_config());
  {
    Span outer = t.root_span("outer");
    Span inner = t.root_span("inner");  // already tracing: becomes a child
    ASSERT_TRUE(inner.active());
    EXPECT_EQ(inner.trace_id(), outer.trace_id());
    inner.end();
  }
  const auto traces = t.ring().snapshot();
  ASSERT_EQ(traces.size(), 1u);
  const SpanRecord* inner = traces[0]->find("inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->parent_span_id, traces[0]->root().span_id);
}

TEST(TraceTest, SamplingRecordsOneInEveryN) {
  auto cfg = base_config();
  cfg.sample_every = 4;
  Tracer t;
  t.configure(cfg);
  for (int i = 0; i < 40; ++i) {
    Span root = t.root_span("req");
    root.end();
  }
  EXPECT_EQ(t.ring().snapshot().size(), 10u);
}

TEST(TraceTest, SampleEveryZeroRecordsNothing) {
  auto cfg = base_config();
  cfg.sample_every = 0;
  Tracer t;
  t.configure(cfg);
  for (int i = 0; i < 16; ++i) {
    Span root = t.root_span("req");
    EXPECT_FALSE(root.active());
  }
  EXPECT_TRUE(t.ring().snapshot().empty());
}

TEST(TraceTest, AdoptedSpanAdoptsWireContext) {
  auto cfg = base_config();
  cfg.sample_every = 0;  // local sampling off: adoption must bypass it
  Tracer t;
  t.configure(cfg);
  const TraceContext wire{0xABCDEF12u, 0x1234u};
  {
    Span s = t.adopted_span("server.upload", wire);
    ASSERT_TRUE(s.active());
    EXPECT_EQ(s.trace_id(), wire.trace_id);
    Span child = t.span("wal.append");
    EXPECT_EQ(child.trace_id(), wire.trace_id);
  }
  const auto traces = t.find_trace(wire.trace_id);
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0]->root().parent_span_id, wire.parent_span_id);
  EXPECT_NE(traces[0]->find("wal.append"), nullptr);
}

TEST(TraceTest, AdoptedSpanJoinsOpenLocalTrace) {
  Tracer t;
  t.configure(base_config());
  Span outer = t.root_span("client");
  const TraceContext stale{999u, 111u};  // in-process call: wire ctx ignored
  Span adopted = t.adopted_span("server", stale);
  ASSERT_TRUE(adopted.active());
  EXPECT_EQ(adopted.trace_id(), outer.trace_id());
  adopted.end();
  outer.end();
  const auto traces = t.ring().snapshot();
  ASSERT_EQ(traces.size(), 1u);
  const SpanRecord* server = traces[0]->find("server");
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->parent_span_id, traces[0]->root().span_id);
}

TEST(TraceTest, AdoptedSpanWithInvalidContextStartsFreshRoot) {
  Tracer t;
  t.configure(base_config());
  {
    Span s = t.adopted_span("server", TraceContext{});
    ASSERT_TRUE(s.active());
    EXPECT_NE(s.trace_id(), 0u);
  }
  EXPECT_EQ(t.ring().snapshot().size(), 1u);
}

TEST(TraceTest, SpanBufferTruncatesAtMaxSpans) {
  auto cfg = base_config();
  cfg.max_spans = 8;
  Tracer t;
  t.configure(cfg);
  {
    Span root = t.root_span("root");
    for (int i = 0; i < 32; ++i) {
      Span c = t.span("child");
      c.end();
    }
  }
  const auto traces = t.ring().snapshot();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_TRUE(traces[0]->truncated);
  // The buffer caps at max_spans, plus the root which is always stored
  // (Trace::root() relies on the last span being the root).
  EXPECT_LE(traces[0]->spans.size(), cfg.max_spans + 1);
  EXPECT_STREQ(traces[0]->root().name, "root");
}

TEST(TraceTest, EmitRecordsPreTimedSpanUnderActiveTrace) {
  Tracer t;
  t.configure(base_config());
  SpanRecord rec{};
  rec.start_ns = 100;
  rec.end_ns = 200;
  rec.name = "stage";
  {
    Span root = t.root_span("root");
    ASSERT_TRUE(t.emit(rec));
    EXPECT_EQ(rec.trace_id, root.trace_id());
    EXPECT_EQ(rec.parent_span_id, root.span_id());
    EXPECT_NE(rec.span_id, 0u);
  }
  SpanRecord untraced{};
  untraced.name = "nope";
  EXPECT_FALSE(t.emit(untraced));
  EXPECT_EQ(untraced.trace_id, 0u);
  const auto traces = t.ring().snapshot();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_NE(traces[0]->find("stage"), nullptr);
}

TEST(TraceTest, SlowRingKeepsOnlySlowRoots) {
  auto cfg = base_config();
  cfg.slow_ns = 1;  // every real root qualifies
  Tracer t;
  t.configure(cfg);
  {
    Span root = t.root_span("slow");
    Span c = t.span("child");
    c.end();
  }
  EXPECT_EQ(t.ring().snapshot().size(), 1u);
  const auto slow = t.slow_ring().snapshot();
  ASSERT_EQ(slow.size(), 1u);
  EXPECT_STREQ(slow[0]->root().name, "slow");

  cfg.slow_ns = UINT64_MAX;  // nothing qualifies
  t.configure(cfg);
  {
    Span root = t.root_span("fast");
  }
  EXPECT_EQ(t.ring().snapshot().size(), 1u);
  EXPECT_TRUE(t.slow_ring().snapshot().empty());
}

TEST(TraceTest, RingOverwritesOldestWhenFull) {
  auto cfg = base_config();
  cfg.ring_slots = 4;
  Tracer t;
  t.configure(cfg);
  for (std::uint64_t i = 0; i < 10; ++i) {
    Span root = t.root_span("req");
    root.tag("ordinal", i);
  }
  EXPECT_EQ(t.ring().pushed(), 10u);
  const auto traces = t.ring().snapshot();
  ASSERT_EQ(traces.size(), 4u);
  // Oldest-first snapshot of the newest four (ordinals 6..9).
  for (std::size_t i = 0; i < traces.size(); ++i) {
    std::uint64_t ordinal = 0;
    ASSERT_TRUE(traces[i]->root().tag("ordinal", ordinal));
    EXPECT_EQ(ordinal, 6 + i);
  }
}

TEST(TraceTest, FindTraceSearchesBothRings) {
  auto cfg = base_config();
  cfg.slow_ns = 1;
  Tracer t;
  t.configure(cfg);
  std::uint64_t id = 0;
  {
    Span root = t.root_span("req");
    id = root.trace_id();
  }
  // Present in both rings, reported once.
  EXPECT_EQ(t.find_trace(id).size(), 1u);
  EXPECT_TRUE(t.find_trace(id ^ 1).empty());
  t.clear();
  EXPECT_TRUE(t.find_trace(id).empty());
  EXPECT_TRUE(t.ring().snapshot().empty());
}

// The TSan target: 8 threads complete traces concurrently into a small
// ring, forcing constant slot reuse. Every published trace must still be
// internally consistent (single trace_id, root last, parents resolve).
TEST(TraceTest, ConcurrentEmissionIntoSmallRingStaysConsistent) {
  auto cfg = base_config();
  cfg.ring_slots = 16;
  cfg.slow_ring_slots = 4;
  cfg.slow_ns = 1;  // exercise the slow ring concurrently too
  Tracer t;
  t.configure(cfg);
  constexpr int kThreads = 8;
  constexpr int kTracesPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&t] {
      for (int i = 0; i < kTracesPerThread; ++i) {
        Span root = t.root_span("req");
        {
          Span a = t.span("stage_a");
          Span b = t.span("inner");
          b.tag("i", static_cast<std::uint64_t>(i));
        }
        Span c = t.span("stage_c");
        c.end();
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(t.ring().pushed(),
            static_cast<std::uint64_t>(kThreads) * kTracesPerThread);
  const auto traces = t.ring().snapshot();
  EXPECT_EQ(traces.size(), 16u);
  std::set<std::uint64_t> ids;
  for (const auto& tr : traces) {
    ASSERT_FALSE(tr->spans.empty());
    EXPECT_TRUE(ids.insert(tr->trace_id).second);  // ids never collide
    EXPECT_STREQ(tr->root().name, "req");
    EXPECT_EQ(tr->root().parent_span_id, 0u);
    std::set<std::uint64_t> span_ids;
    for (const auto& s : tr->spans) span_ids.insert(s.span_id);
    for (const auto& s : tr->spans) {
      EXPECT_EQ(s.trace_id, tr->trace_id);
      if (s.parent_span_id != 0) {
        EXPECT_TRUE(span_ids.count(s.parent_span_id))
            << "dangling parent in concurrent trace";
      }
    }
  }
}

TEST(TraceTest, TextAndChromeExportsRenderEverySpan) {
  Tracer t;
  t.configure(base_config());
  {
    Span root = t.root_span("request");
    Span child = t.span("stage");
    child.tag("items", 3);
  }
  const auto traces = t.ring().snapshot();
  ASSERT_EQ(traces.size(), 1u);
  std::ostringstream text;
  write_trace_text(text, *traces[0]);
  EXPECT_NE(text.str().find("request"), std::string::npos);
  EXPECT_NE(text.str().find("stage"), std::string::npos);
  std::ostringstream chrome;
  write_chrome_trace(chrome, traces);
  const std::string json = chrome.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"request\""), std::string::npos);
  EXPECT_NE(json.find("\"stage\""), std::string::npos);
}

// --- histogram exemplars ----------------------------------------------------

TEST(TraceExemplarTest, ObserveStampsTheBucketExemplar) {
  Histogram h({1'000, 2.0, 4});  // bounds 1000 2000 4000 8000 (+Inf)
  h.observe(500, 0xAAAA);        // bucket 0
  h.observe(3'000, 0xBBBB);      // bucket 2
  h.observe(999'999, 0xCCCC);    // +Inf bucket
  h.observe(600);                // no exemplar: must not clobber 0xAAAA
  const auto ex = h.exemplars();
  ASSERT_EQ(ex.size(), 5u);  // one slot per bucket incl. +Inf
  EXPECT_EQ(ex[0].trace_id, 0xAAAAu);
  EXPECT_EQ(ex[0].value, 500u);
  EXPECT_EQ(ex[1].trace_id, 0u);  // untouched bucket
  EXPECT_EQ(ex[2].trace_id, 0xBBBBu);
  EXPECT_EQ(ex[4].trace_id, 0xCCCCu);
  EXPECT_EQ(ex[4].value, 999'999u);
}

TEST(TraceExemplarTest, NewerObservationReplacesTheExemplar) {
  Histogram h({1'000, 2.0, 4});
  h.observe(100, 0x1);
  h.observe(200, 0x2);
  EXPECT_EQ(h.exemplars()[0].trace_id, 0x2u);
  EXPECT_EQ(h.exemplars()[0].value, 200u);
}

TEST(TraceExemplarTest, PrometheusExpositionCarriesExemplars) {
  Registry reg;
  auto& h = reg.histogram("svg_test_latency_ns", "test", {1'000, 2.0, 4});
  h.observe(500, 0xDEADBEEF);
  std::ostringstream os;
  reg.write_prometheus(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("# {trace_id=\"deadbeef\"} 500"), std::string::npos)
      << out;
}

TEST(TraceExemplarTest, JsonExpositionCarriesExemplars) {
  Registry reg;
  auto& h = reg.histogram("svg_test_latency_ns", "test", {1'000, 2.0, 4});
  h.observe(500, 0xBEEF);
  std::ostringstream os;
  reg.write_json(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"exemplars\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"beef\""), std::string::npos) << out;
}

TEST(TraceExemplarTest, ResetClearsExemplars) {
  Histogram h({1'000, 2.0, 4});
  h.observe(500, 0x77);
  h.reset();
  for (const auto& e : h.exemplars()) {
    EXPECT_EQ(e.trace_id, 0u);
    EXPECT_EQ(e.value, 0u);
  }
}

}  // namespace
