// Property-based sweeps over the similarity measurement: randomized FoV
// pairs across many camera geometries must satisfy the paper's axioms
// (boundedness, identity, symmetry, monotone decay) without exception.

#include <gtest/gtest.h>

#include <cmath>

#include "core/segmentation.hpp"
#include "core/similarity.hpp"
#include "geo/angle.hpp"
#include "geo/geodesy.hpp"
#include "util/rng.hpp"

namespace {

using namespace svg::core;
using svg::geo::LatLng;
using svg::geo::offset_m;

struct Geometry {
  double alpha;
  double radius;
};

class SimilarityProperties : public ::testing::TestWithParam<Geometry> {
 protected:
  const LatLng origin_{39.9042, 116.4074};

  FoV random_fov(svg::util::Xoshiro256& rng, double span_m) const {
    return {offset_m(origin_, rng.uniform(-span_m, span_m),
                     rng.uniform(-span_m, span_m)),
            rng.uniform(0.0, 360.0)};
  }
};

TEST_P(SimilarityProperties, BoundedInUnitInterval) {
  const auto [alpha, radius] = GetParam();
  const SimilarityModel m({alpha, radius});
  svg::util::Xoshiro256 rng(static_cast<std::uint64_t>(alpha * 100));
  for (int i = 0; i < 2000; ++i) {
    const FoV a = random_fov(rng, 3.0 * radius);
    const FoV b = random_fov(rng, 3.0 * radius);
    const double s = m.similarity(a, b);
    ASSERT_GE(s, 0.0) << i;
    ASSERT_LE(s, 1.0) << i;
    ASSERT_FALSE(std::isnan(s)) << i;
  }
}

TEST_P(SimilarityProperties, IdentityIsExactlyOne) {
  const auto [alpha, radius] = GetParam();
  const SimilarityModel m({alpha, radius});
  svg::util::Xoshiro256 rng(7);
  for (int i = 0; i < 200; ++i) {
    const FoV f = random_fov(rng, 2.0 * radius);
    ASSERT_DOUBLE_EQ(m.similarity(f, f), 1.0) << i;
  }
}

TEST_P(SimilarityProperties, Symmetry) {
  const auto [alpha, radius] = GetParam();
  const SimilarityModel m({alpha, radius});
  svg::util::Xoshiro256 rng(11);
  for (int i = 0; i < 1000; ++i) {
    const FoV a = random_fov(rng, 2.0 * radius);
    const FoV b = random_fov(rng, 2.0 * radius);
    ASSERT_NEAR(m.similarity(a, b), m.similarity(b, a), 1e-9) << i;
  }
}

TEST_P(SimilarityProperties, MonotoneInRotation) {
  const auto [alpha, radius] = GetParam();
  const SimilarityModel m({alpha, radius});
  // Fixed positions, heading difference sweeping 0 → 180.
  const FoV base{origin_, 0.0};
  double prev = 2.0;
  for (double dt = 0.0; dt <= 180.0; dt += 2.5) {
    const double s = m.similarity(base, {origin_, dt});
    ASSERT_LE(s, prev + 1e-12) << dt;
    prev = s;
  }
}

TEST_P(SimilarityProperties, MonotoneInDistanceForRandomDirections) {
  const auto [alpha, radius] = GetParam();
  const SimilarityModel m({alpha, radius});
  svg::util::Xoshiro256 rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    const double dir = rng.uniform(0.0, 360.0);
    const double heading = rng.uniform(0.0, 360.0);
    double e, n;
    svg::geo::direction_of_azimuth(dir, e, n);
    const FoV base{origin_, heading};
    double prev = 2.0;
    for (double d = 0.0; d <= 2.0 * radius; d += radius / 20.0) {
      const FoV moved{offset_m(origin_, d * e, d * n), heading};
      const double s = m.similarity(base, moved);
      ASSERT_LE(s, prev + 1e-9)
          << "trial " << trial << " d " << d;
      prev = s;
    }
  }
}

TEST_P(SimilarityProperties, ZeroExactlyWhenComponentsSayZero) {
  const auto [alpha, radius] = GetParam();
  const SimilarityModel m({alpha, radius});
  // Heading difference at the full angle: rotation component zero.
  ASSERT_EQ(m.similarity({origin_, 0.0}, {origin_, 2.0 * alpha}), 0.0);
  // Just inside: positive.
  ASSERT_GT(m.similarity({origin_, 0.0}, {origin_, 2.0 * alpha - 0.5}),
            0.0);
}

TEST_P(SimilarityProperties, TranslationDirectionExtremesBracket) {
  // For any direction θ_p, Sim_T must lie between Sim_⊥ and Sim_∥.
  const auto [alpha, radius] = GetParam();
  const SimilarityModel m({alpha, radius});
  for (double d = 0.0; d <= 1.5 * radius; d += radius / 10.0) {
    const double lo = m.sim_perpendicular(d);
    const double hi = m.sim_parallel(d);
    for (double dir = 0.0; dir < 360.0; dir += 15.0) {
      const double s = m.sim_translation(d, dir);
      ASSERT_GE(s, lo - 1e-12) << d << " " << dir;
      ASSERT_LE(s, hi + 1e-12) << d << " " << dir;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    CameraGeometries, SimilarityProperties,
    ::testing::Values(Geometry{15.0, 30.0}, Geometry{25.0, 60.0},
                      Geometry{30.0, 100.0}, Geometry{35.0, 150.0},
                      Geometry{45.0, 20.0}, Geometry{60.0, 80.0}));

// Segmentation invariants under random sensor streams, across thresholds.
class SegmentationProperties : public ::testing::TestWithParam<double> {};

TEST_P(SegmentationProperties, PartitionOrderAndAnchorCoherence) {
  const double threshold = GetParam();
  const SimilarityModel m({30.0, 100.0});
  svg::util::Xoshiro256 rng(
      static_cast<std::uint64_t>(threshold * 1000) + 1);
  const LatLng origin{39.9, 116.4};

  std::vector<FovRecord> frames;
  LatLng pos = origin;
  double heading = 0.0;
  for (int i = 0; i < 600; ++i) {
    pos = offset_m(pos, rng.gaussian(0.0, 1.0), rng.gaussian(0.5, 1.0));
    heading = svg::geo::wrap_deg(heading + rng.gaussian(0.0, 4.0));
    frames.push_back({i * 100, {pos, heading}});
  }
  const auto segs = segment_video(frames, m, {threshold});

  std::size_t total = 0;
  for (std::size_t k = 0; k < segs.size(); ++k) {
    ASSERT_FALSE(segs[k].empty());
    total += segs[k].size();
    // Every frame in a segment is >= threshold-similar to its anchor
    // (the first frame) — Algorithm 1's invariant.
    const FoV anchor = segs[k].frames.front().fov;
    for (const auto& f : segs[k].frames) {
      ASSERT_GE(m.similarity(anchor, f.fov), threshold);
    }
    // The next segment's first frame broke the invariant.
    if (k + 1 < segs.size()) {
      ASSERT_LT(m.similarity(anchor, segs[k + 1].frames.front().fov),
                threshold);
    }
  }
  ASSERT_EQ(total, frames.size());
}

INSTANTIATE_TEST_SUITE_P(Thresholds, SegmentationProperties,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9));

}  // namespace
