#include "retrieval/coverage.hpp"

#include <gtest/gtest.h>

#include "geo/geodesy.hpp"
#include "sim/crowd.hpp"

namespace {

using namespace svg::retrieval;
using svg::core::RepresentativeFov;
using svg::geo::LatLng;
using svg::geo::offset_m;

const LatLng kCenter{39.9042, 116.4074};

CoverageMapConfig config(std::size_t cells = 16, double extent_m = 1000.0) {
  CoverageMapConfig cfg;
  const LatLng sw = offset_m(kCenter, -extent_m / 2, -extent_m / 2);
  const LatLng ne = offset_m(kCenter, extent_m / 2, extent_m / 2);
  cfg.bounds.min = {sw.lng, sw.lat};
  cfg.bounds.max = {ne.lng, ne.lat};
  cfg.cells_per_side = cells;
  cfg.t_start = 0;
  cfg.t_end = 100'000;
  cfg.camera = {30.0, 100.0};
  return cfg;
}

RepresentativeFov rep_at(double east, double north, double theta,
                         svg::core::TimestampMs t0 = 0,
                         svg::core::TimestampMs t1 = 50'000) {
  RepresentativeFov r;
  r.fov.p = offset_m(kCenter, east, north);
  r.fov.theta_deg = theta;
  r.t_start = t0;
  r.t_end = t1;
  return r;
}

TEST(CoverageMapTest, EmptyCorpusNoCoverage) {
  CoverageMap map(config());
  map.accumulate({});
  EXPECT_EQ(map.covered_cells(), 0u);
  EXPECT_EQ(map.coverage_fraction(), 0.0);
  EXPECT_EQ(map.gaps().size(), 16u * 16u);
}

TEST(CoverageMapTest, SingleFovCoversItsSectorOnly) {
  CoverageMap map(config());
  const std::vector<RepresentativeFov> corpus{rep_at(0, 0, 0.0)};
  map.accumulate(corpus);
  const std::size_t covered = map.covered_cells();
  EXPECT_GT(covered, 0u);
  // A 60°, 100 m sector covers ~5200 m²; cells are 62.5 m → ~1-3 cells
  // wide; definitely under a quarter of the map.
  EXPECT_LT(map.coverage_fraction(), 0.25);
  // Cells north of the camera are covered; south of it are not.
  EXPECT_EQ(map.max_count(), 1u);
}

TEST(CoverageMapTest, TimeWindowExcludesDisjointSegments) {
  CoverageMap map(config());
  const std::vector<RepresentativeFov> corpus{
      rep_at(0, 0, 0.0, 200'000, 300'000)};  // outside [0, 100000]
  map.accumulate(corpus);
  EXPECT_EQ(map.covered_cells(), 0u);
}

TEST(CoverageMapTest, OverlappingFovsStack) {
  CoverageMap map(config());
  const std::vector<RepresentativeFov> corpus{
      rep_at(0, -100, 0.0), rep_at(0, -100, 0.0), rep_at(0, -100, 0.0)};
  map.accumulate(corpus);
  EXPECT_EQ(map.max_count(), 3u);
}

TEST(CoverageMapTest, MoreProvidersMoreCoverage) {
  svg::sim::CityModel city;
  city.center = kCenter;
  city.extent_m = 1000.0;
  svg::util::Xoshiro256 rng(5);
  const auto many =
      svg::sim::random_representative_fovs(300, city, 0, 50'000, rng);
  const std::vector<RepresentativeFov> few(many.begin(), many.begin() + 20);

  CoverageMap sparse(config());
  sparse.accumulate(few);
  CoverageMap dense(config());
  dense.accumulate(many);
  EXPECT_GT(dense.covered_cells(), sparse.covered_cells());
  EXPECT_EQ(dense.gaps().size() + dense.covered_cells(), 16u * 16u);
}

TEST(CoverageMapTest, CellCenterGeometry) {
  CoverageMap map(config(10, 1000.0));
  const LatLng c00 = map.cell_center(0, 0);
  const LatLng c99 = map.cell_center(9, 9);
  // Opposite corners, each 50 m inside the bounds.
  EXPECT_NEAR(svg::geo::displacement_m(c00, c99).x, 900.0, 1.0);
  EXPECT_NEAR(svg::geo::displacement_m(c00, c99).y, 900.0, 1.0);
}

TEST(CoverageMapTest, InvalidConfigThrows) {
  CoverageMapConfig bad = config();
  bad.cells_per_side = 0;
  EXPECT_THROW(CoverageMap{bad}, std::invalid_argument);
}

}  // namespace
