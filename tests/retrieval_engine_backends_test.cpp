// The retrieval engine is generic over the index backend: every backend
// exposing query(GeoTimeRange, visitor) must produce identical ranked
// results. This pins the contract the bench comparisons rely on.

#include <gtest/gtest.h>

#include "index/fov_index.hpp"
#include "index/grid_index.hpp"
#include "index/kdtree_index.hpp"
#include "index/sharded_fov_index.hpp"
#include "retrieval/engine.hpp"
#include "sim/crowd.hpp"
#include "util/rng.hpp"

namespace {

using namespace svg;

class EngineBackendsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    city_.extent_m = 2000.0;
    util::Xoshiro256 rng(123);
    reps_ = sim::random_representative_fovs(4000, city_, 0, 7'200'000, rng);
    for (const auto& r : reps_) {
      rtree_.insert(r);
      linear_.insert(r);
      grid_.insert(r);
    }
    kd_ = std::make_unique<index::KdTreeIndex>(reps_);

    cfg_.camera = {30.0, 100.0};
    cfg_.orientation_slack_deg = 5.0;
    cfg_.top_n = 15;
  }

  retrieval::Query random_query(util::Xoshiro256& rng) const {
    retrieval::Query q;
    q.center = city_.random_point(rng);
    q.radius_m = rng.uniform(20.0, 120.0);
    q.t_start = static_cast<core::TimestampMs>(rng.bounded(6'000'000));
    q.t_end = q.t_start + 1'800'000;
    return q;
  }

  static std::vector<std::pair<std::uint64_t, std::uint32_t>> keys(
      const std::vector<retrieval::RankedResult>& rs) {
    std::vector<std::pair<std::uint64_t, std::uint32_t>> out;
    for (const auto& r : rs) {
      out.emplace_back(r.rep.video_id, r.rep.segment_id);
    }
    return out;
  }

  sim::CityModel city_;
  std::vector<core::RepresentativeFov> reps_;
  index::FovIndex rtree_;
  index::LinearIndex linear_;
  index::GridIndex grid_{sim::CityModel{.extent_m = 2000.0}.bounds_deg(),
                         48};
  std::unique_ptr<index::KdTreeIndex> kd_;
  retrieval::RetrievalConfig cfg_;
};

TEST_F(EngineBackendsTest, AllBackendsReturnIdenticalRankings) {
  retrieval::RetrievalEngine<index::FovIndex> e_rtree(rtree_, cfg_);
  retrieval::RetrievalEngine<index::LinearIndex> e_linear(linear_, cfg_);
  retrieval::RetrievalEngine<index::GridIndex> e_grid(grid_, cfg_);
  retrieval::RetrievalEngine<index::KdTreeIndex> e_kd(*kd_, cfg_);

  util::Xoshiro256 rng(9);
  for (int i = 0; i < 40; ++i) {
    const auto q = random_query(rng);
    const auto a = keys(e_rtree.search(q));
    ASSERT_EQ(a, keys(e_linear.search(q))) << "linear, query " << i;
    ASSERT_EQ(a, keys(e_grid.search(q))) << "grid, query " << i;
    ASSERT_EQ(a, keys(e_kd.search(q))) << "kd, query " << i;
  }
}

TEST_F(EngineBackendsTest, TracesAgreeOnCandidateCounts) {
  retrieval::RetrievalEngine<index::FovIndex> e_rtree(rtree_, cfg_);
  retrieval::RetrievalEngine<index::GridIndex> e_grid(grid_, cfg_);
  util::Xoshiro256 rng(10);
  for (int i = 0; i < 20; ++i) {
    const auto q = random_query(rng);
    retrieval::SearchTrace ta, tb;
    (void)e_rtree.search(q, &ta);
    (void)e_grid.search(q, &tb);
    ASSERT_EQ(ta.candidates, tb.candidates) << i;
    ASSERT_EQ(ta.after_filter, tb.after_filter) << i;
  }
}

TEST_F(EngineBackendsTest, ConcurrentWrapperMatchesPlainIndex) {
  index::ConcurrentFovIndex concurrent;
  for (const auto& r : reps_) concurrent.insert(r);
  retrieval::RetrievalEngine<index::FovIndex> plain(rtree_, cfg_);
  retrieval::RetrievalEngine<index::ConcurrentFovIndex> wrapped(concurrent,
                                                                cfg_);
  util::Xoshiro256 rng(11);
  for (int i = 0; i < 15; ++i) {
    const auto q = random_query(rng);
    ASSERT_EQ(keys(plain.search(q)), keys(wrapped.search(q))) << i;
  }
}

// The sharded index visits candidates in a backend-specific order; the
// engine's deterministic (distance, video, segment) ranking must erase
// that difference — including the exact order of the returned top-N.
TEST_F(EngineBackendsTest, ShardedIndexMatchesPlainIndex) {
  index::ShardedFovIndex sharded({.shards = 6});
  sharded.insert_batch(reps_);
  retrieval::RetrievalEngine<index::FovIndex> plain(rtree_, cfg_);
  retrieval::RetrievalEngine<index::ShardedFovIndex> wrapped(sharded, cfg_);
  util::Xoshiro256 rng(12);
  for (int i = 0; i < 15; ++i) {
    const auto q = random_query(rng);
    ASSERT_EQ(keys(plain.search(q)), keys(wrapped.search(q))) << i;
  }
}

}  // namespace
