#include "retrieval/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "geo/geodesy.hpp"
#include "sim/crowd.hpp"
#include "util/rng.hpp"

namespace {

using namespace svg::retrieval;
using svg::core::RepresentativeFov;
using svg::geo::LatLng;
using svg::geo::offset_m;
using svg::index::FovIndex;
using svg::index::LinearIndex;

const LatLng kCenter{39.9042, 116.4074};

RepresentativeFov rep_at(std::uint64_t vid, double east, double north,
                         double theta, svg::core::TimestampMs t0 = 0,
                         svg::core::TimestampMs t1 = 10'000) {
  RepresentativeFov r;
  r.video_id = vid;
  r.fov.p = offset_m(kCenter, east, north);
  r.fov.theta_deg = theta;
  r.t_start = t0;
  r.t_end = t1;
  return r;
}

Query query_at(double radius = 30.0) {
  Query q;
  q.t_start = 0;
  q.t_end = 10'000;
  q.center = kCenter;
  q.radius_m = radius;
  return q;
}

RetrievalConfig config() {
  RetrievalConfig c;
  c.camera = {30.0, 100.0};
  c.orientation_slack_deg = 0.0;
  c.top_n = 10;
  return c;
}

TEST(RetrievalEngineTest, CameraFacingQueryIsReturned) {
  FovIndex idx;
  // 50 m south of centre, facing north → sees the centre.
  idx.insert(rep_at(1, 0, -50, 0.0));
  RetrievalEngine<FovIndex> engine(idx, config());
  const auto results = engine.search(query_at());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].rep.video_id, 1u);
  EXPECT_NEAR(results[0].distance_m, 50.0, 0.1);
}

TEST(RetrievalEngineTest, CameraFacingAwayIsFiltered) {
  FovIndex idx;
  idx.insert(rep_at(1, 0, -50, 180.0));  // south of centre, facing south
  RetrievalEngine<FovIndex> engine(idx, config());
  SearchTrace trace;
  const auto results = engine.search(query_at(), &trace);
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(trace.candidates, 1u);   // found by range search
  EXPECT_EQ(trace.after_filter, 0u); // killed by orientation filter
}

TEST(RetrievalEngineTest, MerkelGrandstandScenario) {
  // The paper's example: a camera in the first row filming the grandstand
  // (away from the pitch) must not match a query about the pitch.
  FovIndex idx;
  idx.insert(rep_at(1, 0, -20, 0.0));    // filming toward the pitch centre
  idx.insert(rep_at(2, 0, -20, 180.0));  // front row, filming the stands
  RetrievalEngine<FovIndex> engine(idx, config());
  const auto results = engine.search(query_at());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].rep.video_id, 1u);
}

TEST(RetrievalEngineTest, BeyondRadiusOfViewFiltered) {
  FovIndex idx;
  idx.insert(rep_at(1, 0, -150, 0.0));  // 150 m away, R = 100
  RetrievalEngine<FovIndex> engine(idx, config());
  EXPECT_TRUE(engine.search(query_at()).empty());
}

TEST(RetrievalEngineTest, TimeWindowFiltersSegments) {
  FovIndex idx;
  idx.insert(rep_at(1, 0, -50, 0.0, 0, 1000));
  idx.insert(rep_at(2, 0, -50, 0.0, 20'000, 30'000));
  RetrievalEngine<FovIndex> engine(idx, config());
  Query q = query_at();
  q.t_start = 0;
  q.t_end = 5000;
  const auto results = engine.search(q);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].rep.video_id, 1u);
}

TEST(RetrievalEngineTest, RankedByDistanceAscending) {
  FovIndex idx;
  idx.insert(rep_at(1, 0, -80, 0.0));
  idx.insert(rep_at(2, 0, -20, 0.0));
  idx.insert(rep_at(3, 0, -50, 0.0));
  RetrievalEngine<FovIndex> engine(idx, config());
  const auto results = engine.search(query_at());
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].rep.video_id, 2u);
  EXPECT_EQ(results[1].rep.video_id, 3u);
  EXPECT_EQ(results[2].rep.video_id, 1u);
  EXPECT_LE(results[0].distance_m, results[1].distance_m);
  EXPECT_LE(results[1].distance_m, results[2].distance_m);
  // Relevance decreases with distance.
  EXPECT_GT(results[0].relevance, results[2].relevance);
}

TEST(RetrievalEngineTest, TopNTruncates) {
  FovIndex idx;
  for (std::uint64_t i = 0; i < 50; ++i) {
    idx.insert(rep_at(i, 0, -10.0 - static_cast<double>(i), 0.0));
  }
  RetrievalConfig cfg = config();
  cfg.top_n = 5;
  RetrievalEngine<FovIndex> engine(idx, cfg);
  SearchTrace trace;
  const auto results = engine.search(query_at(), &trace);
  ASSERT_EQ(results.size(), 5u);
  EXPECT_EQ(trace.after_filter, 50u);
  EXPECT_EQ(trace.returned, 5u);
  // The five closest.
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(results[i].rep.video_id, i);
  }
}

TEST(RetrievalEngineTest, OrientationSlackAdmitsBorderline) {
  FovIndex idx;
  // Camera 50 m south, facing 35° — the centre sits 35° off-axis, just
  // outside a 30° half-angle.
  idx.insert(rep_at(1, 0, -50, 35.0));
  RetrievalConfig strict = config();
  RetrievalEngine<FovIndex> engine_strict(idx, strict);
  EXPECT_TRUE(engine_strict.search(query_at()).empty());

  RetrievalConfig slack = config();
  slack.orientation_slack_deg = 10.0;
  RetrievalEngine<FovIndex> engine_slack(idx, slack);
  EXPECT_EQ(engine_slack.search(query_at()).size(), 1u);
}

TEST(RetrievalEngineTest, FilterDisabledKeepsEverythingInRange) {
  FovIndex idx;
  idx.insert(rep_at(1, 0, -50, 180.0));  // facing away
  RetrievalConfig cfg = config();
  cfg.orientation_filter = false;
  RetrievalEngine<FovIndex> engine(idx, cfg);
  EXPECT_EQ(engine.search(query_at()).size(), 1u);
}

TEST(RetrievalEngineTest, RTreeAndLinearBackendsAgree) {
  svg::sim::CityModel city;
  city.center = kCenter;
  svg::util::Xoshiro256 rng(77);
  const auto reps = svg::sim::random_representative_fovs(
      2000, city, 0, 3'600'000, rng);
  FovIndex tree;
  LinearIndex linear;
  for (const auto& r : reps) {
    tree.insert(r);
    linear.insert(r);
  }
  RetrievalConfig cfg = config();
  cfg.top_n = 20;
  RetrievalEngine<FovIndex> tree_engine(tree, cfg);
  RetrievalEngine<LinearIndex> linear_engine(linear, cfg);
  for (int i = 0; i < 25; ++i) {
    Query q;
    q.center = city.random_point(rng);
    q.radius_m = 50.0;
    q.t_start = static_cast<svg::core::TimestampMs>(rng.bounded(3'000'000));
    q.t_end = q.t_start + 600'000;
    const auto a = tree_engine.search(q);
    const auto b = linear_engine.search(q);
    ASSERT_EQ(a.size(), b.size()) << i;
    for (std::size_t j = 0; j < a.size(); ++j) {
      ASSERT_EQ(a[j].rep.video_id, b[j].rep.video_id) << i << ":" << j;
      ASSERT_DOUBLE_EQ(a[j].distance_m, b[j].distance_m);
    }
  }
}

TEST(RetrievalEngineTest, EmptyIndexReturnsNothing) {
  FovIndex idx;
  RetrievalEngine<FovIndex> engine(idx, config());
  SearchTrace trace;
  EXPECT_TRUE(engine.search(query_at(), &trace).empty());
  EXPECT_EQ(trace.candidates, 0u);
}

}  // namespace
