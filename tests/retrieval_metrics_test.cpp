#include "retrieval/metrics.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "geo/geodesy.hpp"

namespace {

using namespace svg::retrieval;
using svg::core::CameraIntrinsics;
using svg::core::FovRecord;
using svg::core::RepresentativeFov;
using svg::geo::LatLng;
using svg::geo::offset_m;

const LatLng kCenter{39.9042, 116.4074};
const CameraIntrinsics kCam{30.0, 100.0};

std::vector<FovRecord> frames_facing(double east, double north, double theta,
                                     svg::core::TimestampMs t0,
                                     svg::core::TimestampMs t1, int n = 10) {
  std::vector<FovRecord> v;
  for (int i = 0; i < n; ++i) {
    const auto t = t0 + (t1 - t0) * i / (n - 1);
    v.push_back({t, {offset_m(kCenter, east, north), theta}});
  }
  return v;
}

Query make_query() {
  Query q;
  q.t_start = 0;
  q.t_end = 10'000;
  q.center = kCenter;
  q.radius_m = 30.0;
  return q;
}

RepresentativeFov rep(std::uint64_t vid, svg::core::TimestampMs t0,
                      svg::core::TimestampMs t1) {
  RepresentativeFov r;
  r.video_id = vid;
  r.t_start = t0;
  r.t_end = t1;
  return r;
}

TEST(VisibilityOracleTest, CoveringVideoIsRelevant) {
  VisibilityOracle oracle(kCam);
  oracle.add_video(1, frames_facing(0, -50, 0.0, 0, 10'000));
  EXPECT_TRUE(oracle.segment_relevant(1, 0, 10'000, make_query()));
}

TEST(VisibilityOracleTest, FacingAwayIsIrrelevant) {
  VisibilityOracle oracle(kCam);
  oracle.add_video(1, frames_facing(0, -50, 180.0, 0, 10'000));
  EXPECT_FALSE(oracle.segment_relevant(1, 0, 10'000, make_query()));
}

TEST(VisibilityOracleTest, TimeWindowIntersectionRequired) {
  VisibilityOracle oracle(kCam);
  oracle.add_video(1, frames_facing(0, -50, 0.0, 20'000, 30'000));
  // Query window [0, 10000] doesn't reach the frames.
  EXPECT_FALSE(oracle.segment_relevant(1, 20'000, 30'000, make_query()));
  Query late = make_query();
  late.t_start = 25'000;
  late.t_end = 26'000;
  EXPECT_TRUE(oracle.segment_relevant(1, 20'000, 30'000, late));
}

TEST(VisibilityOracleTest, UnknownVideoIsIrrelevant) {
  VisibilityOracle oracle(kCam);
  EXPECT_FALSE(oracle.segment_relevant(99, 0, 1000, make_query()));
}

TEST(VisibilityOracleTest, MomentaryGlimpseCounts) {
  VisibilityOracle oracle(kCam);
  // Camera pans: faces away except one frame at t = 5000.
  auto frames = frames_facing(0, -50, 180.0, 0, 10'000, 11);
  frames[5].fov.theta_deg = 0.0;
  oracle.add_video(1, frames);
  EXPECT_TRUE(oracle.segment_relevant(1, 0, 10'000, make_query()));
  // But a sub-window missing that frame is irrelevant.
  Query early = make_query();
  early.t_end = 3000;
  EXPECT_FALSE(oracle.segment_relevant(1, 0, 10'000, early));
}

TEST(EvaluateResultsTest, PerfectRetrieval) {
  VisibilityOracle oracle(kCam);
  oracle.add_video(1, frames_facing(0, -50, 0.0, 0, 10'000));
  oracle.add_video(2, frames_facing(0, -50, 180.0, 0, 10'000));

  const std::vector<RepresentativeFov> corpus{rep(1, 0, 10'000),
                                              rep(2, 0, 10'000)};
  std::vector<RankedResult> results(1);
  results[0].rep = corpus[0];

  const auto report =
      evaluate_results(results, corpus, oracle, make_query());
  EXPECT_EQ(report.returned, 1u);
  EXPECT_EQ(report.relevant_returned, 1u);
  EXPECT_EQ(report.relevant_total, 1u);
  EXPECT_DOUBLE_EQ(report.precision, 1.0);
  EXPECT_DOUBLE_EQ(report.recall, 1.0);
  EXPECT_DOUBLE_EQ(report.f1, 1.0);
  EXPECT_DOUBLE_EQ(report.average_precision, 1.0);
}

TEST(EvaluateResultsTest, FalsePositiveLowersPrecision) {
  VisibilityOracle oracle(kCam);
  oracle.add_video(1, frames_facing(0, -50, 0.0, 0, 10'000));
  oracle.add_video(2, frames_facing(0, -50, 180.0, 0, 10'000));
  const std::vector<RepresentativeFov> corpus{rep(1, 0, 10'000),
                                              rep(2, 0, 10'000)};
  std::vector<RankedResult> results(2);
  results[0].rep = corpus[1];  // irrelevant ranked first
  results[1].rep = corpus[0];
  const auto report =
      evaluate_results(results, corpus, oracle, make_query());
  EXPECT_DOUBLE_EQ(report.precision, 0.5);
  EXPECT_DOUBLE_EQ(report.recall, 1.0);
  // AP penalizes the bad ordering: hit at rank 2 → AP = (1/2)/1 = 0.5.
  EXPECT_DOUBLE_EQ(report.average_precision, 0.5);
}

TEST(EvaluateResultsTest, MissedRelevantLowersRecall) {
  VisibilityOracle oracle(kCam);
  oracle.add_video(1, frames_facing(0, -50, 0.0, 0, 10'000));
  oracle.add_video(2, frames_facing(0, -40, 0.0, 0, 10'000));
  const std::vector<RepresentativeFov> corpus{rep(1, 0, 10'000),
                                              rep(2, 0, 10'000)};
  std::vector<RankedResult> results(1);
  results[0].rep = corpus[0];
  const auto report =
      evaluate_results(results, corpus, oracle, make_query());
  EXPECT_DOUBLE_EQ(report.precision, 1.0);
  EXPECT_DOUBLE_EQ(report.recall, 0.5);
  EXPECT_NEAR(report.f1, 2.0 / 3.0, 1e-12);
}

TEST(EvaluateResultsTest, EmptyResultsZeroMetrics) {
  VisibilityOracle oracle(kCam);
  const std::vector<RepresentativeFov> corpus;
  const auto report = evaluate_results({}, corpus, oracle, make_query());
  EXPECT_EQ(report.returned, 0u);
  EXPECT_DOUBLE_EQ(report.precision, 0.0);
  EXPECT_DOUBLE_EQ(report.recall, 0.0);
}

TEST(MergeReportsTest, AveragesRatios) {
  QualityReport a;
  a.precision = 1.0;
  a.recall = 0.5;
  a.returned = 10;
  QualityReport b;
  b.precision = 0.5;
  b.recall = 1.0;
  b.returned = 20;
  const std::vector<QualityReport> rs{a, b};
  const auto merged = merge_reports(rs);
  EXPECT_DOUBLE_EQ(merged.precision, 0.75);
  EXPECT_DOUBLE_EQ(merged.recall, 0.75);
  EXPECT_EQ(merged.returned, 30u);
}

TEST(SegmentKeyTest, Ordering) {
  SegmentKey a{1, 0}, b{1, 1}, c{2, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (SegmentKey{1, 0}));
}

}  // namespace
