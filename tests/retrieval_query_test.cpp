#include "retrieval/query.hpp"

#include <gtest/gtest.h>

#include "geo/geodesy.hpp"

namespace {

using namespace svg::retrieval;
using svg::geo::LatLng;

Query make_query() {
  Query q;
  q.t_start = 1000;
  q.t_end = 5000;
  q.center = {40.0, 116.0};
  q.radius_m = 50.0;
  return q;
}

TEST(MakeSearchRangeTest, TimeWindowPassesThrough) {
  const auto r = make_search_range(make_query());
  EXPECT_EQ(r.t_start, 1000);
  EXPECT_EQ(r.t_end, 5000);
}

TEST(MakeSearchRangeTest, BoxIsCentredAndSizedByRadius) {
  const Query q = make_query();
  const auto r = make_search_range(q, 1.0);
  EXPECT_NEAR(0.5 * (r.lng_min + r.lng_max), q.center.lng, 1e-12);
  EXPECT_NEAR(0.5 * (r.lat_min + r.lat_max), q.center.lat, 1e-12);
  // Half-width converts back to ~50 m in both axes.
  const double half_lat_m =
      0.5 * (r.lat_max - r.lat_min) * svg::geo::metres_per_degree_lat();
  const double half_lng_m = 0.5 * (r.lng_max - r.lng_min) *
                            svg::geo::metres_per_degree_lng(q.center.lat);
  EXPECT_NEAR(half_lat_m, 50.0, 0.01);
  EXPECT_NEAR(half_lng_m, 50.0, 0.01);
}

TEST(MakeSearchRangeTest, ExpansionScalesBox) {
  const Query q = make_query();
  const auto r1 = make_search_range(q, 1.0);
  const auto r3 = make_search_range(q, 3.0);
  EXPECT_NEAR(r3.lat_max - r3.lat_min, 3.0 * (r1.lat_max - r1.lat_min),
              1e-12);
}

TEST(MakeSearchRangeTest, LongitudeWiderAtHighLatitude) {
  Query q = make_query();
  q.center = {60.0, 10.0};
  const auto r = make_search_range(q, 1.0);
  // Same metres need ~2x the longitude degrees at 60° N.
  EXPECT_GT(r.lng_max - r.lng_min, 1.9 * (r.lat_max - r.lat_min));
}

TEST(LosslessExpansionTest, CoversCameraRadius) {
  const Query q = make_query();  // r̂ = 50
  const svg::core::CameraIntrinsics cam{30.0, 100.0};
  EXPECT_DOUBLE_EQ(lossless_expansion(q, cam), 3.0);  // 1 + 100/50
  // The expanded half-width reaches any camera that can see the circle.
  const auto r = make_search_range(q, lossless_expansion(q, cam));
  const double half_m =
      0.5 * (r.lat_max - r.lat_min) * svg::geo::metres_per_degree_lat();
  EXPECT_NEAR(half_m, q.radius_m + cam.radius_m, 0.05);
}

TEST(LosslessExpansionTest, DegenerateRadiusFallsBack) {
  Query q = make_query();
  q.radius_m = 0.0;
  EXPECT_DOUBLE_EQ(lossless_expansion(q, {30.0, 100.0}), 1.0);
}

}  // namespace
