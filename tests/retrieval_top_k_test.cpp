#include "retrieval/top_k.hpp"

#include <gtest/gtest.h>

#include "geo/geodesy.hpp"
#include "sim/crowd.hpp"
#include "util/rng.hpp"

namespace {

using namespace svg;
using geo::LatLng;
using geo::offset_m;

const LatLng kCenter{39.9042, 116.4074};

core::RepresentativeFov rep_at(std::uint64_t vid, double east, double north,
                               double theta,
                               core::TimestampMs t0 = 0,
                               core::TimestampMs t1 = 10'000) {
  core::RepresentativeFov r;
  r.video_id = vid;
  r.fov.p = offset_m(kCenter, east, north);
  r.fov.theta_deg = theta;
  r.t_start = t0;
  r.t_end = t1;
  return r;
}

retrieval::RetrievalConfig config() {
  retrieval::RetrievalConfig c;
  c.camera = {30.0, 100.0};
  c.orientation_slack_deg = 0.0;
  return c;
}

TEST(SearchTopKTest, ReturnsNearestCoveringCameras) {
  index::FovIndex idx;
  idx.insert(rep_at(1, 0, -80, 0.0));   // covers, far
  idx.insert(rep_at(2, 0, -20, 0.0));   // covers, near
  idx.insert(rep_at(3, 0, -10, 180.0)); // nearest but faces away
  idx.insert(rep_at(4, 0, -50, 0.0));   // covers, middle
  const auto results =
      retrieval::search_top_k(idx, kCenter, 0, 10'000, 2, config());
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].rep.video_id, 2u);
  EXPECT_EQ(results[1].rep.video_id, 4u);
}

TEST(SearchTopKTest, StopsAtRadiusOfView) {
  index::FovIndex idx;
  idx.insert(rep_at(1, 0, -150, 0.0));  // beyond R = 100
  const auto results =
      retrieval::search_top_k(idx, kCenter, 0, 10'000, 5, config());
  EXPECT_TRUE(results.empty());
}

TEST(SearchTopKTest, SurvivesHeavyFiltering) {
  // 50 cameras face away; only 3 face the centre — top-k must dig past
  // the decoys.
  index::FovIndex idx;
  for (std::uint64_t i = 0; i < 50; ++i) {
    idx.insert(rep_at(100 + i, 0, -10.0 - static_cast<double>(i), 180.0));
  }
  idx.insert(rep_at(1, 0, -70, 0.0));
  idx.insert(rep_at(2, 0, -80, 0.0));
  idx.insert(rep_at(3, 0, -90, 0.0));
  const auto results =
      retrieval::search_top_k(idx, kCenter, 0, 10'000, 3, config());
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].rep.video_id, 1u);
  EXPECT_EQ(results[2].rep.video_id, 3u);
}

TEST(SearchTopKTest, TimeWindowRespected) {
  index::FovIndex idx;
  idx.insert(rep_at(1, 0, -20, 0.0, 0, 1000));
  idx.insert(rep_at(2, 0, -30, 0.0, 50'000, 60'000));
  const auto results =
      retrieval::search_top_k(idx, kCenter, 40'000, 70'000, 5, config());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].rep.video_id, 2u);
}

TEST(SearchTopKTest, AgreesWithRangeEngineOnDenseCorpus) {
  sim::CityModel city;
  city.center = kCenter;
  city.extent_m = 1000.0;
  util::Xoshiro256 rng(31);
  index::FovIndex idx;
  for (const auto& r :
       sim::random_representative_fovs(2000, city, 0, 3'600'000, rng)) {
    idx.insert(r);
  }
  retrieval::RetrievalConfig cfg = config();
  cfg.orientation_slack_deg = 5.0;
  cfg.top_n = 10;

  retrieval::RetrievalEngine<index::FovIndex> engine(idx, cfg);
  retrieval::Query q;
  q.center = kCenter;
  q.radius_m = 100.0;  // range path with a generous radius
  q.t_start = 0;
  q.t_end = 3'600'000;
  const auto range_results = engine.search(q);
  const auto topk_results =
      retrieval::search_top_k(idx, kCenter, 0, 3'600'000, 10, cfg);

  ASSERT_EQ(topk_results.size(), range_results.size());
  for (std::size_t i = 0; i < topk_results.size(); ++i) {
    EXPECT_EQ(topk_results[i].rep.video_id,
              range_results[i].rep.video_id)
        << i;
    EXPECT_NEAR(topk_results[i].distance_m, range_results[i].distance_m,
                1e-6);
  }
}

TEST(SearchTopKTest, EmptyIndexAndZeroK) {
  index::FovIndex idx;
  EXPECT_TRUE(
      retrieval::search_top_k(idx, kCenter, 0, 1000, 5, config()).empty());
  idx.insert(rep_at(1, 0, -20, 0.0));
  EXPECT_TRUE(
      retrieval::search_top_k(idx, kCenter, 0, 1000, 0, config()).empty());
}

}  // namespace
