#include "retrieval/utility.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "geo/geodesy.hpp"

namespace {

using namespace svg::retrieval;
using svg::core::CameraIntrinsics;
using svg::core::RepresentativeFov;

const CameraIntrinsics kCam{30.0, 100.0};  // 60° angular coverage

Query make_query(svg::core::TimestampMs t0 = 0,
                 svg::core::TimestampMs t1 = 100'000) {
  Query q;
  q.t_start = t0;
  q.t_end = t1;
  q.center = {39.9, 116.4};
  q.radius_m = 50.0;
  return q;
}

RepresentativeFov rep(double theta, svg::core::TimestampMs t0,
                      svg::core::TimestampMs t1) {
  RepresentativeFov r;
  r.fov.theta_deg = theta;
  r.t_start = t0;
  r.t_end = t1;
  return r;
}

TEST(GlobalUtilityTest, FullRectangle) {
  // 360° × 100 s.
  EXPECT_DOUBLE_EQ(global_utility(make_query()), 36'000.0);
  EXPECT_DOUBLE_EQ(global_utility(make_query(500, 500)), 0.0);
}

TEST(UtilityRectTest, ClipsToQueryWindow) {
  const auto r = utility_rect(rep(90.0, -5'000, 50'000), make_query(), kCam);
  EXPECT_EQ(r.t_lo, 0);
  EXPECT_EQ(r.t_hi, 50'000);
  EXPECT_DOUBLE_EQ(r.angle_hi_deg - r.angle_lo_deg, 60.0);
  EXPECT_FALSE(r.empty());
}

TEST(UtilityRectTest, DisjointTimeIsEmpty) {
  const auto r =
      utility_rect(rep(90.0, 200'000, 300'000), make_query(), kCam);
  EXPECT_TRUE(r.empty());
}

TEST(CoverageUtilityTest, SingleRect) {
  const std::vector<UtilityRect> rects{
      utility_rect(rep(90.0, 0, 50'000), make_query(), kCam)};
  // 60° × 50 s.
  EXPECT_NEAR(coverage_utility(rects), 3000.0, 1e-9);
}

TEST(CoverageUtilityTest, DisjointRectsAdd) {
  const std::vector<UtilityRect> rects{
      utility_rect(rep(90.0, 0, 50'000), make_query(), kCam),
      utility_rect(rep(200.0, 0, 50'000), make_query(), kCam)};
  EXPECT_NEAR(coverage_utility(rects), 6000.0, 1e-9);
}

TEST(CoverageUtilityTest, OverlapCountedOnce) {
  // Identical rectangles: union equals one of them.
  const auto r = utility_rect(rep(90.0, 0, 50'000), make_query(), kCam);
  const std::vector<UtilityRect> rects{r, r, r};
  EXPECT_NEAR(coverage_utility(rects), 3000.0, 1e-9);
}

TEST(CoverageUtilityTest, PartialAngularOverlap) {
  // Headings 90 and 120 share 30° of the 60° span.
  const std::vector<UtilityRect> rects{
      utility_rect(rep(90.0, 0, 50'000), make_query(), kCam),
      utility_rect(rep(120.0, 0, 50'000), make_query(), kCam)};
  // Union spans 90° of angle × 50 s.
  EXPECT_NEAR(coverage_utility(rects), 4500.0, 1e-9);
}

TEST(CoverageUtilityTest, WrapAroundNorthHandled) {
  // Heading 350°: covers [320°, 20°] across the wrap.
  const std::vector<UtilityRect> rects{
      utility_rect(rep(350.0, 0, 10'000), make_query(), kCam)};
  EXPECT_NEAR(coverage_utility(rects), 60.0 * 10.0, 1e-9);
  // Plus a rect at 10° (covers [340°, 40°]): union spans 320°..40° = 80°.
  const std::vector<UtilityRect> both{
      rects[0], utility_rect(rep(10.0, 0, 10'000), make_query(), kCam)};
  EXPECT_NEAR(coverage_utility(both), 80.0 * 10.0, 1e-9);
}

TEST(CoverageUtilityTest, TemporalUnionWithinStrip) {
  const std::vector<UtilityRect> rects{
      utility_rect(rep(90.0, 0, 30'000), make_query(), kCam),
      utility_rect(rep(90.0, 20'000, 60'000), make_query(), kCam)};
  // Same angle strip, time union = 60 s.
  EXPECT_NEAR(coverage_utility(rects), 60.0 * 60.0, 1e-9);
}

TEST(SelectGreedyTest, PrefersComplementaryCoverage) {
  const std::vector<RepresentativeFov> cands{
      rep(90.0, 0, 50'000),   // A
      rep(92.0, 0, 50'000),   // A' nearly duplicates A
      rep(270.0, 0, 50'000),  // B opposite direction
  };
  const auto sel = select_greedy(cands, make_query(), kCam, 2);
  ASSERT_EQ(sel.chosen.size(), 2u);
  // Must pick one of {A, A'} and B — never the duplicate pair.
  const bool has_b = sel.chosen[0] == 2 || sel.chosen[1] == 2;
  EXPECT_TRUE(has_b);
  EXPECT_NEAR(sel.utility, 2.0 * 60.0 * 50.0, 61.0 * 50.0);
}

TEST(SelectGreedyTest, MarginalGainsNonIncreasing) {
  // Submodularity: each added candidate contributes no more than the last.
  std::vector<RepresentativeFov> cands;
  for (int i = 0; i < 8; ++i) {
    cands.push_back(rep(45.0 * i * 0.8, 0, 50'000));
  }
  double prev_total = 0.0;
  double prev_gain = 1e18;
  for (std::size_t k = 1; k <= 5; ++k) {
    const auto sel = select_greedy(cands, make_query(), kCam, k);
    const double gain = sel.utility - prev_total;
    EXPECT_LE(gain, prev_gain + 1e-9) << k;
    prev_gain = gain;
    prev_total = sel.utility;
  }
}

TEST(SelectGreedyTest, StopsWhenNoGain) {
  const std::vector<RepresentativeFov> cands{rep(90.0, 0, 50'000),
                                             rep(90.0, 0, 50'000)};
  const auto sel = select_greedy(cands, make_query(), kCam, 5);
  EXPECT_EQ(sel.chosen.size(), 1u);  // the duplicate adds nothing
}

TEST(SelectGreedyTest, EmptyCandidates) {
  const auto sel = select_greedy({}, make_query(), kCam, 3);
  EXPECT_TRUE(sel.chosen.empty());
  EXPECT_EQ(sel.utility, 0.0);
}

TEST(SelectBudgetedTest, RespectsBudget) {
  const std::vector<RepresentativeFov> cands{
      rep(0.0, 0, 50'000), rep(90.0, 0, 50'000), rep(180.0, 0, 50'000)};
  const std::vector<double> costs{1.0, 1.0, 1.0};
  const auto sel =
      select_budgeted(cands, costs, make_query(), kCam, 2.0);
  EXPECT_LE(sel.total_cost, 2.0);
  EXPECT_EQ(sel.chosen.size(), 2u);
}

TEST(SelectBudgetedTest, BestSingleBeatsCheapGreedy) {
  // One expensive candidate covering a long window vs. two cheap ones with
  // tiny coverage: greedy-by-ratio grabs cheap ones, but the single big one
  // wins and the max() rule must return it.
  const std::vector<RepresentativeFov> cands{
      rep(0.0, 0, 100'000),  // full window, cost 10
      rep(90.0, 0, 1'000),   // 1 s, cost 0.01 (great ratio)
      rep(180.0, 0, 1'000),  // 1 s, cost 0.01
  };
  const std::vector<double> costs{10.0, 0.01, 0.01};
  const auto sel =
      select_budgeted(cands, costs, make_query(), kCam, 10.0);
  // Greedy-per-ratio fills with cheap ones then cannot afford the big one;
  // best single = 6000 deg·s > 120 deg·s.
  ASSERT_EQ(sel.chosen.size(), 1u);
  EXPECT_EQ(sel.chosen[0], 0u);
  EXPECT_NEAR(sel.utility, 60.0 * 100.0, 1e-6);
}

TEST(SelectBudgetedTest, MismatchedCostsReturnsEmpty) {
  const std::vector<RepresentativeFov> cands{rep(0.0, 0, 1000)};
  const auto sel = select_budgeted(cands, {}, make_query(), kCam, 1.0);
  EXPECT_TRUE(sel.chosen.empty());
}

TEST(IncentiveAuctionTest, PaymentsCoverBidsAndFitBudget) {
  std::vector<RepresentativeFov> cands;
  std::vector<double> bids;
  for (int i = 0; i < 6; ++i) {
    cands.push_back(rep(60.0 * i, 0, 50'000));
    bids.push_back(0.5 + 0.1 * i);
  }
  const double budget = 10.0;
  const auto out = run_incentive_auction(cands, bids, make_query(), kCam,
                                         budget);
  ASSERT_FALSE(out.winners.empty());
  ASSERT_EQ(out.payments.size(), out.winners.size());
  double spent = 0.0;
  for (std::size_t i = 0; i < out.winners.size(); ++i) {
    // Individual rationality: payment >= bid.
    EXPECT_GE(out.payments[i], bids[out.winners[i]]);
    spent += out.payments[i];
  }
  EXPECT_NEAR(out.spent, spent, 1e-9);
  // Budget feasibility.
  EXPECT_LE(out.spent, budget + 1e-9);
  EXPECT_GT(out.utility, 0.0);
}

TEST(IncentiveAuctionTest, ExpensiveBidsExcluded) {
  const std::vector<RepresentativeFov> cands{rep(0.0, 0, 50'000)};
  const std::vector<double> bids{100.0};
  const auto out =
      run_incentive_auction(cands, bids, make_query(), kCam, 1.0);
  EXPECT_TRUE(out.winners.empty());
  EXPECT_EQ(out.spent, 0.0);
}

TEST(IncentiveAuctionTest, ZeroBudgetNoWinners) {
  const std::vector<RepresentativeFov> cands{rep(0.0, 0, 50'000)};
  const std::vector<double> bids{1.0};
  const auto out =
      run_incentive_auction(cands, bids, make_query(), kCam, 0.0);
  EXPECT_TRUE(out.winners.empty());
}

}  // namespace
