#include "sim/crowd.hpp"

#include <gtest/gtest.h>

#include <set>

#include "geo/geodesy.hpp"

namespace {

using namespace svg::sim;
using svg::geo::LatLng;

CityModel small_city() {
  CityModel c;
  c.extent_m = 2000.0;
  return c;
}

TEST(CityModelTest, RandomPointsInsideBounds) {
  const CityModel city = small_city();
  svg::util::Xoshiro256 rng(1);
  const auto bounds = city.bounds_deg();
  for (int i = 0; i < 1000; ++i) {
    const LatLng p = city.random_point(rng);
    ASSERT_TRUE(bounds.contains_point({p.lng, p.lat}));
  }
}

TEST(CityModelTest, BoundsSpanExtent) {
  const CityModel city = small_city();
  const auto b = city.bounds_deg();
  const LatLng sw{b.min[1], b.min[0]};
  const LatLng ne{b.max[1], b.max[0]};
  const auto d = svg::geo::displacement_m(sw, ne);
  EXPECT_NEAR(d.x, 2000.0, 2.0);
  EXPECT_NEAR(d.y, 2000.0, 2.0);
}

TEST(MakeRandomTrajectoryTest, ProducesEveryKind) {
  const CityModel city = small_city();
  svg::util::Xoshiro256 rng(2);
  for (auto kind : {MovementKind::kWalk, MovementKind::kDrive,
                    MovementKind::kBike, MovementKind::kRotate}) {
    const auto t = make_random_trajectory(kind, city, 30.0, rng);
    ASSERT_NE(t, nullptr);
    EXPECT_GT(t->duration_s(), 0.0);
    // Start pose is well-formed.
    const Pose p = t->at(0.0);
    EXPECT_GE(p.heading_deg, 0.0);
    EXPECT_LT(p.heading_deg, 360.0);
  }
}

TEST(MakeRandomTrajectoryTest, RotationStaysPut) {
  const CityModel city = small_city();
  svg::util::Xoshiro256 rng(3);
  const auto t = make_random_trajectory(MovementKind::kRotate, city, 20.0,
                                        rng);
  const LatLng start = t->at(0.0).position;
  EXPECT_NEAR(svg::geo::distance_m(start, t->at(10.0).position), 0.0, 1e-9);
}

TEST(GenerateCrowdTest, SessionCountsWithinConfig) {
  const CityModel city = small_city();
  CrowdConfig cfg;
  cfg.providers = 20;
  cfg.min_sessions = 1;
  cfg.max_sessions = 3;
  cfg.min_duration_s = 5.0;
  cfg.max_duration_s = 10.0;
  cfg.fps = 10.0;
  svg::util::Xoshiro256 rng(4);
  const auto sessions = generate_crowd(city, cfg, rng);
  EXPECT_GE(sessions.size(), 20u);
  EXPECT_LE(sessions.size(), 60u);
  std::set<std::uint64_t> video_ids;
  for (const auto& s : sessions) {
    EXPECT_LT(s.provider_id, 20u);
    EXPECT_FALSE(s.records.empty());
    EXPECT_EQ(s.records.size(), s.ground_truth.size());
    video_ids.insert(s.video_id);
    // Session durations in range (frame count ≈ duration · fps).
    const double dur =
        static_cast<double>(s.records.back().t - s.records.front().t) /
        1000.0;
    EXPECT_GE(dur, 4.0);
    EXPECT_LE(dur, 11.0);
    // Timestamps line up between noisy and truth streams.
    for (std::size_t i = 0; i < s.records.size(); ++i) {
      ASSERT_EQ(s.records[i].t, s.ground_truth[i].t);
    }
  }
  EXPECT_EQ(video_ids.size(), sessions.size()) << "video ids must be unique";
}

TEST(GenerateCrowdTest, DeterministicForSeed) {
  const CityModel city = small_city();
  CrowdConfig cfg;
  cfg.providers = 5;
  cfg.min_duration_s = 5.0;
  cfg.max_duration_s = 8.0;
  cfg.fps = 5.0;
  svg::util::Xoshiro256 r1(9), r2(9);
  const auto a = generate_crowd(city, cfg, r1);
  const auto b = generate_crowd(city, cfg, r2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].video_id, b[i].video_id);
    ASSERT_EQ(a[i].records.size(), b[i].records.size());
    ASSERT_EQ(a[i].records.front().fov.p.lat,
              b[i].records.front().fov.p.lat);
  }
}

TEST(GenerateCrowdTest, SessionStartsInsideWindow) {
  const CityModel city = small_city();
  CrowdConfig cfg;
  cfg.providers = 10;
  cfg.min_duration_s = 5.0;
  cfg.max_duration_s = 6.0;
  cfg.fps = 5.0;
  cfg.window_start = 1'000'000;
  cfg.window_length_ms = 60'000;
  svg::util::Xoshiro256 rng(5);
  for (const auto& s : generate_crowd(city, cfg, rng)) {
    EXPECT_GE(s.start_time, 1'000'000);
    EXPECT_LT(s.start_time, 1'060'000);
    EXPECT_EQ(s.records.front().t, s.start_time);
  }
}

TEST(GenerateCrowdTest, MovementMixRespectsZeroWeights) {
  const CityModel city = small_city();
  CrowdConfig cfg;
  cfg.providers = 30;
  cfg.min_duration_s = 5.0;
  cfg.max_duration_s = 6.0;
  cfg.fps = 5.0;
  cfg.w_walk = 0.0;
  cfg.w_drive = 0.0;
  cfg.w_bike = 0.0;
  cfg.w_rotate = 1.0;
  svg::util::Xoshiro256 rng(6);
  for (const auto& s : generate_crowd(city, cfg, rng)) {
    EXPECT_EQ(s.movement, MovementKind::kRotate);
  }
}

TEST(RandomRepresentativeFovsTest, FieldsInRange) {
  const CityModel city = small_city();
  svg::util::Xoshiro256 rng(7);
  const auto reps =
      random_representative_fovs(500, city, 1'000'000, 3'600'000, rng);
  ASSERT_EQ(reps.size(), 500u);
  const auto bounds = city.bounds_deg();
  std::set<std::uint64_t> ids;
  for (const auto& r : reps) {
    ASSERT_TRUE(bounds.contains_point({r.fov.p.lng, r.fov.p.lat}));
    ASSERT_GE(r.fov.theta_deg, 0.0);
    ASSERT_LT(r.fov.theta_deg, 360.0);
    ASSERT_GE(r.t_start, 1'000'000);
    ASSERT_LT(r.t_start, 4'600'000);
    ASSERT_GT(r.t_end, r.t_start);
    ASSERT_LE(r.t_end - r.t_start, 60'000);
    ids.insert(r.video_id);
  }
  EXPECT_EQ(ids.size(), 500u);
}

}  // namespace
