#include "sim/sensors.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "geo/angle.hpp"
#include "geo/geodesy.hpp"
#include "util/stats.hpp"

namespace {

using namespace svg::sim;
using svg::core::FovRecord;
using svg::geo::LatLng;

const LatLng kOrigin{39.9042, 116.4074};

TEST(SensorSamplerTest, FrameCountMatchesFpsAndDuration) {
  StraightTrajectory traj(kOrigin, 0.0, 1.0, 10.0);
  SensorSampler sampler(SensorNoiseConfig::ideal(), {30.0, 0});
  svg::util::Xoshiro256 rng(1);
  const auto recs = sampler.sample(traj, rng);
  EXPECT_EQ(recs.size(), 301u);  // 10 s at 30 fps, inclusive of t = 0
}

TEST(SensorSamplerTest, TimestampsAreUniform) {
  StraightTrajectory traj(kOrigin, 0.0, 1.0, 2.0);
  SensorSampler sampler(SensorNoiseConfig::ideal(), {25.0, 5000});
  svg::util::Xoshiro256 rng(1);
  const auto recs = sampler.sample(traj, rng);
  EXPECT_EQ(recs.front().t, 5000);
  for (std::size_t i = 1; i < recs.size(); ++i) {
    ASSERT_EQ(recs[i].t - recs[i - 1].t, 40);  // 1000/25 ms
  }
}

TEST(SensorSamplerTest, IdealSensorsReproduceGroundTruth) {
  StraightTrajectory traj(kOrigin, 45.0, 2.0, 5.0);
  SensorSampler sampler(SensorNoiseConfig::ideal(), {10.0, 0});
  svg::util::Xoshiro256 rng(1);
  const auto recs = sampler.sample(traj, rng);
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const Pose truth = traj.at(static_cast<double>(i) / 10.0);
    EXPECT_NEAR(
        svg::geo::distance_m(recs[i].fov.p, truth.position), 0.0, 1e-6);
    EXPECT_NEAR(recs[i].fov.theta_deg, truth.heading_deg, 1e-9);
  }
}

TEST(SensorSamplerTest, GpsNoiseHasConfiguredMagnitude) {
  StraightTrajectory traj(kOrigin, 0.0, 0.0001, 600.0);  // ~static, 10 min
  SensorNoiseConfig noise = SensorNoiseConfig::ideal();
  noise.gps_rate_hz = 1.0;
  noise.gps_sigma_m = 5.0;
  SensorSampler sampler(noise, {1.0, 0});
  svg::util::Xoshiro256 rng(7);
  const auto recs = sampler.sample(traj, rng);
  svg::util::RunningStats err;
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const Pose truth = traj.at(static_cast<double>(i));
    err.add(svg::geo::distance_m(recs[i].fov.p, truth.position));
  }
  // Rayleigh-distributed with sigma=5: mean ≈ 5·sqrt(π/2) ≈ 6.27.
  EXPECT_GT(err.mean(), 3.0);
  EXPECT_LT(err.mean(), 10.0);
}

TEST(SensorSamplerTest, CompassBiasShiftsAllSamples) {
  StraightTrajectory traj(kOrigin, 90.0, 1.0, 10.0);
  SensorNoiseConfig noise = SensorNoiseConfig::ideal();
  noise.compass_bias_deg = 8.0;
  SensorSampler sampler(noise, {10.0, 0});
  svg::util::Xoshiro256 rng(3);
  const auto recs = sampler.sample(traj, rng);
  for (const auto& r : recs) {
    ASSERT_NEAR(r.fov.theta_deg, 98.0, 1e-9);
  }
}

TEST(SensorSamplerTest, CompassJitterAveragesOut) {
  StraightTrajectory traj(kOrigin, 90.0, 1.0, 100.0);
  SensorNoiseConfig noise = SensorNoiseConfig::ideal();
  noise.compass_sigma_deg = 4.0;
  SensorSampler sampler(noise, {30.0, 0});
  svg::util::Xoshiro256 rng(4);
  const auto recs = sampler.sample(traj, rng);
  svg::util::RunningStats theta;
  for (const auto& r : recs) theta.add(r.fov.theta_deg);
  EXPECT_NEAR(theta.mean(), 90.0, 0.5);
  EXPECT_NEAR(theta.stddev(), 4.0, 0.5);
}

TEST(SensorSamplerTest, GpsHoldRepeatsFixBetweenUpdates) {
  StraightTrajectory traj(kOrigin, 0.0, 10.0, 5.0);  // fast mover
  SensorNoiseConfig noise = SensorNoiseConfig::ideal();
  noise.gps_rate_hz = 1.0;  // 1 fix/s, 30 frames/s
  SensorSampler sampler(noise, {30.0, 0});
  svg::util::Xoshiro256 rng(5);
  const auto recs = sampler.sample(traj, rng);
  // Within one GPS period the reported position is constant.
  int changes = 0;
  for (std::size_t i = 1; i < recs.size(); ++i) {
    if (recs[i].fov.p.lat != recs[i - 1].fov.p.lat ||
        recs[i].fov.p.lng != recs[i - 1].fov.p.lng) {
      ++changes;
    }
  }
  // ~5 fixes over 5 seconds (plus the initial one).
  EXPECT_LE(changes, 7);
  EXPECT_GE(changes, 3);
}

TEST(SensorSamplerTest, DeterministicGivenSeed) {
  StraightTrajectory traj(kOrigin, 30.0, 1.5, 20.0);
  SensorNoiseConfig noise;  // defaults: noisy
  SensorSampler sampler(noise, {30.0, 0});
  svg::util::Xoshiro256 rng1(42), rng2(42);
  const auto a = sampler.sample(traj, rng1);
  const auto b = sampler.sample(traj, rng2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].fov.p.lat, b[i].fov.p.lat);
    ASSERT_EQ(a[i].fov.theta_deg, b[i].fov.theta_deg);
  }
}

TEST(SensorSamplerTest, InvalidFpsThrows) {
  StraightTrajectory traj(kOrigin, 0.0, 1.0, 5.0);
  SensorSampler sampler(SensorNoiseConfig::ideal(), {0.0, 0});
  svg::util::Xoshiro256 rng(1);
  EXPECT_THROW(sampler.sample(traj, rng), std::invalid_argument);
}

TEST(ClockModelTest, OffsetAndDriftApply) {
  ClockModel c{.offset_ms = 120.0, .drift_ppm = 0.0};
  EXPECT_EQ(c.device_time(1'000'000), 1'000'120);
  ClockModel d{.offset_ms = 0.0, .drift_ppm = 1000.0};  // 0.1%
  EXPECT_EQ(d.device_time(1'000'000), 1'001'000);
}

TEST(ClockModelTest, NtpSyncedIsSubsecond) {
  svg::util::Xoshiro256 rng(6);
  for (int i = 0; i < 100; ++i) {
    const ClockModel c = ClockModel::ntp_synced(rng);
    EXPECT_LT(std::fabs(c.offset_ms), 1000.0);
  }
}

}  // namespace
