#include "sim/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "sim/sensors.hpp"
#include "sim/trajectory.hpp"
#include "util/rng.hpp"

namespace {

using namespace svg::sim;
using svg::core::FovRecord;

std::vector<FovRecord> sample_trace() {
  StraightTrajectory traj({39.9042, 116.4074}, 30.0, 1.4, 10.0);
  SensorSampler sampler(SensorNoiseConfig::ideal(), {10.0, 5'000});
  svg::util::Xoshiro256 rng(1);
  return sampler.sample(traj, rng);
}

TEST(TraceIoTest, RoundTripThroughStream) {
  const auto records = sample_trace();
  std::stringstream ss;
  write_trace_csv(ss, records);
  const auto back = read_trace_csv(ss);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ((*back)[i].t, records[i].t);
    EXPECT_NEAR((*back)[i].fov.p.lat, records[i].fov.p.lat, 1e-7);
    EXPECT_NEAR((*back)[i].fov.p.lng, records[i].fov.p.lng, 1e-7);
    EXPECT_NEAR((*back)[i].fov.theta_deg, records[i].fov.theta_deg, 1e-3);
  }
}

TEST(TraceIoTest, HeaderIsOptional) {
  std::stringstream ss("1000,39.9,116.4,45.0\n2000,39.901,116.401,46.0\n");
  const auto back = read_trace_csv(ss);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), 2u);
  EXPECT_EQ((*back)[0].t, 1000);
  EXPECT_DOUBLE_EQ((*back)[1].fov.theta_deg, 46.0);
}

TEST(TraceIoTest, BlankLinesSkipped) {
  std::stringstream ss("t_ms,lat,lng,theta_deg\n\n1000,39.9,116.4,0\n\n");
  const auto back = read_trace_csv(ss);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->size(), 1u);
}

TEST(TraceIoTest, MalformedRowRejectsWholeTrace) {
  std::stringstream ss("1000,39.9,116.4,0\nnot,a,valid,row,at all\n");
  EXPECT_FALSE(read_trace_csv(ss).has_value());
}

TEST(TraceIoTest, OutOfRangeCoordinatesRejected) {
  std::stringstream ss("1000,95.0,116.4,0\n");
  EXPECT_FALSE(read_trace_csv(ss).has_value());
  std::stringstream ss2("1000,39.9,520.0,0\n");
  EXPECT_FALSE(read_trace_csv(ss2).has_value());
}

TEST(TraceIoTest, FileRoundTrip) {
  const auto records = sample_trace();
  const std::string path =
      (std::filesystem::temp_directory_path() / "svg_trace_test.csv")
          .string();
  ASSERT_TRUE(write_trace_csv_file(path, records));
  const auto back = read_trace_csv_file(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->size(), records.size());
  std::remove(path.c_str());
}

TEST(TraceIoTest, MissingFileIsNullopt) {
  EXPECT_FALSE(read_trace_csv_file("/no/such/file.csv").has_value());
}

TEST(TraceIoTest, EmptyInputGivesEmptyTrace) {
  std::stringstream ss;
  const auto back = read_trace_csv(ss);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->empty());
}

}  // namespace
