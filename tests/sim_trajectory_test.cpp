#include "sim/trajectory.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "geo/angle.hpp"

namespace {

using namespace svg::sim;
using svg::geo::LatLng;
using svg::geo::distance_m;
using svg::geo::offset_m;

const LatLng kOrigin{39.9042, 116.4074};

TEST(StraightTrajectoryTest, CoversExpectedDistance) {
  StraightTrajectory t(kOrigin, 90.0, 2.0, 30.0);  // east, 2 m/s, 30 s
  EXPECT_DOUBLE_EQ(t.duration_s(), 30.0);
  const Pose end = t.at(30.0);
  EXPECT_NEAR(distance_m(kOrigin, end.position), 60.0, 0.05);
  EXPECT_DOUBLE_EQ(end.heading_deg, 90.0);
}

TEST(StraightTrajectoryTest, ClampsOutsideDomain) {
  StraightTrajectory t(kOrigin, 0.0, 1.0, 10.0);
  EXPECT_EQ(t.at(-5.0).position.lat, t.at(0.0).position.lat);
  EXPECT_EQ(t.at(50.0).position.lat, t.at(10.0).position.lat);
}

TEST(StraightTrajectoryTest, CameraOffsetAppliesToHeadingOnly) {
  // Walking north, filming out the right side (the paper's θ_p = 90° case).
  StraightTrajectory t(kOrigin, 0.0, 1.0, 10.0, 90.0);
  const Pose p = t.at(5.0);
  EXPECT_DOUBLE_EQ(p.heading_deg, 90.0);
  // Motion is still northward.
  const auto d = svg::geo::displacement_m(kOrigin, p.position);
  EXPECT_NEAR(d.x, 0.0, 1e-6);
  EXPECT_NEAR(d.y, 5.0, 0.01);
}

TEST(StraightTrajectoryTest, InvalidDurationThrows) {
  EXPECT_THROW(StraightTrajectory(kOrigin, 0, 1.0, 0.0),
               std::invalid_argument);
}

TEST(RotationTrajectoryTest, SpinsAtConstantRate) {
  RotationTrajectory t(kOrigin, 10.0, 12.0, 30.0);
  EXPECT_DOUBLE_EQ(t.at(0.0).heading_deg, 10.0);
  EXPECT_DOUBLE_EQ(t.at(5.0).heading_deg, 70.0);
  EXPECT_NEAR(t.at(30.0).heading_deg, svg::geo::wrap_deg(10.0 + 360.0), 1e-9);
  // Position never moves.
  EXPECT_EQ(t.at(17.3).position.lat, kOrigin.lat);
  EXPECT_EQ(t.at(17.3).position.lng, kOrigin.lng);
}

TEST(RotationTrajectoryTest, NegativeRateRotatesBackwards) {
  RotationTrajectory t(kOrigin, 0.0, -10.0, 10.0);
  EXPECT_DOUBLE_EQ(t.at(1.0).heading_deg, 350.0);
}

TEST(WaypointTrajectoryTest, DurationFromRouteLength) {
  const std::vector<LatLng> route{kOrigin, offset_m(kOrigin, 0, 100),
                                  offset_m(kOrigin, 100, 100)};
  WaypointTrajectory t(route, 5.0);
  EXPECT_NEAR(t.duration_s(), 200.0 / 5.0, 0.01);
}

TEST(WaypointTrajectoryTest, HeadingFollowsLegs) {
  const std::vector<LatLng> route{kOrigin, offset_m(kOrigin, 0, 100),
                                  offset_m(kOrigin, 100, 100)};
  WaypointTrajectory t(route, 5.0, 0.0, /*turn_blend_s=*/0.0);
  EXPECT_NEAR(t.at(5.0).heading_deg, 0.0, 0.1);    // northbound leg
  EXPECT_NEAR(t.at(30.0).heading_deg, 90.0, 0.1);  // eastbound leg
}

TEST(WaypointTrajectoryTest, TurnBlendingIsGradual) {
  const std::vector<LatLng> route{kOrigin, offset_m(kOrigin, 0, 100),
                                  offset_m(kOrigin, 100, 100)};
  WaypointTrajectory t(route, 5.0, 0.0, /*turn_blend_s=*/4.0);
  // Mid-corner (t = 20 s is the corner) heading is between 0 and 90.
  const double h = t.at(20.0).heading_deg;
  EXPECT_GT(h, 5.0);
  EXPECT_LT(h, 85.0);
  // Heading never jumps more than a few degrees between close samples.
  double prev = t.at(0.0).heading_deg;
  for (double s = 0.25; s <= t.duration_s(); s += 0.25) {
    const double cur = t.at(s).heading_deg;
    ASSERT_LE(
        std::fabs(svg::geo::signed_angular_difference_deg(prev, cur)), 10.0)
        << s;
    prev = cur;
  }
}

TEST(WaypointTrajectoryTest, EndsAtLastWaypoint) {
  const std::vector<LatLng> route{kOrigin, offset_m(kOrigin, 30, 40)};
  WaypointTrajectory t(route, 1.0);
  EXPECT_NEAR(distance_m(t.at(t.duration_s()).position, route.back()), 0.0,
              0.1);
}

TEST(WaypointTrajectoryTest, SkipsDuplicateWaypoints) {
  const std::vector<LatLng> route{kOrigin, kOrigin, offset_m(kOrigin, 0, 50)};
  WaypointTrajectory t(route, 1.0);
  EXPECT_NEAR(t.duration_s(), 50.0, 0.01);
}

TEST(WaypointTrajectoryTest, DegenerateRoutesThrow) {
  EXPECT_THROW(WaypointTrajectory({kOrigin}, 1.0), std::invalid_argument);
  EXPECT_THROW(WaypointTrajectory({kOrigin, kOrigin}, 1.0),
               std::invalid_argument);
  EXPECT_THROW(
      WaypointTrajectory({kOrigin, offset_m(kOrigin, 0, 10)}, 0.0),
      std::invalid_argument);
}

TEST(CompositeTrajectoryTest, ConcatenatesParts) {
  std::vector<TrajectoryPtr> parts;
  parts.push_back(
      std::make_unique<StraightTrajectory>(kOrigin, 0.0, 1.0, 10.0));
  const LatLng mid = parts[0]->at(10.0).position;
  parts.push_back(std::make_unique<RotationTrajectory>(mid, 0.0, 9.0, 10.0));
  CompositeTrajectory t(std::move(parts));
  EXPECT_DOUBLE_EQ(t.duration_s(), 20.0);
  // First half: moving north.
  EXPECT_NEAR(t.at(5.0).heading_deg, 0.0, 1e-9);
  // Second half: spinning in place at `mid`.
  EXPECT_NEAR(t.at(15.0).heading_deg, 45.0, 1e-9);
  EXPECT_NEAR(distance_m(t.at(15.0).position, mid), 0.0, 1e-6);
}

TEST(CompositeTrajectoryTest, EmptyThrows) {
  EXPECT_THROW(CompositeTrajectory({}), std::invalid_argument);
}

}  // namespace
