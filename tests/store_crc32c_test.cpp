#include "store/crc32c.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace {

using svg::store::crc32c;
using svg::store::crc32c_extend;

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(Crc32cTest, KnownVectors) {
  // The RFC 3720 check value for the Castagnoli polynomial.
  EXPECT_EQ(crc32c(bytes_of("123456789")), 0xE3069283u);
  EXPECT_EQ(crc32c({}), 0u);
  // 32 zero bytes (iSCSI test vector).
  EXPECT_EQ(crc32c(std::vector<std::uint8_t>(32, 0)), 0x8A9136AAu);
  // 32 0xFF bytes.
  EXPECT_EQ(crc32c(std::vector<std::uint8_t>(32, 0xFF)), 0x62A8AB43u);
}

TEST(Crc32cTest, IncrementalExtendMatchesOneShot) {
  const auto data = bytes_of("the quick brown fox jumps over the lazy dog");
  const std::uint32_t whole = crc32c(data);
  for (std::size_t split = 0; split <= data.size(); ++split) {
    std::uint32_t crc = crc32c_extend(
        0, {data.data(), split});
    crc = crc32c_extend(crc, {data.data() + split, data.size() - split});
    EXPECT_EQ(crc, whole) << "split at " << split;
  }
}

TEST(Crc32cTest, SensitiveToEveryBit) {
  auto data = bytes_of("payload under test");
  const std::uint32_t base = crc32c(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      data[i] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_NE(crc32c(data), base) << "byte " << i << " bit " << bit;
      data[i] ^= static_cast<std::uint8_t>(1u << bit);
    }
  }
}

}  // namespace
