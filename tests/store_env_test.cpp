// store::Env / store::FaultyEnv — the pluggable I/O layer under the WAL,
// snapshots and checkpoints (docs/ROBUSTNESS.md). Pins the POSIX
// implementation's file semantics and the fault layer's determinism: the
// same (seed, plan) injects the same faults at the same per-op ordinals,
// and fail_once_at turns "which single I/O dies" into a sweepable
// parameter.

#include "store/env.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

namespace {

using namespace svg::store;

struct ScopedDir {
  explicit ScopedDir(const std::string& tag) {
    path = (std::filesystem::temp_directory_path() /
            ("svg_env_test_" + tag + "_" + std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~ScopedDir() { std::filesystem::remove_all(path); }
  std::string path;
};

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(StoreEnvTest, PosixWriteReadRoundTrip) {
  ScopedDir dir("roundtrip");
  Env& env = Env::posix();
  const std::string path = dir.path + "/f";
  {
    auto f = env.open(path, OpenMode::kCreateExclusive);
    ASSERT_TRUE(f != nullptr);
    EXPECT_TRUE(f->write(bytes_of("hello ")));
    EXPECT_TRUE(f->write(bytes_of("world")));
    EXPECT_TRUE(f->sync());
  }
  const auto back = env.read_file(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, bytes_of("hello world"));
}

TEST(StoreEnvTest, PosixCreateExclusiveRefusesExistingFile) {
  ScopedDir dir("excl");
  Env& env = Env::posix();
  const std::string path = dir.path + "/f";
  ASSERT_TRUE(env.open(path, OpenMode::kCreateExclusive) != nullptr);
  EXPECT_TRUE(env.open(path, OpenMode::kCreateExclusive) == nullptr);
}

TEST(StoreEnvTest, PosixResumeAppendContinuesAtEnd) {
  ScopedDir dir("resume");
  Env& env = Env::posix();
  const std::string path = dir.path + "/f";
  {
    auto f = env.open(path, OpenMode::kCreateExclusive);
    ASSERT_TRUE(f != nullptr);
    ASSERT_TRUE(f->write(bytes_of("abc")));
  }
  {
    auto f = env.open(path, OpenMode::kResumeAppend);
    ASSERT_TRUE(f != nullptr);
    ASSERT_TRUE(f->write(bytes_of("def")));
  }
  EXPECT_EQ(*env.read_file(path), bytes_of("abcdef"));
}

TEST(StoreEnvTest, PosixTruncateOverwritesExisting) {
  ScopedDir dir("trunc");
  Env& env = Env::posix();
  const std::string path = dir.path + "/f";
  {
    auto f = env.open(path, OpenMode::kCreateExclusive);
    ASSERT_TRUE(f->write(bytes_of("a long first version")));
  }
  {
    auto f = env.open(path, OpenMode::kTruncate);
    ASSERT_TRUE(f != nullptr);
    ASSERT_TRUE(f->write(bytes_of("v2")));
  }
  EXPECT_EQ(*env.read_file(path), bytes_of("v2"));
}

TEST(StoreEnvTest, PosixRenameRemoveTruncateFile) {
  ScopedDir dir("fsops");
  Env& env = Env::posix();
  const std::string a = dir.path + "/a";
  const std::string b = dir.path + "/b";
  {
    auto f = env.open(a, OpenMode::kCreateExclusive);
    ASSERT_TRUE(f->write(bytes_of("0123456789")));
  }
  EXPECT_TRUE(env.rename_file(a, b));
  EXPECT_FALSE(env.read_file(a).has_value());
  EXPECT_TRUE(env.truncate_file(b, 4));
  EXPECT_EQ(*env.read_file(b), bytes_of("0123"));
  EXPECT_TRUE(env.remove_file(b));
  EXPECT_FALSE(env.read_file(b).has_value());
  // Removing a missing file is not an error (idempotent retirement).
  EXPECT_TRUE(env.remove_file(b));
}

TEST(StoreEnvTest, PosixSyncDirAndParentDir) {
  ScopedDir dir("syncdir");
  Env& env = Env::posix();
  EXPECT_TRUE(env.sync_dir(dir.path));
  EXPECT_TRUE(env.sync_parent_dir(dir.path + "/some_file"));
  EXPECT_FALSE(env.sync_dir(dir.path + "/no_such_subdir"));
}

TEST(StoreEnvTest, PosixReadMissingFileReturnsNullopt) {
  EXPECT_FALSE(Env::posix().read_file("/nonexistent/env/file").has_value());
}

// --- FaultyEnv ---------------------------------------------------------------

/// Drive a fixed little I/O workload, returning which of its ops failed.
std::vector<int> run_workload(FaultyEnv& env, const std::string& dir,
                              const std::string& tag) {
  std::vector<int> failed;
  int op = 0;
  auto note = [&](bool ok) { if (!ok) failed.push_back(op); ++op; };
  const std::string path = dir + "/" + tag;
  auto f = env.open(path, OpenMode::kTruncate);
  note(f != nullptr);
  for (int i = 0; i < 8; ++i) {
    note(f != nullptr && f->write(std::vector<std::uint8_t>(64, 0xAB)));
    note(f != nullptr && f->sync());
  }
  note(env.sync_dir(dir));
  note(env.read_file(path).has_value());
  note(env.rename_file(path, path + ".r"));
  note(env.remove_file(path + ".r"));
  return failed;
}

TEST(StoreEnvTest, FaultyEnvZeroPlanIsTransparent) {
  ScopedDir dir("fault_zero");
  FaultyEnv env{StoreFaultPlan{}};
  EXPECT_TRUE(run_workload(env, dir.path, "w").empty());
  EXPECT_GT(env.ops(), 0u);
  EXPECT_EQ(env.stats().injected, 0u);
  EXPECT_EQ(env.stats().ops, env.ops());
}

TEST(StoreEnvTest, FaultyEnvSameSeedSameFaults) {
  StoreFaultPlan plan;
  plan.seed = 42;
  plan.write_error = 0.2;
  plan.fsync_error = 0.2;
  plan.sync_dir_error = 0.5;
  plan.read_error = 0.5;
  plan.rename_error = 0.5;
  plan.remove_error = 0.5;

  ScopedDir d1("fault_det1");
  ScopedDir d2("fault_det2");
  FaultyEnv e1{plan};
  FaultyEnv e2{plan};
  const auto f1 = run_workload(e1, d1.path, "w");
  const auto f2 = run_workload(e2, d2.path, "w");
  EXPECT_EQ(f1, f2);  // fault schedule is a pure function of (seed, plan)
  EXPECT_FALSE(f1.empty());
  EXPECT_EQ(e1.stats().injected, e2.stats().injected);

  // A different seed draws a different schedule (with these probabilities
  // a collision across every op would be astronomically unlikely).
  ScopedDir d3("fault_det3");
  plan.seed = 43;
  FaultyEnv e3{plan};
  EXPECT_NE(run_workload(e3, d3.path, "w"), f1);
}

TEST(StoreEnvTest, FailOnceAtKillsExactlyThatOp) {
  // First pass: count ops with no faults. Then re-run failing each single
  // ordinal and check exactly one op fails per run — the primitive behind
  // the every-op-fails-once sweep.
  ScopedDir dry("fail_once_dry");
  FaultyEnv probe{StoreFaultPlan{}};
  ASSERT_TRUE(run_workload(probe, dry.path, "w").empty());
  const std::uint64_t n = probe.ops();
  ASSERT_GT(n, 10u);

  for (std::uint64_t k = 0; k < n; ++k) {
    ScopedDir dir("fail_once_" + std::to_string(k));
    FaultyEnv env{StoreFaultPlan{}};
    env.fail_once_at(k);
    const auto failed = run_workload(env, dir.path, "w");
    EXPECT_EQ(env.stats().injected, 1u) << "ordinal " << k;
    // One injected fault fails at least the op it hit (a dead open also
    // fails the writes/syncs that depended on the handle).
    EXPECT_FALSE(failed.empty()) << "ordinal " << k;
  }
}

TEST(StoreEnvTest, ShortWritePersistsStrictPrefix) {
  ScopedDir dir("short");
  FaultyEnv env{StoreFaultPlan{}};
  const std::string path = dir.path + "/f";
  auto f = env.open(path, OpenMode::kCreateExclusive);
  ASSERT_TRUE(f != nullptr);
  ASSERT_TRUE(f->write(std::vector<std::uint8_t>(100, 0x11)));

  // Ordinal 2 is the second write (open=0, first write=1).
  env.fail_once_at(2, /*torn=*/true);
  EXPECT_FALSE(f->write(std::vector<std::uint8_t>(100, 0x22)));
  EXPECT_EQ(env.stats().short_writes, 1u);

  const auto back = Env::posix().read_file(path);
  ASSERT_TRUE(back.has_value());
  // The first write is intact; the torn one persisted only a prefix.
  ASSERT_GE(back->size(), 100u);
  EXPECT_LT(back->size(), 200u);
  EXPECT_EQ(back->size() - 100u, env.stats().torn_bytes);
  for (std::size_t i = 0; i < back->size(); ++i) {
    EXPECT_EQ((*back)[i], i < 100 ? 0x11 : 0x22);
  }
}

TEST(StoreEnvTest, SetPlanResetsScriptedFault) {
  ScopedDir dir("reset");
  FaultyEnv env{StoreFaultPlan{}};
  env.fail_once_at(0);
  env.set_plan(StoreFaultPlan{});  // "disk repaired" clears the script too
  EXPECT_TRUE(env.open(dir.path + "/f", OpenMode::kTruncate) != nullptr);
  EXPECT_EQ(env.stats().injected, 0u);
}

TEST(StoreEnvTest, FaultyEnvLayersOverExplicitBase) {
  // Wrapping a FaultyEnv over another env must forward to it, not to the
  // POSIX singleton — the contract that lets tests stack fault layers.
  ScopedDir dir("layer");
  FaultyEnv inner{StoreFaultPlan{}};
  FaultyEnv outer{StoreFaultPlan{}, &inner};
  auto f = outer.open(dir.path + "/f", OpenMode::kTruncate);
  ASSERT_TRUE(f != nullptr);
  ASSERT_TRUE(f->write(bytes_of("x")));
  EXPECT_GT(inner.ops(), 0u);
}

}  // namespace
