// Injected-fault behavior of the durable store (docs/ROBUSTNESS.md):
// fail-stop fsync semantics in the WAL (fsyncgate — a failed fsync is
// never retried and never acks), checkpoint failures that leave the
// previous checkpoint intact and retire nothing, torn-write crash
// recovery, directory-fsync failures surfacing instead of being
// swallowed, and wal_trim_after realigning the on-disk log with an
// acked watermark.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "sim/crowd.hpp"
#include "store/checkpoint.hpp"
#include "store/env.hpp"
#include "store/recovery.hpp"
#include "store/snapshot.hpp"
#include "store/wal.hpp"
#include "util/rng.hpp"

namespace {

using namespace svg::store;
using svg::core::RepresentativeFov;

struct ScopedDir {
  explicit ScopedDir(const std::string& tag) {
    path = (std::filesystem::temp_directory_path() /
            ("svg_fault_test_" + tag + "_" + std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~ScopedDir() { std::filesystem::remove_all(path); }
  std::string path;
};

std::vector<RepresentativeFov> sample_reps(std::size_t n,
                                           std::uint64_t seed = 1) {
  svg::sim::CityModel city;
  svg::util::Xoshiro256 rng(seed);
  return svg::sim::random_representative_fovs(n, city, 1'400'000'000'000,
                                              86'400'000, rng);
}

/// Payload for WAL record `i` (decodes as a one-rep upload).
std::vector<std::uint8_t> payload_of(std::size_t i) {
  static const auto reps = sample_reps(64, 7);
  return encode_upload_record({&reps[i % reps.size()], 1});
}

std::unique_ptr<Wal> open_wal(const std::string& dir, Env* env,
                              FsyncPolicy fsync = FsyncPolicy::kAlways,
                              std::uint64_t segment_bytes = 8ull << 20) {
  WalOptions opts;
  opts.dir = dir;
  opts.fsync = fsync;
  opts.segment_bytes = segment_bytes;
  opts.env = env;
  auto open = wal_open(opts, 0, nullptr);
  EXPECT_TRUE(open.wal != nullptr) << open.error;
  return std::move(open.wal);
}

/// Replay every record with a clean POSIX env; returns the seqs in order.
std::vector<std::uint64_t> replay_seqs(const std::string& dir) {
  WalOptions opts;
  opts.dir = dir;
  std::vector<std::uint64_t> seqs;
  auto open = wal_open(opts, 0, [&](std::uint64_t seq, auto) {
    seqs.push_back(seq);
  });
  EXPECT_TRUE(open.wal != nullptr) << open.error;
  return seqs;
}

// --- fail-stop fsync (fsyncgate) --------------------------------------------

TEST(FaultInjectionTest, FsyncFailureIsFailStopAndNeverAcks) {
  ScopedDir dir("fsyncgate");
  FaultyEnv env{StoreFaultPlan{}};
  auto wal = open_wal(dir.path, &env);
  ASSERT_EQ(wal->append(payload_of(0)), 1u);
  ASSERT_EQ(wal->append(payload_of(1)), 2u);
  ASSERT_EQ(wal->durable_seq(), 2u);

  StoreFaultPlan sick;
  sick.fsync_error = 1.0;
  env.set_plan(sick);

  // kAlways: the record cannot be acked without a successful fsync.
  EXPECT_EQ(wal->append(payload_of(2)), 0u);
  EXPECT_FALSE(wal->ok());
  EXPECT_EQ(wal->durable_seq(), 2u);  // frozen, never advances again
  EXPECT_EQ(wal->last_seq(), 2u);

  // "Disk repaired" does not resurrect the log: per fsyncgate the dirty
  // pages may already be gone, so the poisoning is permanent.
  env.set_plan(StoreFaultPlan{});
  EXPECT_EQ(wal->append(payload_of(3)), 0u);
  EXPECT_EQ(wal->durable_seq(), 2u);
  wal.reset();

  // Never-acked records are allowed to survive on disk (the write itself
  // succeeded here) — the contract is acked ⊆ recovered, not equality.
  const auto seqs = replay_seqs(dir.path);
  ASSERT_GE(seqs.size(), 2u);
  for (std::size_t i = 0; i < seqs.size(); ++i) EXPECT_EQ(seqs[i], i + 1);
}

TEST(FaultInjectionTest, WriteFailureIsFailStop) {
  ScopedDir dir("wfail");
  FaultyEnv env{StoreFaultPlan{}};
  auto wal = open_wal(dir.path, &env);
  ASSERT_EQ(wal->append(payload_of(0)), 1u);

  StoreFaultPlan sick;
  sick.write_error = 1.0;  // ENOSPC / EIO on every write
  env.set_plan(sick);
  EXPECT_EQ(wal->append(payload_of(1)), 0u);
  EXPECT_FALSE(wal->ok());
  EXPECT_EQ(wal->durable_seq(), 1u);
  wal.reset();
  EXPECT_EQ(replay_seqs(dir.path), (std::vector<std::uint64_t>{1}));
}

// Group commit under a mid-stream fsync fault: concurrent appenders are
// acked exactly for the prefix 1..durable_seq — the failing batch (and
// everything after) returns 0 to every follower, and recovery restores at
// least that acked prefix, contiguously.
TEST(FaultInjectionTest, GroupCommitFailureAcksExactPrefix) {
  ScopedDir dir("group");
  FaultyEnv env{StoreFaultPlan{}};
  auto wal = open_wal(dir.path, &env);
  StoreFaultPlan flaky;
  flaky.seed = 99;
  flaky.fsync_error = 0.25;
  env.set_plan(flaky);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 60;
  std::mutex mu;
  std::set<std::uint64_t> acked;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const auto seq =
            wal->append(payload_of(static_cast<std::size_t>(t * 100 + i)));
        if (seq != 0) {
          std::lock_guard lock(mu);
          acked.insert(seq);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  ASSERT_FALSE(wal->ok());  // ≥60 batches at 25% fsync faults must trip it
  const std::uint64_t durable = wal->durable_seq();
  EXPECT_EQ(acked.size(), durable);
  for (std::uint64_t s = 1; s <= durable; ++s) {
    EXPECT_TRUE(acked.count(s)) << "acked set has a hole at seq " << s;
  }
  wal.reset();

  const auto seqs = replay_seqs(dir.path);
  ASSERT_GE(seqs.size(), durable);  // never ack-then-lose
  for (std::size_t i = 0; i < seqs.size(); ++i) EXPECT_EQ(seqs[i], i + 1);
}

TEST(FaultInjectionTest, TornWriteRecoversAckedPrefix) {
  ScopedDir dir("torn");
  FaultyEnv env{StoreFaultPlan{}};
  auto wal = open_wal(dir.path, &env);
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_EQ(wal->append(payload_of(i)), i + 1);
  }
  // The very next env op is the 4th record's write: tear it (a strict
  // prefix of the frame reaches the disk, then the "power fails").
  env.fail_once_at(env.ops(), /*torn=*/true);
  EXPECT_EQ(wal->append(payload_of(3)), 0u);
  EXPECT_FALSE(wal->ok());
  wal.reset();

  WalOptions opts;
  opts.dir = dir.path;
  std::vector<std::uint64_t> seqs;
  auto open = wal_open(opts, 0,
                       [&](std::uint64_t seq, auto) { seqs.push_back(seq); });
  ASSERT_TRUE(open.wal != nullptr) << open.error;
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(open.stats.next_seq, 4u);
  // Torn bytes (if the prefix was non-empty) were truncated away and the
  // repaired log appends at the right seq.
  EXPECT_EQ(open.stats.bytes_truncated, env.stats().torn_bytes);
  EXPECT_EQ(open.wal->append(payload_of(3)), 4u);
}

// --- directory fsync failures ----------------------------------------------

TEST(FaultInjectionTest, DirFsyncFailureFailsWalOpen) {
  ScopedDir dir("dsync_open");
  StoreFaultPlan plan;
  plan.sync_dir_error = 1.0;
  FaultyEnv env{plan};
  WalOptions opts;
  opts.dir = dir.path;
  opts.env = &env;
  // The first segment's name cannot be made durable, so the open must
  // fail rather than hand out a log whose file might vanish on power loss.
  auto open = wal_open(opts, 0, nullptr);
  EXPECT_EQ(open.wal, nullptr);
  EXPECT_FALSE(open.error.empty());
}

TEST(FaultInjectionTest, TornTailRepairDirFsyncFailureSurfaces) {
  ScopedDir dir("dsync_repair");
  {
    auto wal = open_wal(dir.path, nullptr);
    for (std::size_t i = 0; i < 3; ++i) {
      ASSERT_EQ(wal->append(payload_of(i)), i + 1);
    }
  }
  // Tear the tail by hand: chop the final frame mid-payload.
  const auto dump = wal_dump(dir.path);
  ASSERT_EQ(dump.segments.size(), 1u);
  std::filesystem::resize_file(dump.segments[0].path,
                               dump.segments[0].file_bytes - 3);

  StoreFaultPlan plan;
  plan.sync_dir_error = 1.0;
  FaultyEnv env{plan};
  WalOptions opts;
  opts.dir = dir.path;
  opts.env = &env;
  auto open = wal_open(opts, 0, nullptr);
  EXPECT_EQ(open.wal, nullptr);
  EXPECT_NE(open.error.find("repair"), std::string::npos) << open.error;
}

TEST(FaultInjectionTest, RotationDirFsyncFailurePoisonsBeforeRecordsLand) {
  ScopedDir dir("dsync_rotate");
  FaultyEnv env{StoreFaultPlan{}};
  // Tiny segments: the second append must rotate.
  auto wal = open_wal(dir.path, &env, FsyncPolicy::kAlways,
                      /*segment_bytes=*/1);
  ASSERT_EQ(wal->append(payload_of(0)), 1u);

  StoreFaultPlan sick;
  sick.sync_dir_error = 1.0;
  env.set_plan(sick);
  // Rotation opens a fresh segment whose directory entry cannot be made
  // durable — the record must not land in it.
  EXPECT_EQ(wal->append(payload_of(1)), 0u);
  EXPECT_FALSE(wal->ok());
  EXPECT_EQ(wal->durable_seq(), 1u);
  wal.reset();
  EXPECT_EQ(replay_seqs(dir.path), (std::vector<std::uint64_t>{1}));
}

TEST(FaultInjectionTest, RetirementDirFsyncFailurePoisonsWal) {
  ScopedDir dir("dsync_retire");
  FaultyEnv env{StoreFaultPlan{}};
  auto wal = open_wal(dir.path, &env, FsyncPolicy::kAlways,
                      /*segment_bytes=*/1);
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_EQ(wal->append(payload_of(i)), i + 1);
  }
  ASSERT_GT(wal->segment_files().size(), 1u);

  StoreFaultPlan sick;
  sick.sync_dir_error = 1.0;
  env.set_plan(sick);
  // The unlinks themselves succeed but their durability is unknowable —
  // the log must stop promising durability on top of that.
  EXPECT_GT(wal->retire_through(4), 0u);
  EXPECT_FALSE(wal->ok());
  EXPECT_EQ(wal->append(payload_of(5)), 0u);
}

// A fault-interrupted retirement can unlink only SOME of the segments a
// checkpoint covered. The resulting chain gap lies wholly below the
// snapshot watermark, so recovery must tolerate it — and must still fail
// loudly when no snapshot covers the missing records.
TEST(FaultInjectionTest, RecoveryToleratesGapBelowCheckpointWatermark) {
  ScopedDir dir("gap");
  {
    auto wal = open_wal(dir.path, nullptr, FsyncPolicy::kAlways,
                        /*segment_bytes=*/1);  // one record per segment
    for (std::size_t i = 0; i < 6; ++i) {
      ASSERT_EQ(wal->append(payload_of(i)), i + 1);
    }
  }
  // Retirement after a checkpoint covering seq 3 got through segment 2
  // only: segment 1 and 3 survive around the hole.
  std::filesystem::remove(wal_segment_path(dir.path, 2));

  WalOptions opts;
  opts.dir = dir.path;
  std::vector<std::uint64_t> seqs;
  auto open = wal_open(opts, /*replay_after=*/3,
                       [&](std::uint64_t seq, auto) { seqs.push_back(seq); });
  ASSERT_TRUE(open.wal != nullptr) << open.error;
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{4, 5, 6}));
  open.wal.reset();

  // Without the watermark the gap is missing acked data: refuse.
  auto bad = wal_open(opts, 0, nullptr);
  EXPECT_EQ(bad.wal, nullptr);
  EXPECT_NE(bad.error.find("missing"), std::string::npos) << bad.error;
}

// --- checkpoint failures ----------------------------------------------------

TEST(FaultInjectionTest, CheckpointFailureLeavesPreviousAndRetiresNothing) {
  ScopedDir dir("ckpt");
  FaultyEnv env{StoreFaultPlan{}};
  auto wal = open_wal(dir.path, &env, FsyncPolicy::kAlways,
                      /*segment_bytes=*/1);
  const auto reps = sample_reps(20, 3);
  std::uint64_t covered = 0;
  Checkpointer ckpt(
      dir.path, wal.get(),
      [&] {
        CheckpointData data;
        data.reps.assign(reps.begin(),
                         reps.begin() + static_cast<std::ptrdiff_t>(covered));
        data.seq = covered;
        return data;
      },
      /*interval_ms=*/0, &env);

  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_EQ(wal->append(encode_upload_record({&reps[i], 1})), i + 1);
  }
  covered = 4;
  ASSERT_TRUE(ckpt.checkpoint_now());
  ASSERT_EQ(ckpt.checkpointed_seq(), 4u);
  const auto first_ckpt = checkpoint_path(dir.path, 4);
  ASSERT_TRUE(load_snapshot_file(first_ckpt).has_value());

  for (std::size_t i = 4; i < 8; ++i) {
    ASSERT_EQ(wal->append(encode_upload_record({&reps[i], 1})), i + 1);
  }
  covered = 8;
  const auto segments_before = wal->segment_files();

  StoreFaultPlan sick;
  sick.write_error = 1.0;  // the snapshot tmp file cannot be written
  env.set_plan(sick);
  EXPECT_FALSE(ckpt.checkpoint_now());
  // Failure ordering: the previous checkpoint survives, nothing was
  // retired, and the watermark did not move.
  EXPECT_EQ(ckpt.checkpointed_seq(), 4u);
  EXPECT_TRUE(load_snapshot_file(first_ckpt).has_value());
  EXPECT_EQ(wal->segment_files(), segments_before);

  // Disk repaired: the next checkpoint succeeds, supersedes the old one,
  // and retires the covered segments.
  env.set_plan(StoreFaultPlan{});
  EXPECT_TRUE(ckpt.checkpoint_now());
  EXPECT_EQ(ckpt.checkpointed_seq(), 8u);
  EXPECT_FALSE(std::filesystem::exists(first_ckpt));
  EXPECT_TRUE(load_snapshot_file(checkpoint_path(dir.path, 8)).has_value());
  EXPECT_LT(wal->segment_files().size(), segments_before.size());
}

TEST(FaultInjectionTest, SnapshotRenameFailureLeavesTargetUntouched) {
  ScopedDir dir("snap_rename");
  const auto reps = sample_reps(10, 5);
  const auto path = dir.path + "/snap.svgx";
  ASSERT_TRUE(save_snapshot_file(reps, path, 7));

  StoreFaultPlan plan;
  plan.rename_error = 1.0;  // tmp write succeeds; the atomic swap fails
  FaultyEnv env{plan};
  const auto newer = sample_reps(12, 6);
  EXPECT_FALSE(save_snapshot_file(newer, path, 9, {}, &env));

  // The previous snapshot is byte-for-byte intact and the tmp file was
  // cleaned up (nothing for recovery to trip over).
  const auto back = load_snapshot_file_full(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->last_seq, 7u);
  EXPECT_EQ(back->reps.size(), reps.size());
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

// --- wal_trim_after ---------------------------------------------------------

TEST(FaultInjectionTest, TrimAfterCutsUnackedSuffix) {
  ScopedDir dir("trim_cut");
  {
    auto wal = open_wal(dir.path, nullptr);
    for (std::size_t i = 0; i < 10; ++i) {
      ASSERT_EQ(wal->append(payload_of(i)), i + 1);
    }
  }
  ASSERT_TRUE(wal_trim_after(dir.path, 6));
  const auto seqs = replay_seqs(dir.path);
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{1, 2, 3, 4, 5, 6}));
}

TEST(FaultInjectionTest, TrimAfterRemovesLaterSegments) {
  ScopedDir dir("trim_segs");
  {
    auto wal = open_wal(dir.path, nullptr, FsyncPolicy::kAlways,
                        /*segment_bytes=*/1);  // one record per segment
    for (std::size_t i = 0; i < 6; ++i) {
      ASSERT_EQ(wal->append(payload_of(i)), i + 1);
    }
    ASSERT_EQ(wal->segment_files().size(), 6u);
  }
  ASSERT_TRUE(wal_trim_after(dir.path, 2));
  const auto dump = wal_dump(dir.path);
  ASSERT_TRUE(dump.error.empty()) << dump.error;
  EXPECT_LE(dump.segments.size(), 3u);  // seg 3's header may remain, empty
  EXPECT_EQ(replay_seqs(dir.path), (std::vector<std::uint64_t>{1, 2}));
}

TEST(FaultInjectionTest, TrimAfterBeyondLastIsNoOp) {
  ScopedDir dir("trim_noop");
  {
    auto wal = open_wal(dir.path, nullptr);
    for (std::size_t i = 0; i < 5; ++i) {
      ASSERT_EQ(wal->append(payload_of(i)), i + 1);
    }
  }
  ASSERT_TRUE(wal_trim_after(dir.path, 100));
  EXPECT_EQ(replay_seqs(dir.path).size(), 5u);
}

TEST(FaultInjectionTest, TrimAfterDropsTornTailWithTheSuffix) {
  ScopedDir dir("trim_torn");
  {
    auto wal = open_wal(dir.path, nullptr);
    for (std::size_t i = 0; i < 5; ++i) {
      ASSERT_EQ(wal->append(payload_of(i)), i + 1);
    }
  }
  const auto dump = wal_dump(dir.path);
  ASSERT_EQ(dump.segments.size(), 1u);
  std::filesystem::resize_file(dump.segments[0].path,
                               dump.segments[0].file_bytes - 2);

  ASSERT_TRUE(wal_trim_after(dir.path, 3));
  const auto after = wal_dump(dir.path);
  ASSERT_TRUE(after.error.empty()) << after.error;
  EXPECT_FALSE(after.stats.tail_torn);  // the torn bytes went with the cut
  EXPECT_EQ(replay_seqs(dir.path), (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(FaultInjectionTest, TrimAfterFailsOnInjectedIoError) {
  ScopedDir dir("trim_fail");
  {
    auto wal = open_wal(dir.path, nullptr);
    for (std::size_t i = 0; i < 5; ++i) {
      ASSERT_EQ(wal->append(payload_of(i)), i + 1);
    }
  }
  StoreFaultPlan plan;
  plan.truncate_error = 1.0;
  FaultyEnv env{plan};
  EXPECT_FALSE(wal_trim_after(dir.path, 3, 0, &env));
  // Nothing was lost: a clean retry still sees all five records.
  EXPECT_EQ(replay_seqs(dir.path).size(), 5u);
}

}  // namespace
