// The "every I/O operation fails once" property sweep (docs/ROBUSTNESS.md):
// run a fixed ingest+checkpoint workload against a CloudServer whose store
// I/O goes through a FaultyEnv, failing exactly one operation per run —
// every ordinal in turn, alternating hard failures and torn writes — then
// crash and recover with a healthy disk. The invariant, on the plain and
// the sharded index backend alike: every acked upload is recovered exactly
// once, nothing is indexed twice, and recovery itself survives any single
// I/O fault (either by completing or by failing loudly and succeeding on
// the clean retry).

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/server.hpp"
#include "sim/crowd.hpp"
#include "store/env.hpp"
#include "util/rng.hpp"

namespace {

using namespace svg::store;
using svg::net::CloudServer;
using svg::net::IngestStatus;
using svg::net::ServerDurabilityConfig;
using svg::net::ServerIndexConfig;
using svg::net::UploadMessage;

constexpr std::size_t kUploads = 12;

struct ScopedDir {
  explicit ScopedDir(const std::string& tag) {
    path = (std::filesystem::temp_directory_path() /
            ("svg_sweep_test_" + tag + "_" + std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~ScopedDir() { std::filesystem::remove_all(path); }
  std::string path;
};

void copy_dir(const std::string& from, const std::string& to) {
  std::filesystem::remove_all(to);
  std::filesystem::copy(from, to, std::filesystem::copy_options::recursive);
}

UploadMessage upload_of(std::size_t i) {
  static const auto reps = [] {
    svg::sim::CityModel city;
    svg::util::Xoshiro256 rng(11);
    return svg::sim::random_representative_fovs(
        kUploads, city, 1'400'000'000'000, 86'400'000, rng);
  }();
  UploadMessage msg;
  msg.upload_id = 1000 + i;
  msg.video_id = i;
  msg.segments = {reps[i]};
  return msg;
}

ServerDurabilityConfig durable_cfg(const std::string& dir, Env* env) {
  ServerDurabilityConfig cfg;
  cfg.data_dir = dir;
  cfg.fsync = FsyncPolicy::kAlways;
  // Small segments: the 12-record workload rotates several times, so the
  // sweep also lands faults on rotation and retirement I/O.
  cfg.segment_bytes = 256;
  cfg.env = env;
  return cfg;
}

ServerIndexConfig index_cfg(ServerIndexConfig::Backend backend) {
  return ServerIndexConfig(backend, /*shard_count=*/4);
}

/// The fixed workload: ingest kUploads one-rep uploads with a manual
/// checkpoint halfway through. Returns which uploads were acked.
std::vector<bool> run_workload(CloudServer& server) {
  std::vector<bool> acked(kUploads, false);
  for (std::size_t i = 0; i < kUploads; ++i) {
    if (i == kUploads / 2) (void)server.checkpoint_now();
    const auto st = server.ingest_status(upload_of(i));
    EXPECT_NE(st, IngestStatus::kDuplicate) << "fresh id read as duplicate";
    acked[i] = st == IngestStatus::kAccepted;
  }
  return acked;
}

/// Check the recovered server against the acks of the crashed run: acked
/// uploads must be present (never ack-then-lose); nothing may be indexed
/// twice; re-offering every upload converges to all-present-exactly-once.
void verify_recovered(CloudServer& server, const std::vector<bool>& acked,
                      const std::string& ctx) {
  const std::size_t before = server.indexed_segments();
  std::size_t duplicates = 0;
  for (std::size_t i = 0; i < kUploads; ++i) {
    const auto st = server.ingest_status(upload_of(i));
    ASSERT_NE(st, IngestStatus::kRetryLater) << ctx << " upload " << i;
    if (st == IngestStatus::kDuplicate) {
      ++duplicates;
    } else if (acked[i]) {
      ADD_FAILURE() << ctx << ": acked upload " << i << " lost by recovery";
    }
  }
  // Each upload carries exactly one rep, so the pre-re-offer index size
  // equals the number of uploads recovery restored — any double-indexed
  // record breaks one of these two counts.
  EXPECT_EQ(before, duplicates) << ctx;
  EXPECT_EQ(server.indexed_segments(), kUploads) << ctx;
}

/// Count the store I/O ops the workload issues after construction.
std::uint64_t probe_workload_ops(ServerIndexConfig::Backend backend) {
  ScopedDir dir("probe");
  FaultyEnv env{StoreFaultPlan{}};
  std::uint64_t base = 0;
  {
    CloudServer server(index_cfg(backend), {}, durable_cfg(dir.path, &env));
    base = env.ops();
    run_workload(server);
  }
  EXPECT_EQ(env.stats().injected, 0u);
  return env.ops() - base;
}

void sweep_ingest_and_checkpoint(ServerIndexConfig::Backend backend) {
  const std::uint64_t n = probe_workload_ops(backend);
  ASSERT_GT(n, 20u);  // the workload must actually exercise the disk

  for (std::uint64_t k = 0; k < n; ++k) {
    const std::string ctx = "fault at workload op " + std::to_string(k);
    ScopedDir dir("ing_" + std::to_string(k));
    FaultyEnv env{StoreFaultPlan{}};
    std::vector<bool> acked;
    {
      CloudServer server(index_cfg(backend), {},
                         durable_cfg(dir.path, &env));
      ASSERT_TRUE(server.recovery().ok) << ctx;
      env.fail_once_at(env.ops() + k, /*torn=*/(k % 2) == 1);
      acked = run_workload(server);
    }  // crash
    ASSERT_EQ(env.stats().injected, 1u) << ctx;

    // The disk comes back healthy; recovery must restore the acked prefix.
    CloudServer recovered(index_cfg(backend), {},
                          durable_cfg(dir.path, nullptr));
    ASSERT_TRUE(recovered.recovery().ok) << ctx;
    verify_recovered(recovered, acked, ctx);
  }
}

void sweep_recovery(ServerIndexConfig::Backend backend) {
  // Prepare one clean crashed directory: full workload, checkpoint taken,
  // everything acked.
  ScopedDir prep("rec_prep");
  {
    CloudServer server(index_cfg(backend), {},
                       durable_cfg(prep.path, nullptr));
    const auto acked = run_workload(server);
    for (std::size_t i = 0; i < kUploads; ++i) ASSERT_TRUE(acked[i]);
  }
  const std::vector<bool> all_acked(kUploads, true);

  // Count recovery's I/O ops.
  std::uint64_t n = 0;
  {
    ScopedDir dir("rec_probe");
    copy_dir(prep.path, dir.path);
    FaultyEnv env{StoreFaultPlan{}};
    CloudServer server(index_cfg(backend), {}, durable_cfg(dir.path, &env));
    n = env.ops();
  }
  ASSERT_GT(n, 3u);

  for (std::uint64_t k = 0; k < n; ++k) {
    const std::string ctx = "fault at recovery op " + std::to_string(k);
    ScopedDir dir("rec_" + std::to_string(k));
    copy_dir(prep.path, dir.path);
    FaultyEnv env{StoreFaultPlan{}};
    env.fail_once_at(k, /*torn=*/(k % 2) == 1);
    bool survived = false;
    try {
      CloudServer server(index_cfg(backend), {}, durable_cfg(dir.path, &env));
      // Recovery claimed success under the fault: it must be complete.
      ASSERT_TRUE(server.recovery().ok) << ctx;
      verify_recovered(server, all_acked, ctx);
      survived = true;
    } catch (const std::runtime_error&) {
      // Failing loudly is the other acceptable outcome — but the fault
      // must not have corrupted anything: a clean retry has to succeed.
    }
    if (!survived) {
      CloudServer retry(index_cfg(backend), {}, durable_cfg(dir.path, nullptr));
      ASSERT_TRUE(retry.recovery().ok) << ctx << " (clean retry)";
      verify_recovered(retry, all_acked, ctx + " (clean retry)");
    }
  }
}

TEST(FaultSweepTest, IngestEveryIoFailsOncePlainBackend) {
  sweep_ingest_and_checkpoint(ServerIndexConfig::Backend::kConcurrent);
}

TEST(FaultSweepTest, IngestEveryIoFailsOnceShardedBackend) {
  sweep_ingest_and_checkpoint(ServerIndexConfig::Backend::kSharded);
}

TEST(FaultSweepTest, RecoveryEveryIoFailsOncePlainBackend) {
  sweep_recovery(ServerIndexConfig::Backend::kConcurrent);
}

TEST(FaultSweepTest, RecoveryEveryIoFailsOnceShardedBackend) {
  sweep_recovery(ServerIndexConfig::Backend::kSharded);
}

}  // namespace
