#include "store/recovery.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "net/server.hpp"
#include "sim/crowd.hpp"
#include "store/snapshot.hpp"
#include "store/wal.hpp"
#include "util/rng.hpp"

namespace {

using namespace svg::store;
using svg::core::RepresentativeFov;

struct ScopedDir {
  explicit ScopedDir(const std::string& tag) {
    path = (std::filesystem::temp_directory_path() /
            ("svg_recovery_test_" + tag + "_" + std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~ScopedDir() { std::filesystem::remove_all(path); }
  std::string path;
};

std::vector<RepresentativeFov> sample_reps(std::size_t n,
                                           std::uint64_t seed = 1) {
  svg::sim::CityModel city;
  svg::util::Xoshiro256 rng(seed);
  return svg::sim::random_representative_fovs(n, city, 1'400'000'000'000,
                                              86'400'000, rng);
}

/// Identity of a rep as restored through the fixed-point codec.
using RepKey = std::tuple<std::uint64_t, std::uint32_t, std::int64_t>;
RepKey key_of(const RepresentativeFov& r) {
  return {r.video_id, r.segment_id, r.t_start};
}

std::multiset<RepKey> keys_of(const std::vector<RepresentativeFov>& reps) {
  std::multiset<RepKey> out;
  for (const auto& r : reps) out.insert(key_of(r));
  return out;
}

/// Write `uploads` one-per-append into a fresh WAL dir; returns the reps of
/// each upload in order.
std::vector<std::vector<RepresentativeFov>> build_wal(
    const std::string& dir, std::size_t uploads, std::size_t reps_per_upload,
    std::uint64_t segment_bytes = 8ull << 20) {
  WalOptions opts;
  opts.dir = dir;
  opts.segment_bytes = segment_bytes;
  opts.fsync = FsyncPolicy::kAlways;
  auto open = wal_open(opts, 0, nullptr);
  EXPECT_TRUE(open.wal != nullptr) << open.error;
  const auto all = sample_reps(uploads * reps_per_upload, 17);
  std::vector<std::vector<RepresentativeFov>> batches;
  for (std::size_t u = 0; u < uploads; ++u) {
    std::vector<RepresentativeFov> batch(
        all.begin() + static_cast<std::ptrdiff_t>(u * reps_per_upload),
        all.begin() + static_cast<std::ptrdiff_t>((u + 1) * reps_per_upload));
    EXPECT_EQ(open.wal->append(encode_upload_record(batch)), u + 1);
    batches.push_back(std::move(batch));
  }
  return batches;
}

void copy_dir(const std::string& from, const std::string& to) {
  std::filesystem::remove_all(to);
  std::filesystem::copy(from, to,
                        std::filesystem::copy_options::recursive);
}

RecoverAndOpenResult recover_collect(const std::string& dir,
                                     std::vector<RepresentativeFov>& out) {
  WalOptions opts;
  opts.dir = dir;
  return recover_and_open(
      opts, [&](std::span<const RepresentativeFov> reps) {
        out.insert(out.end(), reps.begin(), reps.end());
      });
}

// The core crash property: kill ingest at ANY byte offset of the final
// segment — recovery restores exactly the records wholly written before
// the cut (the acked prefix) and truncates the rest; never a torn record,
// never lost acked data.
TEST(RecoveryPropertyTest, TruncationAtEveryOffsetRestoresAckedPrefix) {
  ScopedDir dir("prop");
  const auto batches = build_wal(dir.path, 12, 8);
  const auto dump = wal_dump(dir.path);
  ASSERT_TRUE(dump.error.empty()) << dump.error;
  ASSERT_EQ(dump.segments.size(), 1u);
  const auto seg_path = dump.segments[0].path;
  const auto file_bytes = dump.segments[0].file_bytes;

  for (std::uint64_t cut = 0; cut <= file_bytes; ++cut) {
    ScopedDir crash("prop_cut");
    copy_dir(dir.path, crash.path);
    const auto crashed_seg =
        (std::filesystem::path(crash.path) /
         std::filesystem::path(seg_path).filename())
            .string();
    std::filesystem::resize_file(crashed_seg, cut);

    // Records surviving the cut: frame wholly before `cut`.
    std::size_t expect_records = 0;
    for (const auto& r : dump.records) {
      if (r.offset + 8 + r.payload_bytes <= cut) ++expect_records;
    }

    std::vector<RepresentativeFov> restored;
    auto open = recover_collect(crash.path, restored);
    ASSERT_TRUE(open.result.ok)
        << "cut at " << cut << ": " << open.result.error;
    EXPECT_EQ(open.result.wal_records_replayed, expect_records)
        << "cut at " << cut;
    EXPECT_EQ(open.result.next_seq, expect_records + 1) << "cut at " << cut;
    std::vector<RepresentativeFov> expected;
    for (std::size_t u = 0; u < expect_records; ++u) {
      expected.insert(expected.end(), batches[u].begin(), batches[u].end());
    }
    EXPECT_EQ(keys_of(restored), keys_of(expected)) << "cut at " << cut;

    // The repaired log must accept new appends at the right seq.
    const auto seq = open.wal->append(encode_upload_record(batches[0]));
    EXPECT_EQ(seq, expect_records + 1) << "cut at " << cut;
  }
}

TEST(RecoveryTest, BitFlipInFinalSegmentTruncatesThere) {
  ScopedDir dir("flip_final");
  const auto batches = build_wal(dir.path, 10, 4);
  const auto dump = wal_dump(dir.path);
  ASSERT_EQ(dump.segments.size(), 1u);
  // Flip one payload byte of record 7 (seq 7): records 1-6 survive, the
  // tail from record 7 on is truncated.
  const auto& victim = dump.records[6];
  {
    std::fstream f(dump.segments[0].path,
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(victim.offset + 8 + 1));
    char b = 0;
    f.seekg(static_cast<std::streamoff>(victim.offset + 8 + 1));
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x40);
    f.seekp(static_cast<std::streamoff>(victim.offset + 8 + 1));
    f.write(&b, 1);
  }
  std::vector<RepresentativeFov> restored;
  auto open = recover_collect(dir.path, restored);
  ASSERT_TRUE(open.result.ok) << open.result.error;
  EXPECT_TRUE(open.result.tail_torn);
  EXPECT_EQ(open.result.wal_records_replayed, 6u);
  EXPECT_EQ(restored.size(), 6u * 4u);
}

TEST(RecoveryTest, BitFlipInMiddleSegmentFailsLoudly) {
  ScopedDir dir("flip_middle");
  build_wal(dir.path, 60, 4, /*segment_bytes=*/512);
  const auto dump = wal_dump(dir.path);
  ASSERT_GT(dump.segments.size(), 2u);
  // Corrupt a record in the FIRST segment — acked data in the middle of
  // the chain. Recovery must refuse, not silently skip.
  const auto& victim = dump.records[1];
  ASSERT_EQ(victim.segment, 0u);
  {
    std::fstream f(dump.segments[0].path,
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(victim.offset + 8));
    char b = 0;
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x01);
    f.seekp(static_cast<std::streamoff>(victim.offset + 8));
    f.write(&b, 1);
  }
  std::vector<RepresentativeFov> restored;
  auto open = recover_collect(dir.path, restored);
  EXPECT_FALSE(open.result.ok);
  EXPECT_EQ(open.wal, nullptr);
  EXPECT_NE(open.result.error.find("non-final"), std::string::npos)
      << open.result.error;
}

TEST(RecoveryTest, MissingMiddleSegmentFailsLoudly) {
  ScopedDir dir("missing_middle");
  build_wal(dir.path, 60, 4, /*segment_bytes=*/512);
  auto dump = wal_dump(dir.path);
  ASSERT_GT(dump.segments.size(), 2u);
  std::filesystem::remove(dump.segments[1].path);

  std::vector<RepresentativeFov> restored;
  auto open = recover_collect(dir.path, restored);
  EXPECT_FALSE(open.result.ok);
  EXPECT_EQ(open.wal, nullptr);
  EXPECT_NE(open.result.error.find("missing"), std::string::npos)
      << open.result.error;

  // wal_dump diagnoses the same break.
  dump = wal_dump(dir.path);
  EXPECT_FALSE(dump.error.empty());
}

TEST(RecoveryTest, CorruptNewestSnapshotFallsBackToOlder) {
  ScopedDir dir("snap_fallback");
  const auto reps = sample_reps(100, 23);

  // Older, valid checkpoint covering seq 0 (no WAL yet).
  ASSERT_TRUE(
      save_snapshot_file(reps, checkpoint_path(dir.path, 0)));
  // Newer checkpoint, corrupted on disk.
  const auto newer = checkpoint_path(dir.path, 5);
  ASSERT_TRUE(save_snapshot_file(reps, newer, 5));
  {
    std::fstream f(newer, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(20);
    char b = 0;
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x80);
    f.seekp(20);
    f.write(&b, 1);
  }

  std::vector<RepresentativeFov> restored;
  auto open = recover_collect(dir.path, restored);
  ASSERT_TRUE(open.result.ok) << open.result.error;
  EXPECT_EQ(open.result.snapshots_skipped, 1u);
  EXPECT_EQ(open.result.snapshot_seq, 0u);
  EXPECT_EQ(keys_of(restored), keys_of(reps));
}

// Checkpoint/ingest race: with a checkpoint every ~1ms racing concurrent
// ingest, a record must never be BOTH in a snapshot and replayed from the
// WAL (duplicate) nor in neither (loss). Exact multiset equality after
// restart catches both.
TEST(RecoveryTest, CheckpointRaceNeverDuplicatesOrLosesRecords) {
  ScopedDir dir("race");
  const auto all = sample_reps(600, 31);
  constexpr int kThreads = 6;
  constexpr int kPerThread = 100;
  {
    svg::net::ServerDurabilityConfig dcfg;
    dcfg.data_dir = dir.path;
    dcfg.fsync = FsyncPolicy::kNone;  // stress scheduling, not the disk
    dcfg.checkpoint_interval_ms = 1;
    svg::net::CloudServer server({}, {}, dcfg);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          svg::net::UploadMessage msg;
          msg.video_id = static_cast<std::uint64_t>(t) * 1000 + i;
          msg.segments = {all[static_cast<std::size_t>(t * kPerThread + i)]};
          server.ingest(msg);
        }
      });
    }
    for (auto& th : threads) th.join();
    server.sync_wal();
  }
  std::vector<RepresentativeFov> restored;
  auto open = recover_collect(dir.path, restored);
  ASSERT_TRUE(open.result.ok) << open.result.error;
  EXPECT_EQ(restored.size(), static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(keys_of(restored), keys_of(all));
}

TEST(RecoveryTest, PlainAndShardedBackendsRecoverIdentically) {
  ScopedDir dir("backends");
  {
    svg::net::ServerDurabilityConfig dcfg;
    dcfg.data_dir = dir.path;
    dcfg.segment_bytes = 2048;  // several segments
    svg::net::CloudServer server({}, {}, dcfg);
    const auto all = sample_reps(400, 41);
    for (std::size_t i = 0; i < all.size(); i += 20) {
      svg::net::UploadMessage msg;
      msg.video_id = i;
      msg.segments.assign(all.begin() + static_cast<std::ptrdiff_t>(i),
                          all.begin() + static_cast<std::ptrdiff_t>(i + 20));
      server.ingest(msg);
    }
    ASSERT_TRUE(server.checkpoint_now());
  }

  ScopedDir plain_dir("backends_plain");
  ScopedDir sharded_dir("backends_sharded");
  copy_dir(dir.path, plain_dir.path);
  copy_dir(dir.path, sharded_dir.path);

  svg::net::ServerDurabilityConfig pd;
  pd.data_dir = plain_dir.path;
  svg::net::CloudServer plain({}, {}, pd);

  svg::net::ServerIndexConfig sharded_cfg(
      svg::net::ServerIndexConfig::Backend::kSharded, 4);
  svg::net::ServerDurabilityConfig sd;
  sd.data_dir = sharded_dir.path;
  svg::net::CloudServer sharded(sharded_cfg, {}, sd);

  EXPECT_EQ(plain.indexed_segments(), 400u);
  EXPECT_EQ(sharded.indexed_segments(), 400u);
  EXPECT_EQ(plain.recovery().next_seq, sharded.recovery().next_seq);

  // Identical query answers through both recovered backends.
  svg::retrieval::Query q;
  q.center = svg::sim::CityModel{}.center;
  q.radius_m = 800.0;
  q.t_start = 1'400'000'000'000;
  q.t_end = q.t_start + 86'400'000;
  const auto a = plain.search(q);
  const auto b = sharded.search(q);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].rep.video_id, b[i].rep.video_id);
    EXPECT_EQ(a[i].rep.segment_id, b[i].rep.segment_id);
  }
}

TEST(RecoveryTest, SummaryMentionsWhatWasRestored) {
  ScopedDir dir("summary");
  build_wal(dir.path, 5, 3);
  std::vector<RepresentativeFov> restored;
  auto open = recover_collect(dir.path, restored);
  ASSERT_TRUE(open.result.ok) << open.result.error;
  const auto s = open.result.summary();
  EXPECT_NE(s.find("recovered 15 records"), std::string::npos) << s;
  EXPECT_NE(s.find("next seq 6"), std::string::npos) << s;
}

}  // namespace
