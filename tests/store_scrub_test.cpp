// Background scrub of data at rest (store/scrub.hpp): a healthy
// directory scrubs clean, every seeded bit flip in a cold artifact is
// detected and quarantined (and the quarantine rename hides the artifact
// from the WAL/recovery listings), torn tails on the live segment are
// tolerated while complete-frame corruption there is still reported, the
// FaultyEnv bit-rot fault is silent and deterministic, and the
// cluster-level bit-rot → scrub → quarantine → restore-from-peer cycle
// converges back to the pre-corruption content byte-for-byte.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "net/server.hpp"
#include "net/upload_queue.hpp"
#include "obs/families.hpp"
#include "obs/journal.hpp"
#include "sim/crowd.hpp"
#include "store/env.hpp"
#include "store/scrub.hpp"
#include "store/snapshot.hpp"
#include "store/wal.hpp"
#include "util/rng.hpp"

namespace {

using namespace svg;
using namespace svg::store;

struct ScopedDir {
  explicit ScopedDir(const std::string& tag) {
    path = (std::filesystem::temp_directory_path() /
            ("svg_scrub_" + tag + "_" + std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~ScopedDir() { std::filesystem::remove_all(path); }
  std::string path;
};

std::vector<std::uint8_t> read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void write_bytes(const std::string& path,
                 const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// A durable server over `dir` with tiny segments, filled with enough
/// uploads that the WAL spans several cold segments.
void fill_durable_dir(const std::string& dir, std::uint64_t seed,
                      std::size_t uploads = 48) {
  net::ServerDurabilityConfig d;
  d.data_dir = dir;
  d.fsync = FsyncPolicy::kNone;
  d.segment_bytes = 512;  // force frequent rotation
  d.checkpoint_interval_ms = 0;
  net::CloudServer server({}, {}, d);
  util::Xoshiro256 rng(seed);
  sim::CityModel city;
  for (std::size_t u = 0; u < uploads; ++u) {
    net::UploadMessage msg;
    msg.upload_id = seed * 10'000 + u + 1;
    msg.video_id = u + 1;
    msg.segments = sim::random_representative_fovs(
        3, city, 1'400'000'000'000, 3'600'000, rng);
    for (std::size_t i = 0; i < msg.segments.size(); ++i) {
      msg.segments[i].video_id = msg.video_id;
      msg.segments[i].segment_id = static_cast<std::uint32_t>(i);
    }
    ASSERT_TRUE(server.ingest(msg));
    // Group commit drains the whole pending buffer as one batch and the
    // WAL only rotates at batch boundaries — sync periodically so the
    // corpus actually spans several cold segments.
    if (u % 4 == 3) server.sync_wal();
  }
  server.sync_wal();
}

std::vector<std::string> wal_segments_sorted(const std::string& dir) {
  std::vector<std::string> segs;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    const std::string name = e.path().filename().string();
    if (name.rfind("wal-", 0) == 0 && name.size() == 24 &&
        name.substr(20) == ".log") {
      segs.push_back(e.path().string());
    }
  }
  std::sort(segs.begin(), segs.end());
  return segs;
}

TEST(ScrubTest, HealthyDirectoryScrubsClean) {
  ScopedDir dir("clean");
  fill_durable_dir(dir.path, 1);
  ASSERT_GT(wal_segments_sorted(dir.path).size(), 2u);

  const ScrubReport report = scrub_directory(dir.path);
  EXPECT_TRUE(report.clean());
  EXPECT_GT(report.wal_segments, 2u);
  EXPECT_GT(report.frames_verified, 0u);
  EXPECT_GT(report.bytes_verified, 0u);
  EXPECT_EQ(report.torn_tail_segments, 0u);
}

TEST(ScrubTest, EverySeededBitFlipInColdSegmentsIsCaughtAndQuarantined) {
  // 100% detection: across ≥50 seeds, flip one random bit anywhere in a
  // random cold segment (header or frames alike) — the scrub must find
  // it every single time, and with quarantine on the artifact is renamed
  // out of the WAL listing.
  ScopedDir dir("flip");
  fill_durable_dir(dir.path, 2);
  const auto segs = wal_segments_sorted(dir.path);
  ASSERT_GT(segs.size(), 2u);

  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    util::Xoshiro256 rng(seed);
    // Any segment but the last (the live appender's file).
    const std::string victim = segs[rng.bounded(segs.size() - 1)];
    const auto original = read_bytes(victim);
    ASSERT_FALSE(original.empty());
    auto corrupted = original;
    const std::size_t byte = rng.bounded(corrupted.size());
    corrupted[byte] ^= static_cast<std::uint8_t>(1u << rng.bounded(8));
    write_bytes(victim, corrupted);

    ScrubOptions report_only;
    report_only.quarantine = false;
    const ScrubReport report = scrub_directory(dir.path, report_only);
    ASSERT_EQ(report.findings.size(), 1u)
        << "seed " << seed << " byte " << byte;
    EXPECT_EQ(report.findings.front().path, victim);
    EXPECT_FALSE(report.findings.front().quarantined);

    write_bytes(victim, original);  // heal for the next seed
  }

  // Once more with quarantine on: the artifact is renamed and the next
  // pass no longer sees it.
  auto corrupted = read_bytes(segs.front());
  corrupted[corrupted.size() / 2] ^= 0x10;
  write_bytes(segs.front(), corrupted);
  const ScrubReport report = scrub_directory(dir.path);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_TRUE(report.findings.front().quarantined);
  EXPECT_FALSE(std::filesystem::exists(segs.front()));
  EXPECT_TRUE(std::filesystem::exists(segs.front() + ".quarantine"));
  const ScrubReport after = scrub_directory(dir.path);
  EXPECT_EQ(after.wal_segments, report.wal_segments - 1);

  bool saw_quarantined = false;
  bool saw_pass = false;
  for (const auto& rec : obs::Journal::global().tail()) {
    if (rec.event == obs::JournalEvent::kArtifactQuarantined) {
      saw_quarantined = true;
    }
    if (rec.event == obs::JournalEvent::kScrubPass) saw_pass = true;
  }
  EXPECT_TRUE(saw_quarantined);
  EXPECT_TRUE(saw_pass);
}

TEST(ScrubTest, TornTailIsLegalButCompleteFrameCorruptionIsNotReportOnly) {
  ScopedDir dir("tail");
  fill_durable_dir(dir.path, 3);
  const auto segs = wal_segments_sorted(dir.path);
  ASSERT_GT(segs.size(), 1u);
  const std::string last = segs.back();

  // Chop one byte off the live segment: a torn trailing frame, exactly
  // what a crash mid-append leaves. Legal — scrub stays clean.
  const auto original = read_bytes(last);
  ASSERT_GT(original.size(), 1u);
  auto torn = original;
  torn.pop_back();
  write_bytes(last, torn);
  const ScrubReport torn_report = scrub_directory(dir.path);
  EXPECT_TRUE(torn_report.clean());
  EXPECT_EQ(torn_report.torn_tail_segments, 1u);

  // A COMPLETE frame in the live segment with a flipped payload bit is
  // corruption (a torn write cannot damage bytes it never covered) — but
  // the live segment is never quarantined, only reported.
  auto corrupted = original;
  corrupted[20] ^= 0x01;  // first frame's payload area (header is 16 bytes)
  write_bytes(last, corrupted);
  const ScrubReport report = scrub_directory(dir.path);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_FALSE(report.findings.front().quarantined);
  EXPECT_TRUE(std::filesystem::exists(last));
}

TEST(ScrubTest, CorruptSnapshotIsQuarantined) {
  ScopedDir dir("snap");
  const std::vector<core::RepresentativeFov> reps;
  auto bytes = encode_snapshot(reps, 7);
  const std::string path = dir.path + "/snapshot-0000000000000007.svgx";
  write_bytes(path, bytes);
  EXPECT_TRUE(scrub_directory(dir.path).clean());

  bytes[bytes.size() / 2] ^= 0x40;
  write_bytes(path, bytes);
  const ScrubReport report = scrub_directory(dir.path);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings.front().kind, ScrubFinding::Kind::kSnapshot);
  EXPECT_TRUE(report.findings.front().quarantined);
  EXPECT_TRUE(std::filesystem::exists(path + ".quarantine"));
}

TEST(ScrubTest, FaultyEnvBitFlipIsSilentAndDeterministic) {
  ScopedDir dir("env");
  fill_durable_dir(dir.path, 4, 24);
  const auto segs = wal_segments_sorted(dir.path);
  // Need at least one COLD segment: a flip in the live segment's header
  // or a frame length field is legally classified as a torn tail, but on
  // a cold segment every flipped bit is proven corruption.
  ASSERT_GT(segs.size(), 1u);

  StoreFaultPlan plan;
  plan.seed = 99;
  plan.bit_flip_read = 1.0;
  FaultyEnv env_a(plan);
  FaultyEnv env_b(plan);
  const auto clean = read_bytes(segs.front());
  const auto flipped_a = env_a.read_file(segs.front());
  const auto flipped_b = env_b.read_file(segs.front());
  ASSERT_TRUE(flipped_a.has_value());
  ASSERT_TRUE(flipped_b.has_value());
  // Silent: the read "succeeds", same length, exactly one bit differs —
  // and the damage is a pure function of (seed, op ordinal).
  EXPECT_EQ(flipped_a->size(), clean.size());
  EXPECT_NE(*flipped_a, clean);
  EXPECT_EQ(*flipped_a, *flipped_b);
  std::size_t diff_bits = 0;
  for (std::size_t i = 0; i < clean.size(); ++i) {
    diff_bits +=
        static_cast<std::size_t>(__builtin_popcount((*flipped_a)[i] ^ clean[i]));
  }
  EXPECT_EQ(diff_bits, 1u);
  EXPECT_EQ(env_a.stats().bit_flips, 1u);
  EXPECT_EQ(env_a.stats().injected, 1u);

  // A scrub through the rotting env sees CRC damage on every artifact it
  // reads, even though the disk is clean.
  ScrubOptions opts;
  opts.env = &env_a;
  opts.quarantine = false;
  const ScrubReport report = scrub_directory(dir.path, opts);
  EXPECT_FALSE(report.clean());
  // The disk itself still scrubs clean.
  EXPECT_TRUE(scrub_directory(dir.path).clean());
}

TEST(ScrubTest, ScrubberBackgroundThreadRunsPasses) {
  ScopedDir dir("bg");
  fill_durable_dir(dir.path, 5, 8);
  std::atomic<std::uint64_t> hooked{0};
  Scrubber scrubber(dir.path, 5, {},
                    [&](const ScrubReport& r) { hooked += r.clean() ? 1 : 0; });
  const ScrubReport manual = scrubber.pass_now();
  EXPECT_TRUE(manual.clean());
  for (int i = 0; i < 400 && scrubber.passes() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(scrubber.passes(), 3u);
  EXPECT_GE(hooked.load(), 1u);
}

TEST(ScrubTest, ClusterBitRotQuarantineRestoreCycle) {
  // The end-to-end self-healing walkthrough: bit rot lands on one node's
  // cold segment; the scrub detects and quarantines it; the node is
  // rebuilt from its ring follower's replicated copy; the cluster's
  // canonical content is byte-identical to what it was before the rot.
  ScopedDir dir("cycle");
  cluster::ClusterConfig cfg;
  cfg.nodes = 3;
  cfg.partition.bounds = sim::CityModel{}.bounds_deg();
  cfg.partition.cells_per_side = 16;
  cfg.data_dir = dir.path + "/c";
  cfg.segment_bytes = 2048;
  cluster::Cluster cluster(cfg);

  util::Xoshiro256 rng(6);
  sim::CityModel city;
  net::UploadQueue queue({}, 17);
  for (std::size_t u = 0; u < 24; ++u) {
    net::UploadMessage msg;
    msg.video_id = u + 1;
    msg.segments = sim::random_representative_fovs(
        4, city, 1'400'000'000'000, 3'600'000, rng);
    for (std::size_t i = 0; i < msg.segments.size(); ++i) {
      msg.segments[i].video_id = msg.video_id;
      msg.segments[i].segment_id = static_cast<std::uint32_t>(i);
    }
    queue.enqueue(msg);
  }
  ASSERT_TRUE(queue.drain(cluster.router().upload_channel()));
  cluster.replicate_until_quiescent();
  const auto want = cluster.canonical_bytes(dir.path);
  ASSERT_TRUE(want.has_value());

  // Rot a cold segment on node 0.
  for (std::size_t i = 0; i < cluster.size(); ++i) cluster.node(i)->sync_wal();
  const auto segs = wal_segments_sorted(cluster.wal_dir(0));
  ASSERT_GT(segs.size(), 1u) << "need a cold segment to rot";
  auto bytes = read_bytes(segs.front());
  bytes[bytes.size() / 2] ^= 0x08;
  write_bytes(segs.front(), bytes);

  const store::ScrubReport report = cluster.scrub_node(0);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_TRUE(report.findings.front().quarantined);

  // Repair from the replica and verify byte-identical convergence.
  const std::uint64_t restores_before =
      obs::cluster_repair_metrics().peer_restores.value();
  ASSERT_TRUE(cluster.restore_node_from_peer(0));
  EXPECT_EQ(obs::cluster_repair_metrics().peer_restores.value(),
            restores_before + 1);
  cluster.replicate_until_quiescent();
  const auto got = cluster.canonical_bytes(dir.path);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, *want);

  bool saw_restore = false;
  for (const auto& rec : obs::Journal::global().tail()) {
    if (rec.event == obs::JournalEvent::kPeerRestore) saw_restore = true;
  }
  EXPECT_TRUE(saw_restore);
}

}  // namespace
