#include "store/wal.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "util/bytes.hpp"

namespace {

using namespace svg::store;

/// Fresh empty directory for one test, removed on destruction.
struct ScopedDir {
  explicit ScopedDir(const std::string& tag) {
    path = (std::filesystem::temp_directory_path() /
            ("svg_wal_test_" + tag + "_" +
             std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~ScopedDir() { std::filesystem::remove_all(path); }
  std::string path;
};

std::vector<std::uint8_t> payload_of(std::uint64_t i, std::size_t len = 32) {
  std::vector<std::uint8_t> p(len);
  for (std::size_t j = 0; j < len; ++j) {
    p[j] = static_cast<std::uint8_t>(i * 131 + j);
  }
  return p;
}

/// Replay everything in dir into (seq, payload) pairs.
std::vector<std::pair<std::uint64_t, std::vector<std::uint8_t>>> replay_all(
    const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::vector<std::uint8_t>>> out;
  WalOptions opts;
  opts.dir = dir;
  auto open = wal_open(opts, 0,
                       [&](std::uint64_t seq,
                           std::span<const std::uint8_t> payload) {
                         out.emplace_back(seq, std::vector<std::uint8_t>(
                                                   payload.begin(),
                                                   payload.end()));
                       });
  EXPECT_TRUE(open.wal != nullptr) << open.error;
  return out;
}

TEST(WalTest, AppendCloseReplayRoundTrip) {
  ScopedDir dir("roundtrip");
  WalOptions opts;
  opts.dir = dir.path;
  opts.fsync = FsyncPolicy::kAlways;
  {
    auto open = wal_open(opts, 0, nullptr);
    ASSERT_TRUE(open.wal != nullptr) << open.error;
    for (std::uint64_t i = 1; i <= 50; ++i) {
      EXPECT_EQ(open.wal->append(payload_of(i)), i);
    }
    EXPECT_EQ(open.wal->last_seq(), 50u);
    EXPECT_EQ(open.wal->durable_seq(), 50u);  // kAlways: acked == durable
  }
  const auto records = replay_all(dir.path);
  ASSERT_EQ(records.size(), 50u);
  for (std::uint64_t i = 1; i <= 50; ++i) {
    EXPECT_EQ(records[i - 1].first, i);
    EXPECT_EQ(records[i - 1].second, payload_of(i));
  }
}

TEST(WalTest, EmptyLogOpensCleanly) {
  ScopedDir dir("empty");
  WalOptions opts;
  opts.dir = dir.path;
  std::size_t replayed = 0;
  auto open = wal_open(opts, 0, [&](std::uint64_t,
                                    std::span<const std::uint8_t>) {
    ++replayed;
  });
  ASSERT_TRUE(open.wal != nullptr) << open.error;
  EXPECT_EQ(replayed, 0u);
  EXPECT_EQ(open.stats.segments_scanned, 0u);
  EXPECT_EQ(open.stats.next_seq, 1u);
  EXPECT_FALSE(open.stats.tail_torn);
  EXPECT_EQ(open.wal->append(payload_of(1)), 1u);
}

TEST(WalTest, EmptyPayloadIsRejected) {
  ScopedDir dir("emptypayload");
  WalOptions opts;
  opts.dir = dir.path;
  auto open = wal_open(opts, 0, nullptr);
  ASSERT_TRUE(open.wal != nullptr) << open.error;
  EXPECT_EQ(open.wal->append({}), 0u);
  EXPECT_TRUE(open.wal->ok());
  EXPECT_EQ(open.wal->append(payload_of(7)), 1u);
}

TEST(WalTest, RotationAtSegmentBoundary) {
  ScopedDir dir("rotation");
  WalOptions opts;
  opts.dir = dir.path;
  opts.segment_bytes = 256;  // a few records per segment
  opts.fsync = FsyncPolicy::kAlways;
  {
    auto open = wal_open(opts, 0, nullptr);
    ASSERT_TRUE(open.wal != nullptr) << open.error;
    for (std::uint64_t i = 1; i <= 40; ++i) {
      ASSERT_EQ(open.wal->append(payload_of(i, 64)), i);
    }
    EXPECT_GT(open.wal->segment_files().size(), 1u);
  }
  const auto dump = wal_dump(dir.path);
  EXPECT_TRUE(dump.error.empty()) << dump.error;
  EXPECT_GT(dump.segments.size(), 1u);
  // Segment first_seqs must partition 1..40 contiguously.
  std::uint64_t expected = 1;
  for (const auto& s : dump.segments) {
    EXPECT_EQ(s.first_seq, expected);
    expected += s.records;
  }
  EXPECT_EQ(expected, 41u);
  const auto records = replay_all(dir.path);
  ASSERT_EQ(records.size(), 40u);
  for (std::uint64_t i = 1; i <= 40; ++i) {
    EXPECT_EQ(records[i - 1].second, payload_of(i, 64));
  }
}

TEST(WalTest, ConcurrentAppendersGetUniqueContiguousSeqs) {
  ScopedDir dir("concurrent");
  WalOptions opts;
  opts.dir = dir.path;
  opts.fsync = FsyncPolicy::kAlways;  // every ack is a durability promise
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100;
  std::vector<std::vector<std::uint64_t>> seqs(kThreads);
  {
    auto open = wal_open(opts, 0, nullptr);
    ASSERT_TRUE(open.wal != nullptr) << open.error;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          const auto seq = open.wal->append(
              payload_of(static_cast<std::uint64_t>(t) * 1000 + i));
          ASSERT_NE(seq, 0u);
          seqs[t].push_back(seq);
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  std::set<std::uint64_t> all;
  for (const auto& v : seqs) {
    // Per-thread acks must be monotonically increasing.
    EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
    all.insert(v.begin(), v.end());
  }
  EXPECT_EQ(all.size(), static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(*all.begin(), 1u);
  EXPECT_EQ(*all.rbegin(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(replay_all(dir.path).size(),
            static_cast<std::size_t>(kThreads * kPerThread));
}

TEST(WalTest, SyncPromotesDurableSeqUnderBatchPolicy) {
  ScopedDir dir("sync");
  WalOptions opts;
  opts.dir = dir.path;
  opts.fsync = FsyncPolicy::kBatch;
  opts.batch_flush_bytes = 1ull << 30;       // never by size
  opts.batch_flush_interval_ms = 60'000;     // never by time (in this test)
  auto open = wal_open(opts, 0, nullptr);
  ASSERT_TRUE(open.wal != nullptr) << open.error;
  for (std::uint64_t i = 1; i <= 10; ++i) {
    EXPECT_EQ(open.wal->append(payload_of(i)), i);
  }
  EXPECT_EQ(open.wal->last_seq(), 10u);
  open.wal->sync();
  EXPECT_EQ(open.wal->durable_seq(), 10u);
}

TEST(WalTest, ReopenResumesAppendingIntoLastSegment) {
  ScopedDir dir("resume");
  WalOptions opts;
  opts.dir = dir.path;
  {
    auto open = wal_open(opts, 0, nullptr);
    ASSERT_TRUE(open.wal != nullptr) << open.error;
    for (std::uint64_t i = 1; i <= 5; ++i) {
      ASSERT_EQ(open.wal->append(payload_of(i)), i);
    }
  }
  {
    auto open = wal_open(opts, 0, nullptr);
    ASSERT_TRUE(open.wal != nullptr) << open.error;
    EXPECT_EQ(open.stats.next_seq, 6u);
    for (std::uint64_t i = 6; i <= 10; ++i) {
      ASSERT_EQ(open.wal->append(payload_of(i)), i);
    }
    // Plenty of room in the first segment, so the chain is still one file.
    EXPECT_EQ(open.wal->segment_files().size(), 1u);
  }
  const auto records = replay_all(dir.path);
  ASSERT_EQ(records.size(), 10u);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    EXPECT_EQ(records[i - 1].first, i);
    EXPECT_EQ(records[i - 1].second, payload_of(i));
  }
}

TEST(WalTest, RetireThroughDeletesCoveredSegmentsOnly) {
  ScopedDir dir("retire");
  WalOptions opts;
  opts.dir = dir.path;
  opts.segment_bytes = 256;
  auto open = wal_open(opts, 0, nullptr);
  ASSERT_TRUE(open.wal != nullptr) << open.error;
  for (std::uint64_t i = 1; i <= 40; ++i) {
    ASSERT_EQ(open.wal->append(payload_of(i, 64)), i);
  }
  const auto before = open.wal->segment_files();
  ASSERT_GT(before.size(), 2u);

  // Nothing covered → nothing retired.
  EXPECT_EQ(open.wal->retire_through(0), 0u);

  // Retire through the middle of the chain; the cut must land on a
  // segment boundary (a segment survives unless ALL its records are
  // covered) and the active segment must always survive.
  const std::size_t removed = open.wal->retire_through(20);
  const auto after = open.wal->segment_files();
  EXPECT_EQ(after.size(), before.size() - removed);
  EXPECT_GT(removed, 0u);
  EXPECT_EQ(after.back(), before.back());
  for (const auto& path : after) {
    EXPECT_TRUE(std::filesystem::exists(path));
  }

  // Everything covered: all but the active segment go.
  open.wal->retire_through(40);
  EXPECT_EQ(open.wal->segment_files().size(), 1u);

  // Replay from the covering watermark still works on the trimmed chain.
  WalOptions ropts = opts;
  std::size_t replayed = 0;
  auto reopen = wal_open(ropts, 40, [&](std::uint64_t,
                                        std::span<const std::uint8_t>) {
    ++replayed;
  });
  EXPECT_TRUE(reopen.wal != nullptr) << reopen.error;
  EXPECT_EQ(replayed, 0u);
  EXPECT_EQ(reopen.stats.next_seq, 41u);
}

TEST(WalTest, DumpReportsFrameOffsetsAndSizes) {
  ScopedDir dir("dump");
  WalOptions opts;
  opts.dir = dir.path;
  {
    auto open = wal_open(opts, 0, nullptr);
    ASSERT_TRUE(open.wal != nullptr) << open.error;
    for (std::uint64_t i = 1; i <= 4; ++i) {
      ASSERT_EQ(open.wal->append(payload_of(i, 16 * i)), i);
    }
  }
  const auto dump = wal_dump(dir.path);
  ASSERT_TRUE(dump.error.empty()) << dump.error;
  ASSERT_EQ(dump.records.size(), 4u);
  std::uint64_t off = 16;  // segment header
  for (std::uint64_t i = 1; i <= 4; ++i) {
    const auto& r = dump.records[i - 1];
    EXPECT_EQ(r.seq, i);
    EXPECT_EQ(r.offset, off);
    EXPECT_EQ(r.payload_bytes, 16 * i);
    off += 8 + r.payload_bytes;  // frame header + payload
  }
  EXPECT_EQ(dump.segments.at(0).file_bytes, off);
}

std::vector<svg::core::RepresentativeFov> codec_reps() {
  std::vector<svg::core::RepresentativeFov> reps;
  for (std::uint32_t i = 0; i < 5; ++i) {
    svg::core::RepresentativeFov r;
    r.video_id = 100 + i;
    r.segment_id = i;
    r.fov.p.lat = 39.9 + 0.001 * i;  // exactly representable at 1e-7°
    r.fov.p.lng = 116.4 - 0.002 * i;
    r.fov.theta_deg = 10.0 * i;  // exactly representable at centi-degrees
    r.t_start = 1'400'000'000'000 + 5'000 * i;
    r.t_end = r.t_start + 3'000;
    reps.push_back(r);
  }
  return reps;
}

TEST(WalRecordCodecTest, LegacyV1LayoutEmittedForIdlessRecords) {
  const auto reps = codec_reps();
  const auto bytes = encode_upload_record(reps);  // default upload_id = 0
  ASSERT_FALSE(bytes.empty());
  EXPECT_EQ(bytes[0], kWalRecUpload);  // byte-identical pre-dedup layout
  const auto rec = decode_upload_record(bytes);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->upload_id, 0u);
  ASSERT_EQ(rec->reps.size(), reps.size());
  for (std::size_t i = 0; i < reps.size(); ++i) {
    EXPECT_EQ(rec->reps[i].video_id, reps[i].video_id);
    EXPECT_EQ(rec->reps[i].segment_id, reps[i].segment_id);
    EXPECT_DOUBLE_EQ(rec->reps[i].fov.p.lat, reps[i].fov.p.lat);
    EXPECT_DOUBLE_EQ(rec->reps[i].fov.p.lng, reps[i].fov.p.lng);
    EXPECT_EQ(rec->reps[i].t_start, reps[i].t_start);
    EXPECT_EQ(rec->reps[i].t_end, reps[i].t_end);
  }
}

TEST(WalRecordCodecTest, V2RoundTripsUploadId) {
  const auto reps = codec_reps();
  const auto bytes = encode_upload_record(reps, 0xABCDEF0123456789ULL);
  EXPECT_EQ(bytes[0], kWalRecUploadV2);
  const auto rec = decode_upload_record(bytes);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->upload_id, 0xABCDEF0123456789ULL);
  EXPECT_EQ(rec->reps.size(), reps.size());
}

TEST(WalRecordCodecTest, RejectsUnknownTypeZeroIdAndTruncation) {
  const auto reps = codec_reps();
  auto v2 = encode_upload_record(reps, 42);
  {
    auto bad = v2;
    bad[0] = 99;  // unknown record type
    EXPECT_FALSE(decode_upload_record(bad).has_value());
  }
  {
    // A v2 frame claiming id 0 is malformed: 0 is the legacy marker and
    // must never appear inside the dedup set.
    svg::util::ByteWriter w;
    w.put_u8(kWalRecUploadV2);
    w.put_varint(0);
    w.put_varint(0);
    EXPECT_FALSE(decode_upload_record(w.bytes()).has_value());
  }
  for (std::size_t cut = 0; cut + 1 < v2.size(); ++cut) {
    (void)decode_upload_record({v2.data(), cut});  // must not crash
  }
  EXPECT_FALSE(decode_upload_record({}).has_value());
}

}  // namespace
