#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace {

using svg::util::SplitMix64;
using svg::util::Xoshiro256;

TEST(SplitMix64Test, IsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256Test, IsDeterministicForSeed) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next(), b.next());
  }
}

TEST(Xoshiro256Test, UniformInUnitInterval) {
  Xoshiro256 rng(1);
  double sum = 0.0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Xoshiro256Test, UniformRangeRespectsBounds) {
  Xoshiro256 rng(2);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Xoshiro256Test, BoundedStaysInRange) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10'000; ++i) {
    ASSERT_LT(rng.bounded(17), 17u);
  }
}

TEST(Xoshiro256Test, BoundedZeroReturnsZero) {
  Xoshiro256 rng(4);
  EXPECT_EQ(rng.bounded(0), 0u);
}

TEST(Xoshiro256Test, BoundedIsRoughlyUniform) {
  Xoshiro256 rng(5);
  constexpr std::uint64_t kBuckets = 8;
  constexpr int kN = 80'000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kN; ++i) {
    ++counts[rng.bounded(kBuckets)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, kN / kBuckets, 0.05 * kN / kBuckets);
  }
}

TEST(Xoshiro256Test, GaussianMomentsMatchStandardNormal) {
  Xoshiro256 rng(6);
  constexpr int kN = 200'000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sum2 / kN, 1.0, 0.02);
}

TEST(Xoshiro256Test, GaussianScaledMeanStddev) {
  Xoshiro256 rng(7);
  constexpr int kN = 100'000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) {
    sum += rng.gaussian(10.0, 2.0);
  }
  EXPECT_NEAR(sum / kN, 10.0, 0.05);
}

TEST(Xoshiro256Test, ChanceFrequencyTracksProbability) {
  Xoshiro256 rng(8);
  constexpr int kN = 100'000;
  int hits = 0;
  for (int i = 0; i < kN; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Xoshiro256Test, SplitProducesIndependentStream) {
  Xoshiro256 parent(9);
  Xoshiro256 child = parent.split();
  // The streams should not be identical over a window.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next() == child.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Xoshiro256Test, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Xoshiro256>);
  SUCCEED();
}

}  // namespace
