#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace {

using svg::util::Histogram;
using svg::util::RunningStats;
using svg::util::SampleSet;

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, MatchesNaiveComputation) {
  const std::vector<double> xs{1.5, -2.0, 3.25, 7.0, 0.0, -1.0};
  RunningStats s;
  double sum = 0.0;
  for (double x : xs) {
    s.add(x);
    sum += x;
  }
  const double mean = sum / static_cast<double>(xs.size());
  double m2 = 0.0;
  for (double x : xs) m2 += (x - mean) * (x - mean);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), m2 / (static_cast<double>(xs.size()) - 1), 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(s.variance()), 1e-12);
  EXPECT_EQ(s.min(), -2.0);
  EXPECT_EQ(s.max(), 7.0);
}

TEST(RunningStatsTest, MergeEqualsCombinedStream) {
  svg::util::Xoshiro256 rng(11);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.gaussian(3.0, 2.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmptyIsIdentity) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_EQ(empty.mean(), mean);
}

TEST(SampleSetTest, ExactQuantiles) {
  SampleSet s;
  for (int i = 10; i >= 1; --i) s.add(i);  // 1..10 unsorted
  EXPECT_EQ(s.count(), 10u);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.5);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 10.0);
  EXPECT_NEAR(s.quantile(0.25), 3.25, 1e-12);
}

TEST(SampleSetTest, AddAfterQuantileStillCorrect) {
  SampleSet s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  s.add(1.0);
  s.add(9.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
}

TEST(SampleSetTest, EmptyReturnsZero) {
  SampleSet s;
  EXPECT_EQ(s.quantile(0.5), 0.0);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(HistogramTest, BinsCountsAndEdges) {
  Histogram h(0.0, 10.0, 5);
  for (double x : {0.5, 1.5, 2.5, 2.6, 9.9}) h.add(x);
  EXPECT_EQ(h.bins(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);  // [0,2)
  EXPECT_EQ(h.bin_count(1), 2u);  // [2,4)
  EXPECT_EQ(h.bin_count(4), 1u);  // [8,10)
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
  EXPECT_EQ(h.total(), 5u);
}

TEST(HistogramTest, OutOfRangeCounted) {
  Histogram h(0.0, 1.0, 2);
  h.add(-0.1);
  h.add(1.0);  // hi is exclusive
  h.add(0.5);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(HistogramTest, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
}

TEST(PearsonTest, PerfectCorrelation) {
  const std::vector<double> a{1, 2, 3, 4};
  const std::vector<double> b{2, 4, 6, 8};
  EXPECT_NEAR(svg::util::pearson(a, b), 1.0, 1e-12);
}

TEST(PearsonTest, PerfectAnticorrelation) {
  const std::vector<double> a{1, 2, 3, 4};
  const std::vector<double> b{8, 6, 4, 2};
  EXPECT_NEAR(svg::util::pearson(a, b), -1.0, 1e-12);
}

TEST(PearsonTest, ZeroVarianceGivesZero) {
  const std::vector<double> a{1, 1, 1};
  const std::vector<double> b{1, 2, 3};
  EXPECT_EQ(svg::util::pearson(a, b), 0.0);
}

TEST(PearsonTest, SizeMismatchGivesZero) {
  const std::vector<double> a{1, 2};
  const std::vector<double> b{1, 2, 3};
  EXPECT_EQ(svg::util::pearson(a, b), 0.0);
}

TEST(RmseTest, KnownValue) {
  const std::vector<double> a{0, 0};
  const std::vector<double> b{3, 4};
  EXPECT_NEAR(svg::util::rmse(a, b), std::sqrt(12.5), 1e-12);
}

TEST(RmseTest, IdenticalSeriesIsZero) {
  const std::vector<double> a{1.0, -2.0, 7.5};
  EXPECT_EQ(svg::util::rmse(a, a), 0.0);
}

}  // namespace
