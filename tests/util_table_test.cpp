#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace {

using svg::util::Table;

TEST(TableTest, NumFormatsWithPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(1.0, 0), "1");
  EXPECT_EQ(Table::num(std::size_t{42}), "42");
}

TEST(TableTest, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TableTest, EmptyHeaderThrows) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(TableTest, PrintAlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "2"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  // Header separator line exists.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TableTest, CsvEscapesCommasAndQuotes) {
  Table t({"a", "b"});
  t.add_row({"has,comma", "has\"quote"});
  std::ostringstream os;
  t.print_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"has\"\"quote\""), std::string::npos);
}

TEST(TableTest, CsvPlainCellsUnquoted) {
  Table t({"a"});
  t.add_row({"plain"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a\nplain\n");
}

TEST(TableTest, RowsAccessor) {
  Table t({"a"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"}).add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.data()[1][0], "2");
}

}  // namespace
