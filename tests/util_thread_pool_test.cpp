#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace {

using svg::util::ThreadPool;
using svg::util::ThreadPoolObserver;

TEST(ThreadPoolTest, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, SubmitWithArguments) {
  ThreadPool pool(2);
  auto f = pool.submit([](int a, int b) { return a * b; }, 6, 7);
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 500; ++i) {
    futs.push_back(pool.submit([&counter] {
      counter.fetch_add(1, std::memory_order_relaxed);
    }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPoolTest, WaitIdleBlocksUntilQueueDrains) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 16; ++i) {
    pool.submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      done.fetch_add(1);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 16);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    ASSERT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForFewerItemsThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> sum{0};
  pool.parallel_for(3, [&](std::size_t i) {
    sum.fetch_add(static_cast<int>(i) + 1);
  });
  EXPECT_EQ(sum.load(), 6);
}

TEST(ThreadPoolTest, DefaultSizeUsesHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPoolTest, DestructorJoinsCleanly) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 8; ++i) {
      pool.submit([&done] { done.fetch_add(1); });
    }
    pool.wait_idle();
  }
  EXPECT_EQ(done.load(), 8);
}

/// Counts observer callbacks; enqueue/dequeue depths are checked only for
/// plausibility (depth reporting is inherently racy across workers).
class RecordingObserver final : public ThreadPoolObserver {
 public:
  std::atomic<std::size_t> enqueues{0};
  std::atomic<std::size_t> dequeues{0};
  std::atomic<std::size_t> completes{0};
  std::atomic<std::uint64_t> total_ns{0};

  void on_enqueue(std::size_t) noexcept override { enqueues.fetch_add(1); }
  void on_dequeue(std::size_t) noexcept override { dequeues.fetch_add(1); }
  void on_complete(std::uint64_t ns) noexcept override {
    completes.fetch_add(1);
    total_ns.fetch_add(ns);
  }
};

TEST(ThreadPoolTest, ObserverSeesEveryTaskExactlyOnce) {
  RecordingObserver obs;
  constexpr std::size_t kTasks = 64;
  {
    ThreadPool pool(4, &obs);
    for (std::size_t i = 0; i < kTasks; ++i) {
      pool.submit([] {
        std::this_thread::sleep_for(std::chrono::microseconds(10));
      });
    }
    pool.wait_idle();
    EXPECT_EQ(pool.queue_depth(), 0u);
  }
  EXPECT_EQ(obs.enqueues.load(), kTasks);
  EXPECT_EQ(obs.dequeues.load(), kTasks);
  EXPECT_EQ(obs.completes.load(), kTasks);
  EXPECT_GT(obs.total_ns.load(), 0u);
}

}  // namespace
